"""Deterministic random-number management.

Every stochastic element of the simulator (process variation, sense
amplifier offsets, per-trial thermal noise, ...) draws from a *seed tree*:
a root seed plus a path of string labels deterministically derives a child
:class:`numpy.random.Generator`.  Two consequences:

* An experiment is exactly reproducible from its root seed.
* Unrelated subsystems never share a stream, so adding noise draws in one
  module cannot perturb results in another (a classic simulation bug).

The derivation hashes the label path with SHA-256, so labels can be any
human-readable strings and collisions are not a practical concern.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedTree", "derive_seed"]

_MASK_64 = (1 << 64) - 1


def derive_seed(root: int, *path: str) -> int:
    """Derive a 64-bit child seed from ``root`` and a label path."""
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("ascii"))
    for label in path:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & _MASK_64


class SeedTree:
    """A node in the deterministic seed tree.

    >>> tree = SeedTree(42)
    >>> module_rng = tree.child("module-0").generator()
    >>> module_rng_again = SeedTree(42).child("module-0").generator()
    >>> module_rng.integers(1 << 30) == module_rng_again.integers(1 << 30)
    True
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed) & _MASK_64

    def child(self, *path: str) -> "SeedTree":
        """Return the child node reached by following ``path`` labels."""
        if not path:
            return self
        return SeedTree(derive_seed(self.seed, *path))

    def generator(self) -> np.random.Generator:
        """A fresh generator for this node; repeated calls restart it."""
        return np.random.default_rng(self.seed)

    def uniform_hash(self, *path: str) -> float:
        """A deterministic uniform [0, 1) value for a label path.

        Used where the model needs a *fixed* per-entity random value (for
        instance whether a given address pair engages the decoder glitch)
        without materializing a generator.
        """
        return derive_seed(self.seed, *path) / float(1 << 64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeedTree) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("SeedTree", self.seed))
