"""Deterministic seed-driven fault injection for the testing bench.

The paper's characterization campaign runs for days on real hardware,
where the infrastructure — not the DRAM — is the least reliable part:
host/FPGA links stall, the thermal controller overshoots or drops its
setpoint, individual chips turn out flaky or dead, and worker machines
die mid-sweep.  The simulated bench reproduces those failure modes so
the sweep machinery's retry/quarantine/resume behavior can be exercised
and regression-tested.

Two design rules keep fault injection compatible with the library's
bit-identity guarantees:

* **Faults are scheduled by hash, never by simulator RNG.**  Every
  injection decision is a :func:`repro.rng.derive_seed` hash of the
  fault seed, the injection site, the module scope, an occurrence
  counter, and the retry attempt.  Enabling a fault plan therefore
  never perturbs any simulation random stream, and the same plan always
  produces the same fault sequence (``same seed tree -> identical
  fault schedule``).
* **Abort-style faults carry the attempt number.**  A transient fault
  that fired on attempt ``k`` hashes differently on attempt ``k+1``, so
  retries converge; the retried module group is rebuilt from its seed
  tree, making the eventual successful attempt bit-identical to a run
  that never faulted.  (Data-corruption faults — stuck/flaky cells — are
  deliberately *not* attempt-dependent: a stuck cell is physical and
  survives a retry.  Enabling them intentionally changes measurement
  results.)

A :class:`FaultPlan` is a declarative, picklable, JSON-round-trippable
description of what to inject; a :class:`FaultInjector` is the per-module
stateful view threaded through :class:`~repro.bender.host.DramBenderHost`,
:class:`~repro.bender.executor.ProgramExecutor`, and
:class:`~repro.bender.thermal.TemperatureController`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from .atomicio import atomic_write_text
from .errors import ConfigurationError, TransientInfrastructureError
from .rng import derive_seed

__all__ = ["FaultPlan", "FaultInjector", "FaultEvent"]

_RATE_FIELDS = (
    "host_timeout_rate",
    "thermal_overshoot_rate",
    "thermal_dropout_rate",
    "stuck_row_rate",
    "flaky_read_rate",
    "worker_death_rate",
)


def _uniform(seed: int, *path: str) -> float:
    """A deterministic uniform [0, 1) draw for a label path."""
    return derive_seed(seed, *path) / float(1 << 64)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (for logs, tests, and provenance)."""

    site: str
    detail: str


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the infrastructure faults to inject.

    All rates are probabilities in ``[0, 1]`` evaluated at deterministic
    hash sites; everything defaults to *off*, so ``FaultPlan()`` is a
    no-op plan.

    Transient (abort-style, retryable) faults:

    * ``host_timeout_rate`` — per executed test program, the host/FPGA
      command path times out (:class:`TransientInfrastructureError`).
    * ``thermal_dropout_rate`` — per temperature setpoint, the
      controller loses its setpoint mid-settle; the settle loop times
      out and surfaces a :class:`TransientInfrastructureError`.
    * ``thermal_overshoot_rate`` / ``thermal_overshoot_c`` — per
      setpoint, the heater feed-forward overshoots by
      ``thermal_overshoot_c`` degrees before the controller corrects;
      observable in the event log, harmless to results (the plateau
      still snaps to the target).
    * ``flaky_targets`` / ``flaky_target_attempts`` — targets whose
      descriptor label contains one of the substrings fail their first
      ``flaky_target_attempts`` attempts, then recover (deterministic
      retry-path coverage).

    Permanent faults:

    * ``broken_targets`` — targets whose descriptor label contains one
      of the substrings fail on *every* attempt; the sweep quarantines
      them (and their module-mates) and completes degraded.
    * ``stuck_row_rate`` — per (bank, row), one column is stuck at a
      fixed value on every read.  Persists across retries and resumes.

    Silent data corruption (never raises, intentionally perturbs
    measurements):

    * ``flaky_read_rate`` — per RD/backdoor read, one hashed column of
      the returned data flips.

    Pool-executor faults:

    * ``worker_death_rate`` — per (chunk, attempt), the worker process
      hosting the chunk dies abruptly (``os._exit``), breaking the
      process pool; the scheduler rebuilds the pool and resubmits.
    * ``kill_chunk_indices`` — deterministic variant: kill the worker
      of the chunk whose first descriptor index matches, on its first
      attempt only.
    """

    seed: int = 0
    host_timeout_rate: float = 0.0
    thermal_overshoot_rate: float = 0.0
    thermal_overshoot_c: float = 8.0
    thermal_dropout_rate: float = 0.0
    stuck_row_rate: float = 0.0
    flaky_read_rate: float = 0.0
    worker_death_rate: float = 0.0
    kill_chunk_indices: Tuple[int, ...] = ()
    broken_targets: Tuple[str, ...] = ()
    flaky_targets: Tuple[str, ...] = ()
    flaky_target_attempts: int = 1

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.thermal_overshoot_c < 0:
            raise ConfigurationError(
                f"thermal_overshoot_c must be >= 0, got {self.thermal_overshoot_c}"
            )
        if self.flaky_target_attempts < 0:
            raise ConfigurationError(
                "flaky_target_attempts must be >= 0, got "
                f"{self.flaky_target_attempts}"
            )
        # JSON round-trips deliver lists; normalize to hashable tuples.
        object.__setattr__(
            self, "kill_chunk_indices", tuple(int(i) for i in self.kill_chunk_indices)
        )
        object.__setattr__(self, "broken_targets", tuple(self.broken_targets))
        object.__setattr__(self, "flaky_targets", tuple(self.flaky_targets))

    # -- activity queries --------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return (
            any(getattr(self, name) > 0 for name in _RATE_FIELDS)
            or bool(self.kill_chunk_indices)
            or bool(self.broken_targets)
            or bool(self.flaky_targets)
        )

    @property
    def bench_active(self) -> bool:
        """Whether any fault site lives inside the bench (host/thermal)."""
        return (
            self.host_timeout_rate > 0
            or self.thermal_overshoot_rate > 0
            or self.thermal_dropout_rate > 0
            or self.stuck_row_rate > 0
            or self.flaky_read_rate > 0
        )

    # -- scheduling decisions outside the bench ----------------------------

    def target_fault(self, label: str, attempt: int) -> Optional[str]:
        """Why target ``label`` fails on this ``attempt``, or ``None``.

        ``label`` is the descriptor label
        (:meth:`~repro.characterization.runner.TargetDescriptor.describe`);
        plan entries are matched as substrings.
        """
        for pattern in self.broken_targets:
            if pattern in label:
                return f"permanently broken target (matches {pattern!r})"
        if attempt < self.flaky_target_attempts:
            for pattern in self.flaky_targets:
                if pattern in label:
                    return (
                        f"transient target flake, attempt "
                        f"{attempt + 1}/{self.flaky_target_attempts} "
                        f"(matches {pattern!r})"
                    )
        return None

    def worker_death_due(self, chunk_index: int, chunk_attempt: int) -> bool:
        """Whether the worker picking up this chunk should die."""
        if chunk_index in self.kill_chunk_indices and chunk_attempt == 0:
            return True
        if self.worker_death_rate > 0:
            roll = _uniform(
                self.seed,
                "worker-death",
                f"chunk-{chunk_index}",
                f"attempt-{chunk_attempt}",
            )
            return roll < self.worker_death_rate
        return False

    # -- injector construction ---------------------------------------------

    def injector(self, *scope: str, attempt: int = 0) -> "FaultInjector":
        """A stateful injector for one module scope and retry attempt."""
        return FaultInjector(self, scope=scope, attempt=attempt)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["kill_chunk_indices"] = list(self.kill_chunk_indices)
        payload["broken_targets"] = list(self.broken_targets)
        payload["flaky_targets"] = list(self.flaky_targets)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown FaultPlan fields: {unknown}")
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"fault plan {path!r} is not valid JSON: {error}"
                ) from error
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan {path!r} must be a JSON object"
            )
        return cls.from_dict(payload)


class FaultInjector:
    """Stateful per-module view of a :class:`FaultPlan`.

    One injector is created per (module instance, retry attempt) by
    :func:`repro.characterization.runner.materialize_targets` and shared
    by that module's host, executor, and temperature controller.  All
    decisions hash ``(plan seed, site, scope, occurrence, attempt)``, so
    the fault sequence is a pure function of the plan and the — itself
    deterministic — sequence of bench calls, regardless of which process
    executes them.
    """

    def __init__(
        self, plan: FaultPlan, scope: Tuple[str, ...] = (), attempt: int = 0
    ) -> None:
        self.plan = plan
        self.scope = tuple(scope)
        self.attempt = attempt
        self.events: List[FaultEvent] = []
        self._trial: Optional[int] = None
        self._occurrences: Dict[
            Tuple[str, Tuple[str, ...], Optional[int]], int
        ] = {}

    # -- internals ---------------------------------------------------------

    def set_trial(self, index: Optional[int]) -> None:
        """Scope subsequent rolls to measurement trial ``index``.

        Measurement loops set the trial index before each trial's bench
        calls (``None`` restores the legacy unscoped behavior).  Scoped
        rolls hash — and count occurrences — per trial, which makes the
        fault schedule independent of whether trials execute one at a
        time (program-major within a trial) or as a batched block
        (trial-major within a program): the same (trial, site,
        occurrence) triple fires either way.
        """
        self._trial = None if index is None else int(index)

    def _trial_labels(self) -> Tuple[str, ...]:
        return () if self._trial is None else (f"trial-{self._trial}",)

    def _roll(self, site: str, *labels: str) -> float:
        """An occurrence-counted, attempt-scoped uniform draw for a site."""
        key = (site, labels, self._trial)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        return _uniform(
            self.plan.seed,
            site,
            *self.scope,
            *labels,
            *self._trial_labels(),
            f"occurrence-{occurrence}",
            f"attempt-{self.attempt}",
        )

    def _record(self, site: str, detail: str) -> None:
        self.events.append(FaultEvent(site=site, detail=detail))

    def count(self, site: str) -> int:
        """How many events of ``site`` have fired so far."""
        return sum(1 for event in self.events if event.site == site)

    # -- host / executor sites ---------------------------------------------

    def on_program(self, program_name: str) -> None:
        """Called before each test-program execution; may time out."""
        if self.plan.host_timeout_rate <= 0:
            return
        if self._roll("host-timeout") < self.plan.host_timeout_rate:
            detail = f"program {program_name or '<anonymous>'} on {'/'.join(self.scope)}"
            self._record("host-timeout", detail)
            raise TransientInfrastructureError(
                f"injected host command timeout: {detail}"
            )

    def filter_read(
        self, bank: int, row: int, bits: NDArray[np.uint8]
    ) -> NDArray[np.uint8]:
        """Apply stuck-at and flaky-cell corruption to read data."""
        plan = self.plan
        if plan.stuck_row_rate <= 0 and plan.flaky_read_rate <= 0:
            return bits
        corrupted: Optional[NDArray[np.uint8]] = None
        if plan.stuck_row_rate > 0:
            # A stuck cell is physical: the decision hashes only the
            # plan seed, module scope, and (bank, row) — never the
            # occurrence counter or retry attempt — so it survives
            # rebuilds, retries, and resumes.
            site = ("stuck-cell", *self.scope, f"bank-{bank}", f"row-{row}")
            if _uniform(plan.seed, *site) < plan.stuck_row_rate:
                column = derive_seed(plan.seed, *site, "column") % bits.size
                value = derive_seed(plan.seed, *site, "value") & 1
                if bits[column] != value:
                    corrupted = bits.copy()
                    corrupted[column] = value
                    self._record(
                        "stuck-cell", f"bank{bank} row{row} col{column}={value}"
                    )
        if plan.flaky_read_rate > 0:
            labels = (f"bank-{bank}", f"row-{row}")
            occurrence = self._occurrences.get(
                ("flaky-read", labels, self._trial), 0
            )
            if self._roll("flaky-read", *labels) < plan.flaky_read_rate:
                if corrupted is None:
                    corrupted = bits.copy()
                column = derive_seed(
                    plan.seed,
                    "flaky-read-column",
                    *self.scope,
                    *labels,
                    *self._trial_labels(),
                    f"occurrence-{occurrence}",
                ) % bits.size
                corrupted[column] ^= 1
                self._record("flaky-read", f"bank{bank} row{row} col{column}")
        return bits if corrupted is None else corrupted

    # -- thermal sites -----------------------------------------------------

    def on_thermal_set(self, target_c: float) -> Optional[str]:
        """Disturbance for this setpoint: ``"dropout"``, ``"overshoot"``,
        or ``None``.  Dropout wins when both fire."""
        label = f"target-{target_c:g}"
        disturbance: Optional[str] = None
        if self.plan.thermal_dropout_rate > 0 and self._roll(
            "thermal-dropout", label
        ) < self.plan.thermal_dropout_rate:
            disturbance = "dropout"
            self._record("thermal-dropout", f"setpoint {target_c:g}degC")
        if self.plan.thermal_overshoot_rate > 0 and self._roll(
            "thermal-overshoot", label
        ) < self.plan.thermal_overshoot_rate:
            if disturbance is None:
                disturbance = "overshoot"
                self._record(
                    "thermal-overshoot",
                    f"setpoint {target_c:g}degC "
                    f"+{self.plan.thermal_overshoot_c:g}degC",
                )
        return disturbance
