"""Subarray state: cell voltages and physical row order.

A subarray is a 2-D array of cells.  The *logical* row number (what the
memory controller addresses, after the bank-level split) and the
*physical* position of the row inside the array differ in real chips:
vendors scramble rows for repair and routing reasons.  The paper has to
reverse engineer the physical order with RowHammer probing (§5.2); our
model therefore keeps an explicit logical-to-physical permutation so the
same reverse-engineering pass can be exercised against ground truth.

Physical position 0 is adjacent to the *lower* sense-amplifier stripe
(stripe index == subarray index), position ``rows - 1`` adjacent to the
upper stripe (index + 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AddressError
from ..rng import SeedTree
from ..units import GND, VDD
from .variation import DistanceRegions, Region

__all__ = ["Subarray"]


class Subarray:
    """Mutable cell state of one DRAM subarray."""

    def __init__(
        self,
        index: int,
        rows: int,
        columns: int,
        seed_tree: SeedTree,
        scramble_rows: bool = True,
        scramble_block_rows: int = 16,
    ):
        if rows < 3:
            raise ValueError(f"subarray needs at least 3 rows, got {rows}")
        if columns <= 0:
            raise ValueError(f"columns must be positive, got {columns}")
        self.index = index
        self.rows = rows
        self.columns = columns
        #: Cell storage voltages, indexed [logical_row, column].  float32
        #: keeps fleet-scale memory in check; the analog math upcasts.
        self.voltages = np.full((rows, columns), GND, dtype=np.float32)
        self._regions = DistanceRegions(rows)

        if scramble_rows:
            self._logical_to_physical = self._structured_scramble(
                rows, scramble_block_rows, seed_tree
            )
        else:
            self._logical_to_physical = np.arange(rows)
        self._physical_to_logical = np.argsort(self._logical_to_physical)

    @staticmethod
    def _structured_scramble(
        rows: int, block: int, seed_tree: SeedTree
    ) -> np.ndarray:
        """A realistic logical-to-physical row remap.

        Vendors do not permute rows arbitrarily: remapping happens at
        the local-wordline-block level (whole blocks are placed) with a
        bit-level scramble inside each block.  This keeps a logical
        block physically contiguous — which is why the paper can find
        multi-row activated sets in every Close/Middle/Far region — yet
        still forces the RowHammer reverse-engineering pass (§5.2) to
        recover the order experimentally.
        """
        rng = seed_tree.child("row-scramble").generator()
        mapping = np.arange(rows)
        full_blocks = rows // block
        if full_blocks >= 1:
            block_perm = rng.permutation(full_blocks)
            masks = rng.integers(0, block, size=full_blocks)
            for logical_block in range(full_blocks):
                physical_base = int(block_perm[logical_block]) * block
                mask = int(masks[logical_block])
                for offset in range(block):
                    mapping[logical_block * block + offset] = (
                        physical_base + (offset ^ mask)
                    )
        return mapping

    # -- addressing --------------------------------------------------------

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(
                f"local row {row} out of range for subarray with {self.rows} rows"
            )

    def physical_position(self, row: int) -> int:
        """Physical position of logical ``row`` (0 = lower stripe edge)."""
        self.check_row(row)
        return int(self._logical_to_physical[row])

    def logical_at_physical(self, position: int) -> int:
        """Logical row at physical ``position``."""
        if not 0 <= position < self.rows:
            raise AddressError(
                f"physical position {position} out of range [0, {self.rows})"
            )
        return int(self._physical_to_logical[position])

    def physical_neighbors(self, row: int) -> tuple:
        """Logical rows physically adjacent to logical ``row``.

        Edge rows (adjacent to a sense-amplifier stripe) have a single
        neighbor — the property the RowHammer-based row-order reverse
        engineering relies on (§5.2).
        """
        position = self.physical_position(row)
        neighbors = []
        if position > 0:
            neighbors.append(self.logical_at_physical(position - 1))
        if position < self.rows - 1:
            neighbors.append(self.logical_at_physical(position + 1))
        return tuple(neighbors)

    def distance_to_stripe(self, row: int, upper: bool) -> int:
        """Physical distance of ``row`` from the lower or upper stripe."""
        position = self.physical_position(row)
        return (self.rows - 1 - position) if upper else position

    def region_to_stripe(self, row: int, upper: bool) -> Region:
        """Close/Middle/Far region of ``row`` relative to a stripe."""
        return self._regions.region_of_distance(self.distance_to_stripe(row, upper))

    def region_of_rows(self, rows: Sequence[int], upper: bool) -> Region:
        """Region of a set of rows (mean distance), per Figs. 9/17."""
        distances = [self.distance_to_stripe(r, upper) for r in rows]
        return self._regions.region_of_mean_distance(distances)

    # -- data access -------------------------------------------------------

    def write_bits(self, row: int, bits: np.ndarray) -> None:
        """Store a full-rail bit pattern into logical ``row``."""
        self.check_row(row)
        bits = np.asarray(bits)
        if bits.shape != (self.columns,):
            raise ValueError(
                f"bits shape {bits.shape} does not match columns {self.columns}"
            )
        self.voltages[row] = np.where(bits.astype(bool), VDD, GND)

    def write_voltages(self, row: int, volts: np.ndarray) -> None:
        """Store raw voltages (used by Frac and by the activation engine)."""
        self.check_row(row)
        volts = np.asarray(volts, dtype=np.float64)
        if volts.shape != (self.columns,):
            raise ValueError(
                f"voltage shape {volts.shape} does not match columns {self.columns}"
            )
        self.voltages[row] = np.clip(volts, GND, VDD)

    def read_bits(self, row: int) -> np.ndarray:
        """The logic values a nominal (full-timing) read would return."""
        self.check_row(row)
        return (self.voltages[row] > 0.5 * VDD).astype(np.uint8)

    def read_voltages(self, row: int) -> np.ndarray:
        self.check_row(row)
        return self.voltages[row].copy()

    def fill(self, bit: int) -> None:
        """Fill the whole subarray with logic ``bit``."""
        self.voltages[:] = VDD if bit else GND

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subarray(index={self.index}, rows={self.rows}, "
            f"columns={self.columns})"
        )
