"""Process variation and design-induced variation models.

Two distinct phenomena (the paper keeps them separate, following
[Lee+ SIGMETRICS'17]):

* **Process variation** — random, per-instance: each sense amplifier gets
  a drive strength and an input offset drawn once at "manufacturing time"
  from the die's calibration distribution (:class:`StripeVariation`).

* **Design-induced variation** — deterministic, by physical location: a
  row's distance from the sense-amplifier stripe changes its access
  characteristics.  The paper buckets rows into three equal *regions*
  (Close / Middle / Far, §5.2); :class:`DistanceRegions` implements the
  bucketing over the subarray's physical row order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rng import SeedTree
from .calibration import DieCalibration

__all__ = ["Region", "DistanceRegions", "StripeVariation"]


class Region(enum.IntEnum):
    """Distance bucket of a row relative to a sense-amplifier stripe."""

    CLOSE = 0
    MIDDLE = 1
    FAR = 2

    def __str__(self) -> str:
        return self.name.capitalize()


@dataclass(frozen=True)
class DistanceRegions:
    """Close/Middle/Far bucketing for a subarray of ``rows`` rows.

    ``distance`` is measured in physical row positions from the stripe of
    interest: a row physically adjacent to the stripe has distance 0, the
    farthest row ``rows - 1``.  Each region holds one third of the rows
    (§5.2: "each of which has one third of all rows in the subarray").
    """

    rows: int

    def __post_init__(self) -> None:
        if self.rows < 3:
            raise ValueError(f"need at least 3 rows to form regions, got {self.rows}")

    def region_of_distance(self, distance: int) -> Region:
        if not 0 <= distance < self.rows:
            raise ValueError(f"distance {distance} out of range [0, {self.rows})")
        third = self.rows / 3.0
        if distance < third:
            return Region.CLOSE
        if distance < 2.0 * third:
            return Region.MIDDLE
        return Region.FAR

    def region_of_mean_distance(self, distances: Sequence[int]) -> Region:
        """Region of a *set* of rows, judged by their mean distance.

        The paper's heatmaps (Figs. 9 and 17) place a whole activated row
        set in one bucket; the mean is the natural summary.
        """
        values = list(distances)
        if not values:
            raise ValueError("distances must be non-empty")
        mean = float(np.mean(values))
        third = self.rows / 3.0
        if mean < third:
            return Region.CLOSE
        if mean < 2.0 * third:
            return Region.MIDDLE
        return Region.FAR


class StripeVariation:
    """Manufacturing-time variation of one sense-amplifier stripe.

    Holds per-column arrays:

    * ``offsets`` — static input-referred offset voltage [VDD] added to
      the (upper minus lower) differential before resolution.
    * ``strengths`` — restore drive strength on the z-score scale used by
      the drive model (see :mod:`repro.dram.calibration`).
    """

    __slots__ = ("offsets", "strengths")

    def __init__(
        self, columns: int, calibration: DieCalibration, seed_tree: SeedTree
    ):
        if columns <= 0:
            raise ValueError(f"columns must be positive, got {columns}")
        rng = seed_tree.generator()
        self.offsets = (
            calibration.sa_offset_mean
            + calibration.sa_offset_sigma * rng.standard_normal(columns)
        )
        self.strengths = (
            calibration.drive_strength_mean
            + calibration.drive_strength_sigma * rng.standard_normal(columns)
        )
        # A small population of exceptionally strong amplifiers holds the
        # latch at any tested load (Observation 3: every destination-row
        # count shows some 100%-success cells).
        strong = rng.random(columns) < calibration.strong_sa_fraction
        self.strengths[strong] += calibration.strong_sa_boost

    @property
    def columns(self) -> int:
        return int(self.offsets.shape[0])
