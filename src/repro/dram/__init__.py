"""Analog-behavioral DRAM device model (the paper's silicon substrate).

Layering, bottom-up:

* :mod:`repro.dram.analog` — charge sharing and sense-amplifier math
* :mod:`repro.dram.variation` — process and design-induced variation
* :mod:`repro.dram.calibration` — per-die model constants
* :mod:`repro.dram.decoder` — multi-row activation patterns (§4)
* :mod:`repro.dram.subarray` / :mod:`repro.dram.bank` — cell state and
  the activation engine
* :mod:`repro.dram.chip` / :mod:`repro.dram.module` — chip and lock-step
  module assemblies
"""

from .bank import SENSE_LATENCY_NS, Bank
from .calibration import DieCalibration, calibration_for
from .chip import Chip
from .config import (
    ActivationSupport,
    ChipConfig,
    ChipGeometry,
    Manufacturer,
    ModuleSpec,
)
from .decoder import (
    FIG5_COVERAGE,
    ActivationKind,
    ActivationPattern,
    CalibratedDecoder,
    HierarchicalRowDecoder,
    make_decoder,
)
from .module import Module
from .subarray import Subarray
from .timing import ReducedTiming, TimingParameters, timing_for_speed
from .variation import DistanceRegions, Region, StripeVariation

__all__ = [
    "ActivationKind",
    "ActivationPattern",
    "ActivationSupport",
    "Bank",
    "CalibratedDecoder",
    "Chip",
    "ChipConfig",
    "ChipGeometry",
    "DieCalibration",
    "DistanceRegions",
    "FIG5_COVERAGE",
    "HierarchicalRowDecoder",
    "Manufacturer",
    "Module",
    "ModuleSpec",
    "ReducedTiming",
    "Region",
    "SENSE_LATENCY_NS",
    "StripeVariation",
    "Subarray",
    "TimingParameters",
    "calibration_for",
    "make_decoder",
    "timing_for_speed",
]
