"""A DRAM module: chips operating in lock-step.

All chips of a rank receive the same command stream; data is striped
across them (each x8 chip contributes 8 of the 64 data lines).  The
simulator mirrors this: a :class:`Module` fans every command out to all
of its chips and splits/concatenates row data across per-chip column
segments.  Success-rate statistics are naturally per-cell and therefore
per-chip; :meth:`Module.chip_slice` maps a chip index to its columns in
the module-level row.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AddressError, ConfigurationError
from ..rng import SeedTree
from .chip import Chip
from .config import ChipConfig, ModuleSpec

__all__ = ["Module"]


class Module:
    """A set of lock-step chips behind one command/address bus."""

    def __init__(
        self,
        config: ChipConfig,
        chip_count: int = 8,
        seed_tree: Optional[SeedTree] = None,
        name: str = "module",
        decoder_model: str = "calibrated",
        scramble_rows: bool = True,
        calibration=None,
    ):
        if chip_count <= 0:
            raise ConfigurationError(f"chip_count must be positive, got {chip_count}")
        if seed_tree is None:
            seed_tree = SeedTree(0)
        self.name = name
        self.config = config
        from .decoder import make_decoder

        self.decoder = make_decoder(config, seed_tree.child("decoder"), decoder_model)
        self.chips: List[Chip] = [
            Chip(
                config,
                seed_tree.child(f"chip-{i}"),
                scramble_rows=scramble_rows,
                decoder=self.decoder,
                calibration=calibration,
            )
            for i in range(chip_count)
        ]

    @classmethod
    def from_spec(
        cls,
        spec: ModuleSpec,
        module_index: int = 0,
        seed_tree: Optional[SeedTree] = None,
        chip_count: Optional[int] = None,
        **kwargs,
    ) -> "Module":
        """Instantiate one physical module of a Table-1 spec.

        ``chip_count`` may be reduced below the spec's real chip count to
        keep fleet-scale sweeps fast; the default uses the spec value.
        """
        if seed_tree is None:
            seed_tree = SeedTree(0)
        count = spec.chips_per_module if chip_count is None else chip_count
        return cls(
            spec.chip,
            chip_count=count,
            seed_tree=seed_tree.child(spec.name, f"module-{module_index}"),
            name=f"{spec.name}#{module_index}",
            **kwargs,
        )

    # ------------------------------------------------------------------

    @property
    def chip_count(self) -> int:
        return len(self.chips)

    @property
    def columns_per_chip(self) -> int:
        return self.config.geometry.columns

    @property
    def row_bits(self) -> int:
        """Width of a module-level row segment in bits."""
        return self.columns_per_chip * self.chip_count

    def chip_slice(self, chip_index: int) -> slice:
        """Columns of the module-level row owned by chip ``chip_index``."""
        if not 0 <= chip_index < self.chip_count:
            raise AddressError(f"chip {chip_index} out of range")
        width = self.columns_per_chip
        return slice(chip_index * width, (chip_index + 1) * width)

    @property
    def temperature_c(self) -> float:
        return self.chips[0].temperature_c

    @temperature_c.setter
    def temperature_c(self, value: float) -> None:
        for chip in self.chips:
            chip.temperature_c = value

    # -- lock-step command fan-out --------------------------------------

    def activate(self, bank: int, row: int, time_ns: float) -> None:
        for chip in self.chips:
            chip.bank(bank).activate(row, time_ns)

    def precharge(self, bank: int, time_ns: float) -> None:
        for chip in self.chips:
            chip.bank(bank).precharge(time_ns)

    def settle(self, bank: int, time_ns: float) -> None:
        for chip in self.chips:
            chip.bank(bank).settle(time_ns)

    def refresh(self, bank: int, time_ns: float) -> None:
        for chip in self.chips:
            chip.bank(bank).refresh(time_ns)

    def elapse(self, bank: int, milliseconds: float) -> None:
        for chip in self.chips:
            chip.bank(bank).elapse(milliseconds)

    def write(self, bank: int, row: int, bits: np.ndarray, time_ns: float) -> None:
        bits = self._check_bits(bits)
        for i, chip in enumerate(self.chips):
            chip.bank(bank).write(row, bits[self.chip_slice(i)], time_ns)

    def read(self, bank: int, row: int, time_ns: float) -> np.ndarray:
        parts = [chip.bank(bank).read(row, time_ns) for chip in self.chips]
        return np.concatenate(parts)

    # -- host-side backdoors (striped like the data bus) -----------------

    def store_bits(self, bank: int, row: int, bits: np.ndarray) -> None:
        bits = self._check_bits(bits)
        for i, chip in enumerate(self.chips):
            chip.bank(bank).store_bits(row, bits[self.chip_slice(i)])

    def store_voltages(self, bank: int, row: int, volts: np.ndarray) -> None:
        volts = np.asarray(volts, dtype=np.float64)
        if volts.shape != (self.row_bits,):
            raise ValueError(f"expected {self.row_bits} voltages, got {volts.shape}")
        for i, chip in enumerate(self.chips):
            chip.bank(bank).store_voltages(row, volts[self.chip_slice(i)])

    def load_bits(self, bank: int, row: int) -> np.ndarray:
        parts = [chip.bank(bank).load_bits(row) for chip in self.chips]
        return np.concatenate(parts)

    def apply_hammer(self, bank: int, row: int, activations: int) -> None:
        for chip in self.chips:
            chip.bank(bank).apply_hammer(row, activations)

    def release_state(self) -> None:
        """Free every chip's bank state (fleet memory management)."""
        for chip in self.chips:
            chip.release_banks()

    # -- trial-noise substreams (lock-step across chips) -----------------

    def begin_trial(self, bank: int) -> int:
        """Advance every chip's bank to the next per-trial noise stream."""
        indices = {chip.bank(bank).begin_trial() for chip in self.chips}
        if len(indices) != 1:
            raise ConfigurationError(
                f"chips of bank {bank} disagree on the trial index: {indices}"
            )
        return indices.pop()

    def reserve_trial_block(
        self, bank: int, n_trials: int
    ) -> "Tuple[int, List[List[np.random.Generator]]]":
        """Reserve ``n_trials`` trial substreams on every chip's bank.

        Returns ``(first_index, per_chip_generators)`` where the second
        element holds one generator list per chip.
        """
        reservations = [
            chip.bank(bank).reserve_trial_block(n_trials) for chip in self.chips
        ]
        starts = {start for start, _ in reservations}
        if len(starts) != 1:
            raise ConfigurationError(
                f"chips of bank {bank} disagree on the trial counter: {starts}"
            )
        return starts.pop(), [gens for _, gens in reservations]

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.shape != (self.row_bits,):
            raise ValueError(
                f"expected a module-level row of {self.row_bits} bits, got "
                f"shape {bits.shape}"
            )
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Module({self.name!r}, {self.chip_count}x "
            f"{self.config.die_label}, {self.config.speed_rate_mts}MT/s)"
        )
