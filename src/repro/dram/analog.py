"""Analog circuit behavior: charge sharing and sense amplification.

These are pure functions over numpy arrays — the stateful orchestration
lives in :mod:`repro.dram.bank`.  The math follows the paper's §6.1 model
(Fig. 13/14) generalized to a finite bitline capacitance:

    V_bitline = (C_b * V_pre + C_c * sum_i d_i * v_i) / (C_b + C_c * sum_i d_i)

where ``v_i`` are the voltages of the simultaneously activated cells on
the bitline and ``d_i`` a per-cell charge-transfer efficiency.  The
paper's simplified "mean of the cell voltages" model (footnote 10) is the
``C_b -> 0`` limit and is exposed as :func:`ideal_charge_share` for tests
and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..units import VDD, VDD_HALF

__all__ = [
    "charge_share",
    "ideal_charge_share",
    "and_reference_voltage",
    "or_reference_voltage",
    "sense_differential",
    "coupling_disturbance",
    "SenseMarginBound",
    "worst_case_sense_margin",
]


def charge_share(
    cell_voltages: np.ndarray,
    cell_cap_ff: float,
    bitline_cap_ff: float,
    precharge: float = VDD_HALF,
    efficiencies: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Equilibrium bitline voltage after charge sharing.

    Parameters
    ----------
    cell_voltages:
        Array of shape ``(n_cells, columns)`` — the stored voltage of each
        activated cell on each bitline.  ``n_cells`` may be zero, in which
        case the bitline stays at ``precharge``.  A leading *trials* axis
        is also accepted (shape ``(trials, n_cells, columns)``); each
        trial slice is reduced exactly as the 2-D form, so batched and
        per-trial evaluation are bit-identical.
    cell_cap_ff, bitline_cap_ff:
        Capacitances in femtofarads.
    precharge:
        Initial bitline voltage (VDD/2 in the standard precharge scheme).
    efficiencies:
        Optional per-cell charge-transfer efficiency of shape
        ``(n_cells,)`` or ``(n_cells, columns)``; models design-induced
        variation in how completely a far cell's charge reaches the sense
        amplifier.  Defaults to 1 for every cell.

    Returns
    -------
    Array of shape ``(columns,)`` (or ``(trials, columns)``) with the
    shared bitline voltage.
    """
    cell_voltages = np.asarray(cell_voltages, dtype=np.float64)
    if cell_voltages.ndim not in (2, 3):
        raise ValueError(
            f"cell_voltages must be (n_cells, columns) or "
            f"(trials, n_cells, columns), got shape {cell_voltages.shape}"
        )
    if cell_cap_ff <= 0 or bitline_cap_ff <= 0:
        raise ValueError("capacitances must be positive")

    n_cells = cell_voltages.shape[-2]
    out_shape = cell_voltages.shape[:-2] + cell_voltages.shape[-1:]
    if n_cells == 0:
        return np.full(out_shape, precharge, dtype=np.float64)

    if efficiencies is None:
        eff = np.ones((n_cells, 1), dtype=np.float64)
    else:
        eff = np.asarray(efficiencies, dtype=np.float64)
        if eff.ndim == 1:
            eff = eff[:, np.newaxis]
        if eff.shape[0] != n_cells:
            raise ValueError(
                f"efficiencies first dimension {eff.shape[0]} does not match "
                f"n_cells {n_cells}"
            )

    # Reduce over the cell axis as axis 0 (a no-op transpose in the 2-D
    # case): np.add.reduce accumulates a non-innermost axis in strict
    # index order, which keeps the 3-D batched reduction bit-identical
    # to the per-trial 2-D reduction.
    cells_first = np.moveaxis(cell_voltages, -2, 0)
    eff = eff.reshape(eff.shape[:1] + (1,) * (cells_first.ndim - eff.ndim) + eff.shape[1:])
    charge = bitline_cap_ff * precharge + cell_cap_ff * np.sum(
        eff * cells_first, axis=0
    )
    capacitance = bitline_cap_ff + cell_cap_ff * np.sum(
        eff * np.ones_like(cells_first), axis=0
    )
    return charge / capacitance


def ideal_charge_share(cell_voltages: Sequence[float]) -> float:
    """The paper's zero-bitline-capacitance model: the mean cell voltage.

    Matches footnote 10: "after charge sharing, the bitline's voltage is
    the mean voltage value stored in DRAM cells that contribute".
    """
    voltages = list(cell_voltages)
    if not voltages:
        return VDD_HALF
    return float(sum(voltages)) / len(voltages)


def and_reference_voltage(n_inputs: int) -> float:
    """Ideal reference voltage V_AND for an N-input AND (§6.1.2).

    N-1 reference cells store VDD and one stores VDD/2, so the ideal
    shared voltage is ``(N - 0.5) * VDD / N`` — between the highest
    logic-0 compute voltage ``(N-1) * VDD / N`` and VDD.
    """
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    return (n_inputs - 0.5) * VDD / n_inputs


def or_reference_voltage(n_inputs: int) -> float:
    """Ideal reference voltage V_OR for an N-input OR (§6.1.2).

    N-1 reference cells store GND and one stores VDD/2: ``0.5 * VDD / N``.
    """
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    return 0.5 * VDD / n_inputs


def coupling_disturbance(differentials: np.ndarray) -> np.ndarray:
    """Per-column parasitic-coupling disturbance [VDD].

    Adjacent bitlines disturb each other in proportion to how
    *differently* they swing (Observation 16's hypothesis; [Al-Ars+
    2004], [Nakagome+ 1988]): the disturbance of a column is the mean
    absolute difference between its differential and its physical
    neighbors'; edge columns have one neighbor.  All-0s/all-1s data
    patterns develop identical voltages on every bitline (disturbance
    0); random operands spread the charge-shared voltages and couple at
    any fan-in — which is why the paper's data-pattern penalty holds
    "across every tested number of input operands".
    """
    d = np.asarray(differentials, dtype=np.float64)
    if d.ndim not in (1, 2):
        raise ValueError(
            f"differentials must be 1-D or (trials, columns), got shape {d.shape}"
        )
    if d.shape[-1] < 2:
        return np.zeros_like(d)
    delta = np.abs(np.diff(d, axis=-1))
    disturbance = np.empty_like(d)
    disturbance[..., 0] = delta[..., 0]
    disturbance[..., -1] = delta[..., -1]
    if d.shape[-1] > 2:
        disturbance[..., 1:-1] = 0.5 * (delta[..., :-1] + delta[..., 1:])
    return disturbance


@dataclass(frozen=True)
class SenseMarginBound:
    """Static worst-case sense margin of one (op, N, die, distance) point.

    All voltages are in VDD units.  ``net_margin`` is the deterministic
    worst-case differential after every adverse systematic effect
    (design-induced margin shift, sense-amp offset mean, common-mode
    resolution bias); a non-positive value means the boundary input
    pattern on ``worst_case`` resolves *wrongly* more often than not —
    the charge algebra makes the configuration infeasible before any
    trial runs (Observation 14).  ``noise_sigma`` is the effective
    per-trial noise (common-mode inflation and static offset spread in
    quadrature) at the worst-case operating point.
    """

    op: str
    n_inputs: int
    compute_region: int
    reference_region: int
    v_reference: float
    raw_margin: float
    net_margin: float
    noise_sigma: float
    worst_case: str

    @property
    def feasible(self) -> bool:
        return self.net_margin > 0.0

    def describe(self) -> str:
        verdict = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"{self.op.upper():4s} N={self.n_inputs:<2d} "
            f"regions C{self.compute_region}/R{self.reference_region}: "
            f"V_ref={self.v_reference:.3f} raw={self.raw_margin:+.4f} "
            f"net={self.net_margin:+.4f} sigma={self.noise_sigma:.4f} "
            f"[{verdict}: worst case {self.worst_case}]"
        )


def worst_case_sense_margin(
    op: str,
    n_inputs: int,
    calibration: object,
    compute_region: int = 1,
    reference_region: int = 1,
) -> SenseMarginBound:
    """Conservative static bound on the sense margin of a logic op.

    Evaluates the two boundary input patterns of an ``N``-input AND/OR
    family operation (all-ones vs. one-zero for AND; all-zeros vs.
    one-one for OR) through the finite-capacitance charge-sharing model
    and the systematic terms of :func:`sense_differential`, taking every
    systematic effect in its *adverse* direction and crediting none of
    the helpful ones:

    * the design-induced margin shift ``op_distance_margin[compute]
      [reference]`` (it favors the compute side; only a compute-hurting
      sign is charged),
    * the sense-amp static offset mean (direction depends on which
      terminal the compute side lands on, so ``|sa_offset_mean|`` is
      always charged), and
    * the common-mode resolution bias (overdrive loss near VDD favors
      logic-1, underdrive near GND favors logic-0 — whichever boundary
      pattern the bias pushes across the threshold is charged).

    ``calibration`` is a :class:`repro.dram.calibration.DieCalibration`
    (typed as ``object`` to keep this module free of upward imports);
    regions are Close/Middle/Far as 0/1/2 (``repro.dram.variation.Region``
    values work directly).  NAND/NOR share their comparison with AND/OR —
    the complement is read from the other terminal — so they bound
    identically.
    """
    families = {"and": "and", "nand": "and", "or": "or", "nor": "or"}
    if op not in families:
        raise ValueError(f"unknown operation {op!r}; expected one of {sorted(families)}")
    if n_inputs < 2:
        raise ValueError(f"logic operations need n_inputs >= 2, got {n_inputs}")
    if not (0 <= compute_region <= 2 and 0 <= reference_region <= 2):
        raise ValueError("regions must be 0 (Close), 1 (Middle), or 2 (Far)")
    base = families[op]

    cell_ff = float(getattr(calibration, "cell_cap_ff"))
    bitline_ff = float(getattr(calibration, "bitline_cap_ff"))

    def shared(voltages: Sequence[float]) -> float:
        cells = np.asarray(voltages, dtype=np.float64)[:, np.newaxis]
        return float(charge_share(cells, cell_ff, bitline_ff)[0])

    constant = VDD if base == "and" else 0.0
    v_reference = shared([constant] * (n_inputs - 1) + [VDD_HALF])
    if base == "and":
        v_high = shared([VDD] * n_inputs)
        v_low = shared([VDD] * (n_inputs - 1) + [0.0])
        high_label = f"all {n_inputs} inputs at 1"
        low_label = f"{n_inputs - 1} of {n_inputs} inputs at 1"
    else:
        v_high = shared([VDD] + [0.0] * (n_inputs - 1))
        v_low = shared([0.0] * n_inputs)
        high_label = f"1 of {n_inputs} inputs at 1"
        low_label = f"all {n_inputs} inputs at 0"

    shift = float(
        getattr(calibration, "op_distance_margin")[compute_region][reference_region]
    )
    gain_scale = float(
        getattr(calibration, "op_distance_cm_gain_scale")[compute_region][
            reference_region
        ]
    )
    offset_mean = abs(float(getattr(calibration, "sa_offset_mean")))
    offset_sigma = float(getattr(calibration, "sa_offset_sigma"))
    noise = float(getattr(calibration, "sense_noise_sigma"))
    cm_gain = float(getattr(calibration, "common_mode_noise_gain")) * gain_scale
    cm_threshold = float(getattr(calibration, "common_mode_threshold"))
    cm_cap = float(getattr(calibration, "common_mode_sigma_cap")) * gain_scale
    bias_hi_gain = float(getattr(calibration, "common_mode_offset_gain"))
    bias_lo_gain = float(getattr(calibration, "low_common_mode_offset_gain"))

    def case(v_compute: float, want_compute_win: bool, label: str):
        raw = abs(v_compute - v_reference)
        common_mode = 0.5 * (v_compute + v_reference)
        overdrive = max(0.0, common_mode - cm_threshold)
        underdrive = max(0.0, cm_threshold - common_mode)
        # Resolution bias toward the compute terminal [VDD]; only the
        # adverse sign for this boundary pattern is charged.
        bias = bias_hi_gain * overdrive - bias_lo_gain * underdrive
        adverse = offset_mean
        adverse += max(0.0, -shift) if want_compute_win else max(0.0, shift)
        adverse += max(0.0, -bias) if want_compute_win else max(0.0, bias)
        sigma = noise * (1.0 + cm_gain * overdrive)
        if cm_cap > 0.0:
            sigma = min(sigma, cm_cap * noise)
        sigma = float(np.hypot(sigma, offset_sigma))
        return raw - adverse, raw, sigma, label

    cases = (
        case(v_high, True, high_label),
        case(v_low, False, low_label),
    )
    worst = min(cases, key=lambda c: c[0])
    return SenseMarginBound(
        op=op,
        n_inputs=n_inputs,
        compute_region=int(compute_region),
        reference_region=int(reference_region),
        v_reference=v_reference,
        raw_margin=min(c[1] for c in cases),
        net_margin=worst[0],
        noise_sigma=max(c[2] for c in cases),
        worst_case=worst[3],
    )


def sense_differential(
    v_positive: np.ndarray,
    v_negative: np.ndarray,
    offsets: np.ndarray,
    noise_sigma: float,
    rng: Union[np.random.Generator, Iterable[np.random.Generator]],
    common_mode_gain: float = 0.0,
    common_mode_threshold: float = 0.0,
    sigma_cap_factor: float = 0.0,
    common_mode_offset_gain: float = 0.0,
    low_common_mode_offset_gain: float = 0.0,
    coupling_sigma: float = 0.0,
    margin_shift: float = 0.0,
) -> np.ndarray:
    """Resolve a sense amplifier comparison per column.

    Returns a boolean array: ``True`` where the positive terminal wins
    (it will be driven to VDD, the negative terminal to GND).

    ``rng`` is either a single :class:`numpy.random.Generator` or, for
    batched evaluation over a leading trials axis, a sequence of
    per-trial generators (one per row of the 2-D terminal arrays).  In
    the batched form trial ``i``'s noise is drawn from ``rng[i]`` with
    the same shape and in the same order as a serial per-trial call, so
    both paths consume identical numbers from identical streams.

    The effective comparison is ``v_positive - v_negative + margin_shift
    + offsets + noise > 0`` with the per-trial noise standard deviation
    inflated once the common-mode voltage exceeds
    ``common_mode_threshold`` — the cross-coupled pull-up pair loses gate
    overdrive when both terminals sit near VDD, so high-voltage
    comparisons (the AND-family worst cases) are less reliable than
    low-voltage ones (Observations 12/14) — and by parasitic coupling
    from adjacent-bitline disagreement (Observation 16).
    """
    v_positive = np.asarray(v_positive, dtype=np.float64)
    v_negative = np.asarray(v_negative, dtype=np.float64)
    if v_positive.shape != v_negative.shape:
        raise ValueError("terminal voltage arrays must have matching shapes")
    if noise_sigma < 0 or coupling_sigma < 0:
        raise ValueError("noise magnitudes must be non-negative")

    common_mode = np.clip(0.5 * (v_positive + v_negative), 0.0, VDD)
    overdrive_loss = np.maximum(0.0, common_mode - common_mode_threshold)
    sigma = noise_sigma * (1.0 + common_mode_gain * overdrive_loss)
    if sigma_cap_factor > 0.0:
        # The overdrive loss saturates: beyond a few nominal sigmas the
        # amplifier still resolves large differentials correctly.
        sigma = np.minimum(sigma, sigma_cap_factor * noise_sigma)
    if coupling_sigma > 0.0:
        disturbance = coupling_disturbance(v_positive - v_negative)
        sigma = np.sqrt(sigma**2 + (coupling_sigma * disturbance) ** 2)

    # The pull-down pair keeps full overdrive while the pull-ups lose
    # theirs, so a high common mode also *biases* the resolution: the
    # stronger NMOS on the (momentarily) lower terminal yanks it down
    # first, favoring a logic-1 on the positive terminal.  This is what
    # makes the near-VDD worst cases (15 of 16 inputs at logic-1,
    # Observation 14) resolve wrongly more than half the time.
    # Symmetrically, a very low common mode starves the pull-downs and
    # the pull-ups favor a logic-0 on the positive terminal — the OR
    # worst cases (one of 16 inputs at logic-1, Observation 14).
    underdrive_loss = np.maximum(0.0, common_mode_threshold - common_mode)
    bias = (
        common_mode_offset_gain * overdrive_loss
        - low_common_mode_offset_gain * underdrive_loss
    )
    if isinstance(rng, np.random.Generator):
        noise = rng.standard_normal(v_positive.shape) * sigma
    else:
        generators = list(rng)
        if v_positive.ndim < 2 or len(generators) != v_positive.shape[0]:
            raise ValueError(
                "per-trial generators require 2-D terminals with one "
                "generator per leading row"
            )
        noise = (
            np.stack([g.standard_normal(v_positive.shape[1:]) for g in generators])
            * sigma
        )
    return (v_positive - v_negative + margin_shift + offsets + bias + noise) > 0.0
