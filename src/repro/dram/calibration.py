"""Per-die calibration of the analog behavior model.

The paper characterizes *silicon*: success rates emerge from sense
amplifier drive strength, charge-sharing margins, noise, and decoder
behavior, all of which vary per manufacturer, die revision, density, and
speed grade.  This module concentrates every tunable constant of the
simulator in one place, keyed by chip identity, so that

* the physics code (:mod:`repro.dram.analog`, :mod:`repro.dram.bank`)
  stays free of magic numbers, and
* the calibration targets — the numbers the paper quotes — are traceable
  to the observation they come from (cited inline below).

Calibration approach
--------------------
The drive model expresses restore success on the z-score scale:
``p = Phi(S - alpha * (rows_driven - 1) + adjustments)`` with per-sense-
amplifier strength ``S ~ N(strength_mean, strength_sigma)``.  The two
anchors from the paper are the NOT operation with one destination row
(98.37% average, Observation 4 — 2 rows driven) and with 32 destination
rows (7.95% average, Observation 4 — 48 rows driven via 16:32
activation), which fix ``strength_mean`` and ``drive_load_alpha`` for the
reference die.  Sensing-side constants are anchored on Observations
10-14 (many-input operation success rates and their input-pattern
dependence).  Per-die deltas encode Observations 9 and 19; per-speed
deltas encode Observations 8 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from .config import ChipConfig, Manufacturer

__all__ = [
    "DieCalibration",
    "calibration_for",
    "ideal_calibration",
    "REFERENCE_CALIBRATION",
]


@dataclass(frozen=True)
class DieCalibration:
    """Every tunable constant of the chip behavior model.

    Voltages are in normalized VDD units; "z" marks values on the
    standard-normal score scale used by the drive model.
    """

    # --- capacitances (charge-sharing weights) ---------------------------
    cell_cap_ff: float = 24.0
    bitline_cap_ff: float = 120.0

    # --- sensing (logic operations) --------------------------------------
    #: Per-trial thermal noise on the sensed differential [VDD].
    sense_noise_sigma: float = 0.015
    #: Per-(sense amp, column) static offset mean [VDD].  Slightly negative:
    #: the reference-side pull wins ties, making OR/NOR beat AND/NAND
    #: (Observation 12).
    sa_offset_mean: float = -0.010
    #: Per-(sense amp, column) static offset spread [VDD].
    sa_offset_sigma: float = 0.032
    #: Noise inflation once the common-mode bitline voltage exceeds the
    #: threshold below: sigma_eff = sigma * (1 + gain * max(0, CM - thr)).
    #: The cross-coupled pull-ups lose overdrive near VDD, making the
    #: AND-family worst cases less reliable than the OR-family ones
    #: (Observations 12 and 14).
    common_mode_noise_gain: float = 30.0
    #: Common-mode voltage where pull-up overdrive loss sets in [VDD].
    common_mode_threshold: float = 0.45
    #: Saturation of the overdrive loss: sigma_eff never exceeds this
    #: multiple of the nominal sensing noise.
    common_mode_sigma_cap: float = 5.0
    #: Resolution bias toward the positive terminal per unit of overdrive
    #: loss [VDD]: pushes the near-VDD worst cases below 50% success
    #: (Fig. 16's deep AND valleys, Observation 14).
    common_mode_offset_gain: float = 0.15
    #: Opposite bias per unit of pull-down underdrive at very low common
    #: mode [VDD] (the OR-family worst cases, Observation 14).
    low_common_mode_offset_gain: float = 0.08
    #: Extra sensing noise per unit of adjacent-bitline sign disagreement
    #: [VDD]; part of the random-vs-all-0s/1s data-pattern penalty of
    #: ~1.4-2.0% (Observation 16).
    coupling_noise_sigma: float = 0.060
    #: Error of the Frac (VDD/2) initialization [VDD] (FracDRAM, §6.2).
    frac_noise_sigma: float = 0.012

    # --- restore drive (NOT operation and write-back) --------------------
    #: Mean sense-amp drive strength [z].
    drive_strength_mean: float = 3.60
    #: Per-sense-amp strength spread [z].
    drive_strength_sigma: float = 0.55
    #: Fraction of columns with an exceptionally strong amplifier; these
    #: hold the latch at any tested load, realizing Observation 3 (every
    #: destination-row count has some 100%-success cells).
    strong_sa_fraction: float = 0.02
    #: Strength bonus of the strong population [z].
    strong_sa_boost: float = 5.0
    #: Strength cost per additional simultaneously driven row [z].
    drive_load_alpha: float = 0.1150
    #: Latch-flip load cost per row in the charge-sharing (logic-op)
    #: restore [z per row]: cells are pre-equalized to the shared
    #: voltage, so the fight is far milder than the NOT regime's — this
    #: is why a 16-input AND holds ~95% while NOT with 16 destination
    #: rows does not (compare Observations 4 and 10).
    op_flip_alpha: float = 0.017
    #: Latch-flip penalty per unit of adjacent-column coupling
    #: disturbance in the logic-op restore [z]; the second half of the
    #: data-pattern penalty (Observation 16).
    op_coupling_flip_z: float = 3.60
    #: NOT-operation design-induced variation [z], additive, indexed by
    #: (source region, destination region) with regions ordered
    #: (Close, Middle, Far) from the shared sense amplifiers (Fig. 9;
    #: Middle-Far is the best case at 85.02%, Far-Close the worst at
    #: 44.16%, Observation 6).
    not_distance_z: Tuple[Tuple[float, float, float], ...] = (
        (-0.50, 0.05, 0.30),
        (-0.20, 0.25, 0.50),
        (-2.20, -0.80, -0.14),
    )
    #: Logic-op design-induced variation, part 1 [VDD]: additive margin
    #: shift indexed by (compute region, reference region).  Small
    #: absolute shifts matter most to the OR family, whose low-voltage
    #: comparisons have tight noise (Fig. 17: OR varies up to 10.42%,
    #: Observation 15).
    op_distance_margin: Tuple[Tuple[float, float, float], ...] = (
        (-0.016, -0.004, 0.004),
        (-0.004, 0.006, 0.012),
        (-0.024, -0.012, 0.000),
    )
    #: Logic-op design-induced variation, part 2: multiplier on the
    #: common-mode noise gain (and its saturation cap), indexed by
    #: (compute region, reference region).  Only high-voltage
    #: comparisons feel it, which is why the AND family varies with
    #: location twice as much as the OR family (23.36% vs 10.42%,
    #: Observation 15).
    op_distance_cm_gain_scale: Tuple[Tuple[float, float, float], ...] = (
        (3.2, 1.5, 0.9),
        (1.5, 0.8, 0.45),
        (5.0, 2.6, 1.15),
    )

    # --- decoder-glitch engagement ---------------------------------------
    #: Per-trial probability that the N:N multi-row activation used by a
    #: logic operation fully engages, per input-operand count.  A failed
    #: engagement leaves stored values in place.  Engagement is reliable;
    #: the success-rate structure of Observations 10-14 comes from the
    #: sensing margins and the restore latch fight instead.
    op_engage_probability: Mapping[int, float] = field(
        default_factory=lambda: {2: 0.995, 4: 0.995, 8: 0.99, 16: 0.985}
    )
    #: Per-trial engagement probability of the NOT activation.
    not_engage_probability: float = 0.998

    # --- environmental sensitivities -------------------------------------
    #: Relative noise growth per degC above the 50degC baseline; keeps the
    #: 50->95degC effect under ~1.7% (Observations 7 and 17).
    temperature_noise_per_degc: float = 0.0015
    #: Drive-strength loss per degC above baseline [z].
    temperature_drive_per_degc: float = 0.0002

    # --- retention / disturbance (reverse-engineering substrate) ---------
    #: Charge leakage rate [VDD per ms at 50degC] (needed only for the
    #: refresh and retention paths; doubles every ~10degC).
    leakage_per_ms: float = 2e-4
    #: Single-sided RowHammer: per-activation bit-flip probability of a
    #: victim cell in a physically adjacent row (used by the row-order
    #: reverse-engineering pass, §5.2).
    hammer_flip_probability: float = 4e-5

    def engage_probability_for(self, operand_count: int) -> float:
        """Engagement probability for an ``operand_count``-input op.

        Counts outside the fitted {2, 4, 8, 16} grid use the nearest
        fitted count:

        >>> REFERENCE_CALIBRATION.engage_probability_for(16)
        0.985
        >>> REFERENCE_CALIBRATION.engage_probability_for(5)
        0.995
        """
        probs = self.op_engage_probability
        if operand_count in probs:
            return probs[operand_count]
        nearest = min(probs, key=lambda n: abs(n - operand_count))
        return probs[nearest]


#: The baseline constants every per-die and per-speed delta modifies.
#: Anchored on the SK Hynix 4Gb M-die at 2666 MT/s (the most common
#: module type in Table 1) — but note that die still carries its own
#: ``sense_scale`` entry in the die table, so :func:`calibration_for`
#: on that exact configuration is *not* byte-equal to this object; only
#: an unknown (fallback) configuration at 2666 MT/s reproduces it
#: verbatim (see the :func:`calibration_for` doctests).
REFERENCE_CALIBRATION = DieCalibration()

_ZERO_MATRIX = ((0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.0))


def ideal_calibration() -> DieCalibration:
    """A noise-free, always-engaging die: every operation is exact.

    No real chip behaves like this; it exists so functional tests and
    logic-level examples can verify *what* an operation computes without
    stochastic failures, separately from *how reliably* real dies compute
    it (the characterization's subject).

    >>> cal = ideal_calibration()
    >>> (cal.sense_noise_sigma, cal.drive_strength_sigma, cal.drive_load_alpha)
    (0.0, 0.0, 0.0)
    >>> (cal.not_engage_probability, cal.engage_probability_for(16))
    (1.0, 1.0)
    """
    return replace(
        REFERENCE_CALIBRATION,
        sense_noise_sigma=0.0,
        sa_offset_mean=0.0,
        sa_offset_sigma=0.0,
        common_mode_noise_gain=0.0,
        common_mode_offset_gain=0.0,
        low_common_mode_offset_gain=0.0,
        coupling_noise_sigma=0.0,
        frac_noise_sigma=0.0,
        drive_strength_mean=38.0,
        drive_strength_sigma=0.0,
        strong_sa_fraction=0.0,
        drive_load_alpha=0.0,
        not_distance_z=_ZERO_MATRIX,
        op_distance_margin=_ZERO_MATRIX,
        op_engage_probability={2: 1.0, 4: 1.0, 8: 1.0, 16: 1.0},
        not_engage_probability=1.0,
        temperature_noise_per_degc=0.0,
        temperature_drive_per_degc=0.0,
    )


# Per-(manufacturer, density, die revision) adjustments.  The
# "sense_scale" key multiplies the sensing noise (it does not correspond
# to a DieCalibration field directly).  Sources: Observation 9 (NOT: SK
# Hynix 8Gb M -> A drops 8.05%; Samsung A -> D drops 11.02%),
# Observation 19 (2-input AND: 4Gb A-die beats 4Gb M-die by a wide
# margin; 8Gb M edges out 8Gb A by 2.11%).  Note the die/speed
# confound the paper's Table 1 has too: 4Gb A modules run at 2133/2400,
# 4Gb M modules at 2666.
_DIE_TABLE: Dict[Tuple[Manufacturer, int, str], Dict[str, object]] = {
    (Manufacturer.SK_HYNIX, 4, "M"): {"sense_scale": 1.55},
    (Manufacturer.SK_HYNIX, 4, "A"): {
        "drive_strength_mean": 3.30,
        "sense_scale": 0.55,
    },
    (Manufacturer.SK_HYNIX, 8, "A"): {
        "drive_strength_mean": 3.00,
        "sense_scale": 1.00,
    },
    (Manufacturer.SK_HYNIX, 8, "M"): {
        "drive_strength_mean": 3.45,
        "sense_scale": 0.95,
    },
    (Manufacturer.SAMSUNG, 4, "F"): {"drive_strength_mean": 2.33},
    (Manufacturer.SAMSUNG, 8, "D"): {"drive_strength_mean": 1.60},
    (Manufacturer.SAMSUNG, 8, "A"): {"drive_strength_mean": 3.62},
    # Micron chips ignore violating sequences entirely; the constants are
    # irrelevant but must exist for the fleet to instantiate the chips.
    (Manufacturer.MICRON, 4, "B"): {},
    (Manufacturer.MICRON, 8, "B"): {},
    (Manufacturer.MICRON, 8, "E"): {},
}

# Per-speed-grade deltas.  The 2400 MT/s bin is the sour spot: its bus
# cycle (0.833 ns) places the quantized PRE->ACT gap at the edge of the
# internal latch-hold window, degrading both NOT drive (Observation 8:
# -20.06% from 2133 to 2400, +19.76% from 2400 to 2666 for 4 destination
# rows) and logic-op sensing (Observation 18: -29.89% for 4-input NAND
# from 2133 to 2400).
_SPEED_TABLE: Dict[int, Dict[str, float]] = {
    2133: {"drive_delta": 0.10, "sense_scale": 0.90},
    2400: {"drive_delta": -1.45, "sense_scale": 4.60},
    2666: {"drive_delta": 0.00, "sense_scale": 1.00},
    3200: {"drive_delta": -0.25, "sense_scale": 1.40},
}


def calibration_for(config: ChipConfig) -> DieCalibration:
    """The calibration constants for a chip configuration.

    Unknown (manufacturer, density, die revision) combinations fall back
    to the reference die so that user-defined chips still simulate:

    >>> from repro import samsung_chip, sk_hynix_chip
    >>> unknown = samsung_chip(
    ...     density_gb=16, die_revision="Z", speed_rate_mts=2666
    ... )
    >>> calibration_for(unknown) == REFERENCE_CALIBRATION
    True

    The default configuration — the SK Hynix 4Gb M-die at 2666 MT/s the
    reference constants are anchored on — still applies its own die-table
    sensing-noise scale (1.55x) on top of the baseline:

    >>> default = calibration_for(sk_hynix_chip())
    >>> default.drive_strength_mean == REFERENCE_CALIBRATION.drive_strength_mean
    True
    >>> round(default.sense_noise_sigma / REFERENCE_CALIBRATION.sense_noise_sigma, 2)
    1.55

    The 2400 MT/s bin is the sour spot (Observations 8 and 18): weaker
    restore drive and noisier sensing than every other grade:

    >>> by_speed = {
    ...     mts: calibration_for(sk_hynix_chip(speed_rate_mts=mts))
    ...     for mts in (2133, 2400, 2666, 3200)
    ... }
    >>> min(by_speed, key=lambda mts: by_speed[mts].drive_strength_mean)
    2400
    >>> max(by_speed, key=lambda mts: by_speed[mts].sense_noise_sigma)
    2400
    """
    key = (config.manufacturer, config.density_gb, config.die_revision)
    overrides = dict(_DIE_TABLE.get(key, {}))
    speed = _SPEED_TABLE.get(config.speed_rate_mts, {})

    sense_scale = float(overrides.pop("sense_scale", 1.0)) * speed.get(
        "sense_scale", 1.0
    )
    calibration = replace(REFERENCE_CALIBRATION, **overrides)
    drive_delta = speed.get("drive_delta", 0.0)
    if drive_delta or sense_scale != 1.0:
        calibration = replace(
            calibration,
            drive_strength_mean=calibration.drive_strength_mean + drive_delta,
            sense_noise_sigma=calibration.sense_noise_sigma * sense_scale,
        )
    return calibration
