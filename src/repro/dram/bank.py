"""Bank-level activation engine.

This is the heart of the simulator: a :class:`Bank` owns subarray cell
state and sense-amplifier stripes and interprets the command stream —
including deliberately timing-violating streams — the way the paper's
experiments show real chips do.

Regimes
-------
A bank is either *precharged* or holds an open activation in one of two
phases:

* ``sharing`` — cells are connected to the bitlines but the sense
  amplifiers have not resolved yet (less than :data:`SENSE_LATENCY_NS`
  since the last ACT).
* ``latched`` — the sense amplifiers have resolved and restored the
  activated cells.

A second ``ACT`` arriving while a violated ``PRE`` is pending triggers the
multi-row activation glitch (§4.1).  What happens next depends on the
phase:

* phase ``latched`` → the **NOT regime** (§5.1): the already-latched
  sense amplifiers drive their (inverted, on the far terminal) values
  into every newly connected cell, with per-cell success governed by the
  drive-strength model.
* phase ``sharing`` → the **logic-op regime** (§6.1): all connected cells
  charge-share; the sense amplifiers then compare the two terminals and
  write AND/OR (and simultaneously NAND/NOR on the opposite terminal)
  results back.

Manufacturer policies (§7 Limitation 1) are honored: Samsung chips only
ever activate sequentially (NOT with one destination row), Micron chips
ignore commands that greatly violate timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.special import ndtr

from ..errors import AddressError, CommandSequenceError
from ..rng import SeedTree
from ..units import GND, VDD, VDD_HALF
from .analog import charge_share, coupling_disturbance, sense_differential
from .calibration import DieCalibration
from .config import ActivationSupport, ChipConfig
from .decoder import ActivationKind, ActivationPattern
from .subarray import Subarray
from .timing import TimingParameters
from .variation import StripeVariation

__all__ = ["Bank", "SENSE_LATENCY_NS"]

#: Time from wordline assertion to sense-amplifier resolution [ns].  A
#: second ACT arriving sooner joins the charge-sharing phase (logic-op
#: regime); arriving later meets latched amplifiers (NOT regime).
SENSE_LATENCY_NS = 4.0



@dataclass
class _OpenState:
    """Mutable record of the currently open activation."""

    rows: Dict[int, Tuple[int, ...]]
    first_subarray: int
    last_subarray: int
    first_act_ns: float
    last_act_ns: float
    phase: str = "sharing"
    nominal: bool = True
    pending_pre_ns: Optional[float] = None
    #: Resolved voltage on each latched stripe's *upper* terminal
    #: (the bitline of subarray ``stripe_index``), on served columns.
    latched_upper: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Region pair (first-set region, last-set region) of the most recent
    #: glitch, used by the design-induced-variation terms.
    glitch_regions: Optional[Tuple[int, int]] = None


class Bank:
    """One DRAM bank: subarrays, sense-amplifier stripes, open-row state."""

    def __init__(
        self,
        index: int,
        config: ChipConfig,
        calibration: DieCalibration,
        timing: TimingParameters,
        decoder,
        seed_tree: SeedTree,
        scramble_rows: bool = True,
    ):
        geometry = config.geometry
        self.index = index
        self.config = config
        self.calibration = calibration
        self.timing = timing
        self.decoder = decoder
        self.temperature_c = 50.0

        # The logical->physical row mapping is an address-decoding design
        # property: identical for every chip and module of a given die
        # type (the paper reverse engineers it once per module type).
        # Derive the scramble seed from the die identity, not the chip.
        die_identity = SeedTree(0).child(
            "row-map",
            config.manufacturer.value,
            f"{config.density_gb}Gb",
            config.die_revision,
        )
        self.subarrays = [
            Subarray(
                s,
                geometry.rows_per_subarray,
                geometry.columns,
                die_identity.child(f"subarray-{s}"),
                scramble_rows=scramble_rows,
                scramble_block_rows=geometry.lwl_block_rows,
            )
            for s in range(geometry.subarrays_per_bank)
        ]
        self.stripes = [
            StripeVariation(geometry.columns, calibration, seed_tree.child(f"stripe-{s}"))
            for s in range(geometry.subarrays_per_bank + 1)
        ]
        self._noise_tree = seed_tree.child("trial-noise")
        self._rng = self._noise_tree.generator()
        self._trial_counter: int = 0
        self._state: Optional[_OpenState] = None
        #: Commands silently dropped by the manufacturer policy (§7).
        self.ignored_commands: int = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    @property
    def columns(self) -> int:
        return self.config.geometry.columns

    def served_columns(self, stripe: int) -> np.ndarray:
        """Column indices served by sense-amplifier stripe ``stripe``.

        In the open-bitline layout each stripe senses every other column:
        stripe ``s`` (between subarrays ``s-1`` and ``s``) serves columns
        with ``column % 2 == s % 2`` (footnote 6: the NOT operation can
        negate half of a row).
        """
        if not 0 <= stripe <= len(self.subarrays):
            raise AddressError(f"stripe {stripe} out of range")
        return np.arange(stripe % 2, self.columns, 2)

    def shared_stripe(self, subarray_a: int, subarray_b: int) -> int:
        """Index of the stripe shared by two neighboring subarrays."""
        if abs(subarray_a - subarray_b) != 1:
            raise AddressError(
                f"subarrays {subarray_a} and {subarray_b} are not neighbors"
            )
        return max(subarray_a, subarray_b)

    def shared_columns(self, subarray_a: int, subarray_b: int) -> np.ndarray:
        """Columns on which two neighboring subarrays share sense amps."""
        return self.served_columns(self.shared_stripe(subarray_a, subarray_b))

    def subarray_of_row(self, row: int) -> int:
        return self.config.geometry.subarray_of_row(row)

    def local_row(self, row: int) -> int:
        return self.config.geometry.local_row(row)

    @property
    def is_open(self) -> bool:
        return self._state is not None

    @property
    def open_rows(self) -> Dict[int, Tuple[int, ...]]:
        """Currently activated rows per subarray (empty dict if closed)."""
        return dict(self._state.rows) if self._state else {}

    # ------------------------------------------------------------------
    # command interface
    # ------------------------------------------------------------------

    def activate(self, row: int, time_ns: float) -> None:
        """Process an ACT command at absolute time ``time_ns``."""
        self.config.geometry.check_row(row)
        self._advance(time_ns)
        state = self._state

        if state is None:
            self._begin_activation(row, time_ns)
            return

        if state.pending_pre_ns is None:
            if self.config.activation_support is ActivationSupport.NONE:
                self.ignored_commands += 1
                return
            raise CommandSequenceError(
                f"ACT to row {row} while bank {self.index} is open with no "
                "pending PRE"
            )

        if self._precharge_is_due(time_ns):
            self._complete_precharge()
            self._begin_activation(row, time_ns)
            return

        self._glitch_activate(row, time_ns)

    def precharge(self, time_ns: float) -> None:
        """Process a PRE command at absolute time ``time_ns``."""
        self._advance(time_ns)
        state = self._state
        if state is None:
            return
        if (
            self.config.activation_support is ActivationSupport.NONE
            and time_ns - state.first_act_ns < self.timing.t_ras - 1e-9
        ):
            # Micron-style policy: a PRE that greatly violates tRAS is
            # ignored; the activation simply continues.
            self.ignored_commands += 1
            return
        state.pending_pre_ns = time_ns

    def settle(self, time_ns: float) -> None:
        """Let time pass with no command (end of program / long NOP)."""
        self._advance(time_ns)
        if self._state is not None and self._precharge_is_due(time_ns):
            self._complete_precharge()

    def _precharge_is_due(self, time_ns: float) -> bool:
        state = self._state
        return (
            state is not None
            and state.pending_pre_ns is not None
            and time_ns - state.pending_pre_ns >= self.timing.t_rp - 1e-9
        )

    def write(self, row: int, bits: np.ndarray, time_ns: float) -> None:
        """Process a WR command: overdrive the open row with ``bits``.

        Per the paper's methodology (§4.2), the write overdrives the
        sense amplifiers of the addressed row's subarray: every activated
        row in that subarray receives the pattern, while activated rows
        in the neighboring subarray receive the *inverse* on the shared
        (served) columns and keep their state elsewhere.
        """
        self._advance(time_ns)
        if self._precharge_is_due(time_ns):
            self._complete_precharge()
        state = self._state
        subarray = self.subarray_of_row(row)
        local = self.local_row(row)
        if state is None or local not in state.rows.get(subarray, ()):
            if self.config.activation_support is ActivationSupport.NONE:
                # The chip already dropped part of the sequence; a WR to
                # a row it never opened is dropped too (§7).
                self.ignored_commands += 1
                return
            raise CommandSequenceError(
                f"WR to row {row}, which is not among the activated rows"
            )
        if state.phase == "sharing":
            self._resolve_and_restore()

        bits = np.asarray(bits).astype(bool)
        if bits.shape != (self.columns,):
            raise ValueError(f"WR pattern must have {self.columns} bits")
        pattern = np.where(bits, VDD, GND)

        for stripe in (subarray, subarray + 1):
            served = self.served_columns(stripe)
            # Stripe ``subarray`` has this subarray on its *upper* side;
            # stripe ``subarray + 1`` has it on its *lower* side.
            this_is_upper = stripe == subarray
            latched = state.latched_upper.setdefault(
                stripe, np.full(self.columns, VDD_HALF)
            )
            latched[served] = (
                pattern[served] if this_is_upper else VDD - pattern[served]
            )
            upper_sub, lower_sub = stripe, stripe - 1
            for side_sub, side_value in (
                (upper_sub, latched),
                (lower_sub, VDD - latched),
            ):
                for local_row in state.rows.get(side_sub, ()):
                    if 0 <= side_sub < len(self.subarrays):
                        cells = self.subarrays[side_sub].voltages[local_row]
                        cells[served] = side_value[served]

    def read(self, row: int, time_ns: float) -> np.ndarray:
        """Process a RD command: the logic values of the open ``row``."""
        self._advance(time_ns)
        if self._precharge_is_due(time_ns):
            self._complete_precharge()
        state = self._state
        if state is None:
            raise CommandSequenceError("RD from a precharged bank")
        if state.phase == "sharing":
            self._resolve_and_restore()
        subarray = self.subarray_of_row(row)
        local = self.local_row(row)
        if local not in state.rows.get(subarray, ()):
            raise CommandSequenceError(
                f"RD from row {row}, which is not among the activated rows"
            )
        return self.subarrays[subarray].read_bits(local)

    def refresh(self, time_ns: float) -> None:
        """Process a REF command: snap every cell to its nearest rail.

        Note that refresh *destroys* fractional values: a Frac'd VDD/2
        cell is re-amplified to a full rail like any other.  Reference
        rows must therefore be re-initialized after any refresh — one
        reason the paper's command sequences re-run Frac per trial.
        """
        self._advance(time_ns)
        if self._state is not None:
            raise CommandSequenceError("REF issued to an open bank")
        for subarray in self.subarrays:
            volts = subarray.voltages
            np.copyto(volts, np.where(volts > VDD_HALF, VDD, GND))

    def elapse(self, milliseconds: float) -> None:
        """Let wall-clock time pass: stored charge leaks toward GND.

        Leakage follows the calibrated per-millisecond rate and doubles
        per 10 degC above the 50 degC baseline (the standard retention
        model the paper's refresh background assumes, §2.1).  Without a
        REF within the retention window, logic-1 cells decay through the
        sensing threshold and data is lost — and Frac'd VDD/2 cells,
        which start *at* the threshold, decay much sooner.
        """
        if milliseconds < 0:
            raise ValueError(f"milliseconds must be non-negative, got {milliseconds}")
        self._require_closed("elapse")
        rate = self.calibration.leakage_per_ms * (
            2.0 ** ((self.temperature_c - 50.0) / 10.0)
        )
        decay = float(np.exp(-rate * milliseconds))
        for subarray in self.subarrays:
            subarray.voltages *= decay

    # ------------------------------------------------------------------
    # direct state access (host-side convenience, not DRAM commands)
    # ------------------------------------------------------------------

    def store_bits(self, row: int, bits: np.ndarray) -> None:
        """Backdoor write of a full row (host initialization shortcut)."""
        self._require_closed("store_bits")
        self.subarrays[self.subarray_of_row(row)].write_bits(self.local_row(row), bits)

    def store_voltages(self, row: int, volts: np.ndarray) -> None:
        """Backdoor write of raw cell voltages (e.g. a Frac'd row)."""
        self._require_closed("store_voltages")
        self.subarrays[self.subarray_of_row(row)].write_voltages(
            self.local_row(row), volts
        )

    def load_bits(self, row: int) -> np.ndarray:
        """Backdoor read of a full row (host verification shortcut)."""
        self._require_closed("load_bits")
        return self.subarrays[self.subarray_of_row(row)].read_bits(self.local_row(row))

    def apply_hammer(self, row: int, activations: int) -> None:
        """Apply ``activations`` single-sided hammer cycles to ``row``.

        Equivalent to an unrolled ACT/PRE loop: each physically adjacent
        victim cell flips with the calibrated per-activation probability.
        Rows at the subarray edge have a single physical neighbor, which
        is exactly the signature the row-order reverse engineering keys
        on (§5.2).
        """
        self._require_closed("apply_hammer")
        if activations < 0:
            raise ValueError("activations must be non-negative")
        subarray = self.subarrays[self.subarray_of_row(row)]
        local = self.local_row(row)
        flip_p = 1.0 - (1.0 - self.calibration.hammer_flip_probability) ** activations
        for victim in subarray.physical_neighbors(local):
            flips = self._rng.random(self.columns) < flip_p
            volts = subarray.voltages[victim]
            volts[flips] = VDD - volts[flips]

    # ------------------------------------------------------------------
    # trial-noise substreams
    # ------------------------------------------------------------------
    #
    # Measurements consume analog noise from counter-based per-(bank,
    # trial) substreams: trial ``i`` draws from the generator of seed
    # child ``trial-noise/trial-{i}``, regardless of whether the trials
    # run one at a time (``begin_trial``) or as one batched block
    # (``reserve_trial_block``).  This is what makes the batched engine
    # bit-identical to the serial path: both consume exactly the same
    # numbers from exactly the same streams.  Code that never calls
    # these (hammer sweeps, reverse engineering, ad-hoc programs) keeps
    # drawing from the undisturbed ``trial-noise`` root stream.

    def _trial_generator(self, index: int) -> np.random.Generator:
        if index < 0:
            raise ValueError(f"trial index must be non-negative, got {index}")
        return self._noise_tree.child(f"trial-{index}").generator()

    def begin_trial(self) -> int:
        """Switch the noise stream to the next per-trial substream.

        Returns the trial index that was assigned.  Serial measurement
        loops call this once per trial; the batched engine reserves the
        same indices via :meth:`reserve_trial_block`, so interleaving
        serial and batched blocks keeps the streams aligned.
        """
        index = self._trial_counter
        self._trial_counter += 1
        self._rng = self._trial_generator(index)
        return index

    def reserve_trial_block(
        self, n_trials: int
    ) -> Tuple[int, List[np.random.Generator]]:
        """Reserve ``n_trials`` consecutive trial substreams.

        Returns ``(first_index, generators)``.  The bank's own stream is
        left positioned on the *last* trial's generator — exactly where
        ``n_trials`` successive :meth:`begin_trial` calls would leave it.
        """
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        start = self._trial_counter
        self._trial_counter += n_trials
        generators = [self._trial_generator(start + i) for i in range(n_trials)]
        self._rng = generators[-1]
        return start, generators

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _require_closed(self, operation: str) -> None:
        if self._state is not None:
            raise CommandSequenceError(f"{operation} requires a precharged bank")

    def _begin_activation(self, row: int, time_ns: float) -> None:
        subarray = self.subarray_of_row(row)
        local = self.local_row(row)
        self._state = _OpenState(
            rows={subarray: (local,)},
            first_subarray=subarray,
            last_subarray=subarray,
            first_act_ns=time_ns,
            last_act_ns=time_ns,
        )

    def _advance(self, time_ns: float) -> None:
        state = self._state
        if state is None:
            return
        if time_ns < state.last_act_ns - 1e-9:
            raise CommandSequenceError(
                f"time went backwards: {time_ns} < {state.last_act_ns}"
            )
        if state.phase != "sharing":
            return
        # A pending PRE disconnects the wordlines: the sense amplifiers
        # only resolve if they had SENSE_LATENCY_NS *before* the PRE
        # arrived.  An activation interrupted earlier never resolves —
        # that is the FracDRAM mechanism (see _complete_precharge).
        horizon_ns = time_ns
        if state.pending_pre_ns is not None:
            horizon_ns = min(horizon_ns, state.pending_pre_ns)
        if horizon_ns - state.last_act_ns >= SENSE_LATENCY_NS:
            self._resolve_and_restore()

    def _complete_precharge(self) -> None:
        state = self._state
        assert state is not None
        if state.phase == "sharing":
            # The precharge interrupted the activation before the sense
            # amplifiers resolved: the equalizer pulls the bitlines — and
            # the still-connected cells — to VDD/2.  This is exactly the
            # mechanism FracDRAM exploits to store fractional values.
            sigma = self.calibration.frac_noise_sigma
            for subarray_index, rows in state.rows.items():
                subarray = self.subarrays[subarray_index]
                for local in rows:
                    noise = sigma * self._rng.standard_normal(self.columns)
                    subarray.write_voltages(
                        local, np.clip(VDD_HALF + noise, GND, VDD)
                    )
        self._state = None

    # -- glitch path -----------------------------------------------------

    def _glitch_activate(self, row: int, time_ns: float) -> None:
        state = self._state
        assert state is not None
        support = self.config.activation_support

        if support is ActivationSupport.NONE:
            # The chip ignores an ACT that greatly violates tRP (§7).
            self.ignored_commands += 1
            state.pending_pre_ns = None
            return

        subarray_last = self.subarray_of_row(row)
        if subarray_last == state.first_subarray:
            pattern = self.decoder.same_subarray_pattern(
                self.index, self._first_row_address(), row
            )
        elif abs(subarray_last - state.first_subarray) == 1:
            pattern = self.decoder.neighboring_pattern(
                self.index, self._first_row_address(), row
            )
        else:
            # Electrically isolated subarrays: the second activation
            # proceeds independently (HiRA-style); we model it as a fresh
            # activation, the prior one closing without completing.
            self._abort_to_fresh(row, time_ns)
            return

        state.pending_pre_ns = None

        if pattern.kind is ActivationKind.LAST_ONLY or not self._engages(
            pattern, state
        ):
            self._abort_to_fresh(row, time_ns)
            return

        if pattern.kind is ActivationKind.SEQUENTIAL and state.phase == "sharing":
            # Sequential-only chips finish the first activation before
            # honoring the second: the charge never mixes, so the logic-op
            # regime is unreachable (Samsung, §6.3).
            self._resolve_and_restore()

        if state.phase == "latched":
            self._join_latched(pattern, time_ns)
        else:
            self._join_sharing(pattern, time_ns)

    def _first_row_address(self) -> int:
        state = self._state
        assert state is not None
        local_rows = state.rows[state.first_subarray]
        return self.config.geometry.bank_row(state.first_subarray, local_rows[0])

    def _engages(self, pattern: ActivationPattern, state: _OpenState) -> bool:
        """Per-trial draw: does the multi-row glitch fully engage?"""
        if state.phase == "latched":
            probability = self.calibration.not_engage_probability
        else:
            probability = self.calibration.engage_probability_for(
                max(1, pattern.n_first)
            )
        return bool(self._rng.random() < probability)

    def _abort_to_fresh(self, row: int, time_ns: float) -> None:
        """The glitch did not engage: only the last ACT takes effect."""
        state = self._state
        assert state is not None
        if state.phase == "sharing":
            # Nothing was ever resolved; the interrupted cells keep their
            # (mostly intact) charge and get restored by the periphery.
            self._state = None
        else:
            self._state = None
        self._begin_activation(row, time_ns)

    def _join_sharing(self, pattern: ActivationPattern, time_ns: float) -> None:
        """Logic-op regime: the new rows join the charge-sharing phase."""
        state = self._state
        assert state is not None
        rows = dict(state.rows)
        merged_first = sorted(
            set(rows.get(pattern.subarray_first, ())) | set(pattern.rows_first)
        )
        rows[pattern.subarray_first] = tuple(merged_first)
        merged_last = sorted(
            set(rows.get(pattern.subarray_last, ())) | set(pattern.rows_last)
        )
        rows[pattern.subarray_last] = tuple(merged_last)
        state.rows = rows
        state.last_subarray = pattern.subarray_last
        state.last_act_ns = time_ns
        state.nominal = False
        state.glitch_regions = self._region_pair(pattern)

    def _join_latched(self, pattern: ActivationPattern, time_ns: float) -> None:
        """NOT regime: latched amplifiers drive the newly joined rows."""
        state = self._state
        assert state is not None
        rows = dict(state.rows)
        rows[pattern.subarray_first] = tuple(
            sorted(set(rows.get(pattern.subarray_first, ())) | set(pattern.rows_first))
        )
        rows[pattern.subarray_last] = tuple(
            sorted(set(rows.get(pattern.subarray_last, ())) | set(pattern.rows_last))
        )
        state.rows = rows
        state.last_subarray = pattern.subarray_last
        state.last_act_ns = time_ns
        state.nominal = False
        state.glitch_regions = self._region_pair(pattern)

        src_region, dst_region = state.glitch_regions
        # Design-induced variation scales with the drive load: far rows
        # cost little extra when one cell hangs off the latch, but the
        # long-wordline resistance compounds across a many-row set —
        # which is why the paper's distance heatmap (aggregated over all
        # destination counts) shows such deep valleys (Obs. 6) while the
        # single-destination NOT stays near 98% everywhere (Obs. 4).
        total_rows_pending = sum(len(r) for r in rows.values())
        load_scale = 0.35 + 0.65 * min(1.0, (total_rows_pending - 2) / 30.0)
        distance_z = (
            self.calibration.not_distance_z[src_region][dst_region] * load_scale
        )
        temperature_z = -self.calibration.temperature_drive_per_degc * (
            self.temperature_c - 50.0
        )

        for stripe in self._touched_stripes(rows):
            served = self.served_columns(stripe)
            latched = state.latched_upper.get(stripe)
            if latched is None:
                # The far stripe of the joining subarray was precharged:
                # the joining cells are sensed normally against the open
                # reference and re-restored (the "retain initial values"
                # half of Observation 1).  The amplifier resolves *with*
                # the cells here, so there is no latch fight.
                latched, _disturbance = self._sense_stripe(stripe, rows, served, state)
                state.latched_upper[stripe] = latched
                self._writeback_exact(stripe, rows, served, latched)
                continue
            # Rows on this stripe only: the shared stripe fights the
            # combined charge of both subarrays' rows, a far stripe only
            # its own side's.
            load = sum(
                len(rows.get(side, ())) for side in (stripe - 1, stripe)
            )
            self._latched_fight_drive(
                stripe,
                rows,
                served,
                latched,
                load,
                distance_z + temperature_z,
            )
        state.phase = "latched"

    def pattern_regions(self, pattern: ActivationPattern) -> Tuple[int, int]:
        """Close/Middle/Far regions (first set, last set) of a pattern's
        activated rows relative to the shared stripe — the grouping used
        by the paper's distance heatmaps (Figs. 9 and 17)."""
        return self._region_pair(pattern)

    def _region_pair(self, pattern: ActivationPattern) -> Tuple[int, int]:
        """(first-set region, last-set region) relative to the shared stripe."""
        if pattern.subarray_first == pattern.subarray_last:
            return (1, 1)
        stripe = self.shared_stripe(pattern.subarray_first, pattern.subarray_last)
        first_sub = self.subarrays[pattern.subarray_first]
        last_sub = self.subarrays[pattern.subarray_last]
        rows_first = pattern.rows_first or (0,)
        rows_last = pattern.rows_last or (0,)
        first_region = first_sub.region_of_rows(
            rows_first, upper=(stripe == pattern.subarray_first + 1)
        )
        last_region = last_sub.region_of_rows(
            rows_last, upper=(stripe == pattern.subarray_last + 1)
        )
        return (int(first_region), int(last_region))

    def _touched_stripes(self, rows: Dict[int, Tuple[int, ...]]) -> List[int]:
        stripes = set()
        for subarray_index, local_rows in rows.items():
            if local_rows:
                stripes.add(subarray_index)
                stripes.add(subarray_index + 1)
        return sorted(stripes)

    # -- resolution ------------------------------------------------------

    def _resolve_and_restore(self) -> None:
        """Sense amplifiers resolve; results are written back to cells."""
        state = self._state
        assert state is not None
        rows = state.rows
        total_rows = sum(len(r) for r in rows.values())

        for stripe in self._touched_stripes(rows):
            served = self.served_columns(stripe)
            resolved, disturbance = self._sense_stripe(stripe, rows, served, state)
            state.latched_upper[stripe] = resolved
            if state.nominal:
                self._writeback_exact(stripe, rows, served, resolved)
            else:
                # Restore after a multi-row resolution is itself a latch
                # fight: the amplifier must overdrive every connected
                # cell, and adjacent columns swinging the opposite way
                # couple into the fight.  The flip probability is what
                # caps many-input op success around 95% at 16 inputs
                # (Observation 10) — and it is symmetric across the two
                # terminals, which is why AND tracks NAND and OR tracks
                # NOR so closely (Observation 13).
                extra_z = (
                    -self.calibration.op_coupling_flip_z * disturbance
                    - self.calibration.temperature_drive_per_degc
                    * (self.temperature_c - 50.0)
                )
                self._latched_fight_drive(
                    stripe,
                    rows,
                    served,
                    resolved,
                    total_rows,
                    extra_z,
                    alpha=self.calibration.op_flip_alpha,
                )
        state.phase = "latched"

    def _gather_side(
        self,
        subarray_index: int,
        rows: Dict[int, Tuple[int, ...]],
        served: np.ndarray,
    ) -> np.ndarray:
        """Voltages of activated cells on one side of a stripe."""
        if not 0 <= subarray_index < len(self.subarrays):
            return np.empty((0, served.size))
        local_rows = rows.get(subarray_index, ())
        if not local_rows:
            return np.empty((0, served.size))
        voltages = self.subarrays[subarray_index].voltages
        return voltages[np.asarray(local_rows)][:, served]

    def _sense_stripe(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: np.ndarray,
        state: _OpenState,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Charge-share and compare on one stripe.

        Returns the resolved upper-terminal voltage (full-width array,
        served columns set) and the per-served-column coupling
        disturbance of the raw differential.
        """
        calibration = self.calibration
        upper_cells = self._gather_side(stripe, rows, served)
        lower_cells = self._gather_side(stripe - 1, rows, served)

        v_upper = charge_share(
            upper_cells, calibration.cell_cap_ff, calibration.bitline_cap_ff
        )
        v_lower = charge_share(
            lower_cells, calibration.cell_cap_ff, calibration.bitline_cap_ff
        )
        disturbance = coupling_disturbance(v_upper - v_lower)

        if state.nominal:
            upper_wins = (v_upper - v_lower) > 0.0
        else:
            margin_shift = self._glitch_margin_shift(stripe, state)
            gain_scale = self._glitch_cm_gain_scale(stripe, state)
            temperature_scale = 1.0 + calibration.temperature_noise_per_degc * (
                self.temperature_c - 50.0
            )
            upper_wins = sense_differential(
                v_upper,
                v_lower,
                self.stripes[stripe].offsets[served],
                calibration.sense_noise_sigma * temperature_scale,
                self._rng,
                common_mode_gain=calibration.common_mode_noise_gain * gain_scale,
                common_mode_threshold=calibration.common_mode_threshold,
                sigma_cap_factor=calibration.common_mode_sigma_cap * gain_scale,
                common_mode_offset_gain=calibration.common_mode_offset_gain,
                low_common_mode_offset_gain=calibration.low_common_mode_offset_gain,
                coupling_sigma=calibration.coupling_noise_sigma,
                margin_shift=margin_shift,
            )

        resolved = np.full(self.columns, VDD_HALF)
        resolved[served] = np.where(upper_wins, VDD, GND)
        return resolved, disturbance

    def _glitch_margin_shift(self, stripe: int, state: _OpenState) -> float:
        """Design-induced margin shift in the logic-op regime (Fig. 17)."""
        if state.glitch_regions is None or state.first_subarray == state.last_subarray:
            return 0.0
        if stripe != self.shared_stripe(state.first_subarray, state.last_subarray):
            return 0.0
        first_region, last_region = state.glitch_regions
        shift = self.calibration.op_distance_margin[last_region][first_region]
        # The shift favors the *last-activated* (compute) side; flip the
        # sign when that side sits on the lower terminal.
        last_is_upper = stripe == state.last_subarray
        return shift if last_is_upper else -shift

    def _glitch_cm_gain_scale(self, stripe: int, state: _OpenState) -> float:
        """Design-induced scaling of the common-mode noise (Fig. 17)."""
        if state.glitch_regions is None or state.first_subarray == state.last_subarray:
            return 1.0
        if stripe != self.shared_stripe(state.first_subarray, state.last_subarray):
            return 1.0
        first_region, last_region = state.glitch_regions
        return self.calibration.op_distance_cm_gain_scale[last_region][first_region]

    def _latched_fight_drive(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: np.ndarray,
        latched_upper: np.ndarray,
        load_rows: int,
        extra_z,
        alpha: Optional[float] = None,
    ) -> None:
        """Newly connected cells fight an already-latched amplifier.

        Per column, the amplifier either *holds* — every connected cell
        is driven to the latched polarity (the NOT result on the far
        terminal) — or the injected cell charge *flips the latch*, and
        every connected cell is driven to the inverted, wrong value.
        The flip (not a benign retention) is what pushes the measured
        NOT success rate far below 50% at high destination-row counts
        (7.95% at 32 destination rows, Observation 4): the destination
        ends up with the source's value instead of its negation.
        """
        calibration = self.calibration
        if alpha is None:
            alpha = calibration.drive_load_alpha
        strengths = self.stripes[stripe].strengths[served]
        z = strengths - alpha * max(0, load_rows - 1) + extra_z
        holds = self._rng.random(served.size) < ndtr(z)

        resolved = latched_upper.copy()
        flipped = served[~holds]
        resolved[flipped] = VDD - resolved[flipped]
        latched_upper[served] = resolved[served]
        self._writeback_exact(stripe, rows, served, resolved)

    def _writeback_exact(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: np.ndarray,
        resolved_upper: np.ndarray,
    ) -> None:
        """Deterministic restore (nominal single-row activation)."""
        for subarray_index, value in (
            (stripe, resolved_upper),
            (stripe - 1, VDD - resolved_upper),
        ):
            if not 0 <= subarray_index < len(self.subarrays):
                continue
            for local in rows.get(subarray_index, ()):
                self.subarrays[subarray_index].voltages[local][served] = value[served]

