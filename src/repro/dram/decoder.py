"""Row-decoder models: how ``ACT → PRE → ACT`` activates multiple rows.

The paper demonstrates (§4) that a timing-violating ``ACT R_F → PRE →
ACT R_L`` sequence simultaneously activates *sets* of rows in two
neighboring subarrays, in two families of patterns — N:N and N:2N with
N up to 16 — and that *which* pattern appears is a deterministic function
of the two row addresses (Observation 2).  The true decoder circuit is
proprietary; the paper defers to a hypothetical design (PULSAR [105]).

We provide two interchangeable models:

* :class:`HierarchicalRowDecoder` — a mechanistic model of the
  hypothesized circuit: the violated precharge leaves per-bit local-
  wordline predecode latches asserted, so the second activation drives
  the *Cartesian union* of the two addresses' predecode values, giving
  ``2^h`` rows per subarray where ``h`` is the Hamming distance of the
  local-wordline fields.  Useful for studying the hypothesis itself.

* :class:`CalibratedDecoder` — the default for characterization: assigns
  each (bank, R_F, R_L) pair a deterministic activation category with the
  *empirical coverage distribution* measured by the paper (Fig. 5), then
  builds aligned row blocks around the addressed rows.  This reproduces
  the measured pattern statistics without claiming knowledge of the real
  circuit (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import AddressError
from ..rng import SeedTree
from .config import ActivationSupport, ChipConfig

__all__ = [
    "ActivationKind",
    "ActivationPattern",
    "FIG5_COVERAGE",
    "CalibratedDecoder",
    "HierarchicalRowDecoder",
    "make_decoder",
]


class ActivationKind(enum.Enum):
    """Outcome family of a timing-violating double activation."""

    #: N rows in each subarray stay activated together (N_RF = N_RL).
    N_TO_N = "nn"
    #: N rows in the first, 2N in the last subarray (N_RL = 2 * N_RF).
    N_TO_2N = "n2n"
    #: The glitch did not engage: only the last-addressed row activates.
    LAST_ONLY = "last_only"
    #: Rows activate one after the other, never simultaneously (Samsung).
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class ActivationPattern:
    """The rows a double-activation sequence leaves activated.

    ``rows_first``/``rows_last`` are *local* row indices within the first
    and last addressed subarray, respectively.
    """

    kind: ActivationKind
    subarray_first: int
    subarray_last: int
    rows_first: Tuple[int, ...]
    rows_last: Tuple[int, ...]

    @property
    def n_first(self) -> int:
        return len(self.rows_first)

    @property
    def n_last(self) -> int:
        return len(self.rows_last)

    @property
    def total_rows(self) -> int:
        return self.n_first + self.n_last

    def label(self) -> str:
        """The paper's ``N_RF:N_RL`` notation, e.g. ``'8:16'``."""
        return f"{self.n_first}:{self.n_last}"


#: Average coverage of each N_RF:N_RL activation type across all tested
#: chips (paper §4.3, Fig. 5 / Observation 1).  The remaining mass
#: (~17.85%) corresponds to pairs where the glitch does not engage.
FIG5_COVERAGE: Dict[Tuple[int, ActivationKind], float] = {
    (1, ActivationKind.N_TO_N): 0.0023,
    (1, ActivationKind.N_TO_2N): 0.0015,
    (2, ActivationKind.N_TO_N): 0.0260,
    (2, ActivationKind.N_TO_2N): 0.0153,
    (4, ActivationKind.N_TO_N): 0.1158,
    (4, ActivationKind.N_TO_2N): 0.0542,
    (8, ActivationKind.N_TO_N): 0.2452,
    (8, ActivationKind.N_TO_2N): 0.0795,
    (16, ActivationKind.N_TO_N): 0.2435,
    (16, ActivationKind.N_TO_2N): 0.0382,
}


def _aligned_block(local_row: int, size: int, rows_per_subarray: int) -> Tuple[int, ...]:
    """The ``size``-aligned block of local rows containing ``local_row``."""
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    start = (local_row // size) * size
    end = min(start + size, rows_per_subarray)
    return tuple(range(start, end))


class CalibratedDecoder:
    """Empirically calibrated activation-pattern model (default).

    Every (bank, R_F, R_L) pair deterministically maps to a category drawn
    from the Fig. 5 coverage distribution via a seeded hash, then the
    activated rows are the size-N aligned blocks around each addressed
    row (2N-aligned on the last side for N:2N patterns).  Chip capability
    limits apply: dies without N:2N support fold that mass into N:N, and
    dies with a smaller ``max_simultaneous_n`` clip N (footnote 12).
    """

    def __init__(self, config: ChipConfig, seed_tree: SeedTree):
        self._config = config
        self._seed_tree = seed_tree.child("calibrated-decoder")
        self._categories = self._build_categories(config)

    @staticmethod
    def _build_categories(
        config: ChipConfig,
    ) -> Tuple[Tuple[float, int, ActivationKind], ...]:
        """Cumulative (threshold, N, kind) table honoring chip limits."""
        mass: Dict[Tuple[int, ActivationKind], float] = {}
        for (n, kind), probability in FIG5_COVERAGE.items():
            effective_n = min(n, config.max_simultaneous_n)
            effective_kind = kind
            if kind is ActivationKind.N_TO_2N and not config.supports_n_to_2n:
                effective_kind = ActivationKind.N_TO_N
            key = (effective_n, effective_kind)
            mass[key] = mass.get(key, 0.0) + probability

        table = []
        cumulative = 0.0
        for (n, kind), probability in sorted(
            mass.items(), key=lambda item: (item[0][0], item[0][1].value)
        ):
            cumulative += probability
            table.append((cumulative, n, kind))
        return tuple(table)

    def neighboring_pattern(
        self, bank: int, row_first: int, row_last: int
    ) -> ActivationPattern:
        """Pattern for a double activation across neighboring subarrays."""
        geometry = self._config.geometry
        sub_first = geometry.subarray_of_row(row_first)
        sub_last = geometry.subarray_of_row(row_last)
        if abs(sub_first - sub_last) != 1:
            raise AddressError(
                f"rows {row_first} and {row_last} are not in neighboring "
                f"subarrays ({sub_first} vs {sub_last})"
            )
        local_first = geometry.local_row(row_first)
        local_last = geometry.local_row(row_last)

        if self._config.activation_support is ActivationSupport.SEQUENTIAL_ONLY:
            return ActivationPattern(
                ActivationKind.SEQUENTIAL,
                sub_first,
                sub_last,
                (local_first,),
                (local_last,),
            )

        draw = self._seed_tree.uniform_hash(
            f"bank={bank}", f"rf={row_first}", f"rl={row_last}"
        )
        n, kind = self._category_for(draw)
        if kind is ActivationKind.LAST_ONLY:
            return ActivationPattern(
                ActivationKind.LAST_ONLY, sub_first, sub_last, (), (local_last,)
            )

        rows_per_subarray = geometry.rows_per_subarray
        rows_first = _aligned_block(local_first, n, rows_per_subarray)
        if kind is ActivationKind.N_TO_2N:
            rows_last = _aligned_block(local_last, 2 * n, rows_per_subarray)
        else:
            rows_last = _aligned_block(local_last, n, rows_per_subarray)
        return ActivationPattern(kind, sub_first, sub_last, rows_first, rows_last)

    def _category_for(self, draw: float) -> Tuple[int, ActivationKind]:
        for threshold, n, kind in self._categories:
            if draw < threshold:
                return n, kind
        return 1, ActivationKind.LAST_ONLY

    def same_subarray_pattern(
        self, bank: int, row_first: int, row_last: int
    ) -> ActivationPattern:
        """Pattern for a double activation within one subarray.

        Used by RowClone, Frac, and the in-subarray MAJ baselines.  The
        model activates both addressed rows, plus the sibling rows needed
        to align to a power-of-two block when the addresses share a
        local-wordline block (QUAC-style quadruple activation emerges for
        addresses differing in two low bits).
        """
        geometry = self._config.geometry
        sub = geometry.subarray_of_row(row_first)
        if geometry.subarray_of_row(row_last) != sub:
            raise AddressError(
                f"rows {row_first} and {row_last} are not in the same subarray"
            )
        local_first = geometry.local_row(row_first)
        local_last = geometry.local_row(row_last)
        block = geometry.lwl_block_rows
        if local_first // block == local_last // block and local_first != local_last:
            span = 1
            while (local_first // span) != (local_last // span):
                span *= 2
            rows = _aligned_block(local_first, span, geometry.rows_per_subarray)
        else:
            rows = tuple(sorted({local_first, local_last}))
        return ActivationPattern(
            ActivationKind.N_TO_N, sub, sub, rows, rows
        )


class HierarchicalRowDecoder:
    """Mechanistic model of the hypothesized hierarchical decoder.

    Row addresses split into a local-wordline (LWL) field — the low
    ``log2(lwl_block_rows)`` bits — and a master-wordline block index.
    The violated precharge leaves the per-bit LWL predecode latches of the
    first activation asserted, so the second activation ORs its own
    values in: each subarray activates the Cartesian union of per-bit
    values, ``2^h`` rows where ``h`` is the Hamming distance between the
    LWL fields.  The N:2N family appears when the last address sits in
    the upper half of its LWL block *and* the die supports it: the
    boundary master-wordline latch glitches and the neighboring aligned
    block joins.
    """

    def __init__(self, config: ChipConfig, seed_tree: Optional[SeedTree] = None):
        self._config = config
        block = config.geometry.lwl_block_rows
        self._lwl_bits = block.bit_length() - 1

    def _union_rows(self, lwl_a: int, lwl_b: int, block_base: int) -> Tuple[int, ...]:
        """Cartesian union of per-bit predecode values within a block."""
        values = {0}
        for bit in range(self._lwl_bits):
            bits_seen = {(lwl_a >> bit) & 1, (lwl_b >> bit) & 1}
            values = {v | (b << bit) for v in values for b in bits_seen}
        return tuple(sorted(block_base + v for v in values))

    def neighboring_pattern(
        self, bank: int, row_first: int, row_last: int
    ) -> ActivationPattern:
        geometry = self._config.geometry
        sub_first = geometry.subarray_of_row(row_first)
        sub_last = geometry.subarray_of_row(row_last)
        if abs(sub_first - sub_last) != 1:
            raise AddressError(
                f"rows {row_first} and {row_last} are not in neighboring "
                f"subarrays ({sub_first} vs {sub_last})"
            )
        local_first = geometry.local_row(row_first)
        local_last = geometry.local_row(row_last)

        if self._config.activation_support is ActivationSupport.SEQUENTIAL_ONLY:
            return ActivationPattern(
                ActivationKind.SEQUENTIAL,
                sub_first,
                sub_last,
                (local_first,),
                (local_last,),
            )

        block = geometry.lwl_block_rows
        lwl_first = local_first % block
        lwl_last = local_last % block
        base_first = (local_first // block) * block
        base_last = (local_last // block) * block

        hamming = bin(lwl_first ^ lwl_last).count("1")
        n = 1 << hamming
        if n > self._config.max_simultaneous_n:
            # The deeper predecode stages reset before the latch window:
            # the glitch does not engage.
            return ActivationPattern(
                ActivationKind.LAST_ONLY, sub_first, sub_last, (), (local_last,)
            )

        rows_first = self._union_rows(lwl_first, lwl_last, base_first)
        rows_last = self._union_rows(lwl_first, lwl_last, base_last)

        boundary = lwl_last >= block - block // 4
        if (
            self._config.supports_n_to_2n
            and boundary
            and n < block
            and len(rows_last) == n
        ):
            doubled = _aligned_block(
                local_last, 2 * n, geometry.rows_per_subarray
            )
            extra = self._union_rows(
                lwl_first, lwl_last, base_last
            )
            merged = sorted(set(doubled) | set(extra))
            if len(merged) == 2 * n:
                return ActivationPattern(
                    ActivationKind.N_TO_2N,
                    sub_first,
                    sub_last,
                    rows_first,
                    tuple(merged),
                )
        return ActivationPattern(
            ActivationKind.N_TO_N, sub_first, sub_last, rows_first, rows_last
        )

    def same_subarray_pattern(
        self, bank: int, row_first: int, row_last: int
    ) -> ActivationPattern:
        geometry = self._config.geometry
        sub = geometry.subarray_of_row(row_first)
        if geometry.subarray_of_row(row_last) != sub:
            raise AddressError(
                f"rows {row_first} and {row_last} are not in the same subarray"
            )
        local_first = geometry.local_row(row_first)
        local_last = geometry.local_row(row_last)
        block = geometry.lwl_block_rows
        if local_first // block == local_last // block:
            rows = self._union_rows(
                local_first % block,
                local_last % block,
                (local_first // block) * block,
            )
        else:
            rows = tuple(sorted({local_first, local_last}))
        return ActivationPattern(ActivationKind.N_TO_N, sub, sub, rows, rows)


def make_decoder(config: ChipConfig, seed_tree: SeedTree, model: str = "calibrated"):
    """Factory: ``'calibrated'`` (default) or ``'hierarchical'``."""
    if model == "calibrated":
        return CalibratedDecoder(config, seed_tree)
    if model == "hierarchical":
        return HierarchicalRowDecoder(config, seed_tree)
    raise ValueError(f"unknown decoder model {model!r}")
