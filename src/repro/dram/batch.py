"""Batched trial-axis execution of the bank state machine.

The characterization methodology measures success *rates*: the same
command sequence runs for hundreds of trials with freshly drawn operands
(§5, Figs. 5-21).  The serial path executes every trial as a separate
pass through :class:`~repro.dram.bank.Bank`; this module replays one
program over a whole block of trials at once, carrying a leading trials
axis through the analog kernels of :mod:`repro.dram.analog`.

Bit-identity with the serial path is the design invariant, achieved by
two mechanisms:

* **Per-trial noise substreams.**  Trial ``i`` draws its analog noise
  from the counter-based substream ``trial-noise/trial-{i}`` of the
  bank's seed tree (see :meth:`Bank.begin_trial` /
  :meth:`Bank.reserve_trial_block`), so the batched engine and the
  serial loop consume exactly the same numbers from exactly the same
  streams, in the same per-trial order.

* **Lanes.**  The command stream is identical across trials; the only
  control-flow divergence is the per-trial glitch-engagement draw.  A
  :class:`_Lane` groups trials whose open-activation state is identical
  and mirrors the serial state machine on the whole group at once;
  lanes split when the engagement draws disagree and merge again once
  their activations close.

Cell state is kept as sparse *overlays*: only rows the batch actually
touches get a ``(n_trials, columns)`` array (float32, like
:class:`~repro.dram.subarray.Subarray` storage); everything else stays
in the underlying bank.  Measurement loops re-initialize every activated
row before each program, which is what makes the replicate-on-first-
touch overlay equivalent to the serial carry-over of row state from one
trial to the next.  :meth:`BatchedBank.finalize` writes the last trial's
overlay back, leaving the bank exactly as the serial loop would.

Operations that would couple trials through shared state that the
measurement does not re-initialize (``elapse`` retention decay,
RowHammer) are refused with :class:`UnsupportedOperationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.typing import NDArray
from scipy.special import ndtr  # type: ignore[import-untyped]

from ..errors import CommandSequenceError, UnsupportedOperationError
from ..units import GND, VDD, VDD_HALF
from .analog import charge_share, coupling_disturbance, sense_differential
from .bank import SENSE_LATENCY_NS, Bank, _OpenState
from .config import ActivationSupport
from .decoder import ActivationKind
from .module import Module

__all__ = ["BatchedBank", "BatchedModule"]

_FloatArray = NDArray[np.float64]
_BoolArray = NDArray[np.bool_]
_TrialArray = NDArray[np.intp]


@dataclass
class _Lane:
    """A group of trials sharing one open-activation state.

    ``trials`` holds sorted positions into the batch (0..n_trials-1);
    ``state`` is the group's activation state (``None`` == precharged).
    The state's ``latched_upper`` arrays carry a leading lane axis of
    length ``trials.size``.
    """

    trials: _TrialArray
    state: Optional[_OpenState]


class BatchedBank:
    """Replays one bank's command stream over a block of trials.

    Construct with the per-trial generators from
    :meth:`Bank.reserve_trial_block`; issue the same commands a serial
    trial would issue (data arguments may carry a leading trials axis);
    call :meth:`finalize` to fold the last trial's cell state back into
    the bank.
    """

    def __init__(self, bank: Bank, generators: Sequence[np.random.Generator]):
        if bank.is_open:
            raise CommandSequenceError(
                "batched execution requires a precharged bank"
            )
        if len(generators) == 0:
            raise ValueError("need at least one per-trial generator")
        self.bank = bank
        self._gens: List[np.random.Generator] = list(generators)
        self.n_trials = len(self._gens)
        #: Sparse per-row overlays: (subarray, local_row) -> (T, columns).
        self._rows: Dict[Tuple[int, int], NDArray[np.float32]] = {}
        self._lanes: List[_Lane] = [
            _Lane(trials=np.arange(self.n_trials, dtype=np.intp), state=None)
        ]
        #: Commands dropped by the manufacturer policy, summed over
        #: trials; folded into the bank's counter at finalize().
        self.ignored_commands: int = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def columns(self) -> int:
        return self.bank.columns

    def _row_state(self, subarray: int, local: int) -> NDArray[np.float32]:
        """The (T, columns) overlay for one row, created on first touch."""
        key = (subarray, local)
        arr = self._rows.get(key)
        if arr is None:
            base = self.bank.subarrays[subarray].voltages[local]
            arr = np.repeat(base[np.newaxis, :], self.n_trials, axis=0)
            self._rows[key] = arr
        return arr

    def _trial_matrix(self, values: Any, what: str) -> NDArray[Any]:
        """Broadcast per-command data to a (T, columns) view."""
        a = np.asarray(values)
        if a.ndim == 1:
            if a.shape != (self.columns,):
                raise ValueError(
                    f"{what} must have {self.columns} entries, got {a.shape}"
                )
            return np.broadcast_to(a, (self.n_trials, self.columns))
        if a.ndim == 2:
            if a.shape != (self.n_trials, self.columns):
                raise ValueError(
                    f"{what} must have shape ({self.n_trials}, "
                    f"{self.columns}), got {a.shape}"
                )
            return a
        raise ValueError(f"{what} must be 1-D or (n_trials, columns)")

    def _require_all_closed(self, operation: str) -> None:
        for lane in self._lanes:
            if lane.state is not None:
                raise CommandSequenceError(
                    f"{operation} requires a precharged bank"
                )

    def _merge_closed_lanes(self) -> None:
        closed = [lane for lane in self._lanes if lane.state is None]
        open_lanes = [lane for lane in self._lanes if lane.state is not None]
        if len(closed) > 1:
            trials = np.sort(np.concatenate([lane.trials for lane in closed]))
            closed = [_Lane(trials=trials, state=None)]
        self._lanes = sorted(
            closed + open_lanes, key=lambda lane: int(lane.trials[0])
        )

    def _lane_generators(self, lane: _Lane) -> List[np.random.Generator]:
        return [self._gens[int(t)] for t in lane.trials]

    def _normal_draws(self, lane: _Lane, size: int) -> _FloatArray:
        """One standard-normal vector per trial, from the trial's stream."""
        return np.stack(
            [self._gens[int(t)].standard_normal(size) for t in lane.trials]
        )

    def _uniform_draws(self, lane: _Lane, size: int) -> _FloatArray:
        return np.stack(
            [self._gens[int(t)].random(size) for t in lane.trials]
        )

    # ------------------------------------------------------------------
    # command interface (mirrors Bank)
    # ------------------------------------------------------------------

    def activate(self, row: int, time_ns: float) -> None:
        self.bank.config.geometry.check_row(row)
        self._merge_closed_lanes()
        new_lanes: List[_Lane] = []
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            state = lane.state
            if state is None:
                lane.state = self._begin_state(row, time_ns)
                new_lanes.append(lane)
                continue
            if state.pending_pre_ns is None:
                if self.bank.config.activation_support is ActivationSupport.NONE:
                    self.ignored_commands += int(lane.trials.size)
                    new_lanes.append(lane)
                    continue
                raise CommandSequenceError(
                    f"ACT to row {row} while bank {self.bank.index} is open "
                    "with no pending PRE"
                )
            if self._precharge_due(state, time_ns):
                self._complete_precharge_lane(lane)
                lane.state = self._begin_state(row, time_ns)
                new_lanes.append(lane)
                continue
            new_lanes.extend(self._glitch_lane(lane, row, time_ns))
        self._lanes = new_lanes

    def precharge(self, time_ns: float) -> None:
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            state = lane.state
            if state is None:
                continue
            if (
                self.bank.config.activation_support is ActivationSupport.NONE
                and time_ns - state.first_act_ns < self.bank.timing.t_ras - 1e-9
            ):
                self.ignored_commands += int(lane.trials.size)
                continue
            state.pending_pre_ns = time_ns

    def settle(self, time_ns: float) -> None:
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            state = lane.state
            if state is not None and self._precharge_due(state, time_ns):
                self._complete_precharge_lane(lane)
        self._merge_closed_lanes()

    def write(self, row: int, bits: Any, time_ns: float) -> None:
        pattern_bits = self._trial_matrix(
            np.asarray(bits).astype(bool), "WR pattern"
        )
        pattern = np.where(pattern_bits, VDD, GND)
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            state = lane.state
            if state is not None and self._precharge_due(state, time_ns):
                self._complete_precharge_lane(lane)
                state = lane.state
            if state is None or local not in state.rows.get(subarray, ()):
                if self.bank.config.activation_support is ActivationSupport.NONE:
                    self.ignored_commands += int(lane.trials.size)
                    continue
                raise CommandSequenceError(
                    f"WR to row {row}, which is not among the activated rows"
                )
            if state.phase == "sharing":
                self._resolve_and_restore_lane(lane)
            lane_pattern = pattern[lane.trials]
            lane_size = int(lane.trials.size)
            for stripe in (subarray, subarray + 1):
                served = self.bank.served_columns(stripe)
                this_is_upper = stripe == subarray
                latched = state.latched_upper.setdefault(
                    stripe, np.full((lane_size, self.columns), VDD_HALF)
                )
                latched[:, served] = (
                    lane_pattern[:, served]
                    if this_is_upper
                    else VDD - lane_pattern[:, served]
                )
                for side_sub, side_value in (
                    (stripe, latched),
                    (stripe - 1, VDD - latched),
                ):
                    for local_row in state.rows.get(side_sub, ()):
                        if 0 <= side_sub < len(self.bank.subarrays):
                            arr = self._row_state(side_sub, local_row)
                            arr[np.ix_(lane.trials, served)] = side_value[:, served]
        self._merge_closed_lanes()

    def read(self, row: int, time_ns: float) -> NDArray[np.uint8]:
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        out = np.empty((self.n_trials, self.columns), dtype=np.uint8)
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            state = lane.state
            if state is not None and self._precharge_due(state, time_ns):
                self._complete_precharge_lane(lane)
                state = lane.state
            if state is None:
                raise CommandSequenceError("RD from a precharged bank")
            if state.phase == "sharing":
                self._resolve_and_restore_lane(lane)
            if local not in state.rows.get(subarray, ()):
                raise CommandSequenceError(
                    f"RD from row {row}, which is not among the activated rows"
                )
            arr = self._row_state(subarray, local)
            out[lane.trials] = (arr[lane.trials] > 0.5 * VDD).astype(np.uint8)
        return out

    def refresh(self, time_ns: float) -> None:
        for lane in self._lanes:
            self._advance_lane(lane, time_ns)
            if lane.state is not None:
                raise CommandSequenceError("REF issued to an open bank")
        for subarray in self.bank.subarrays:
            volts = subarray.voltages
            np.copyto(volts, np.where(volts > VDD_HALF, VDD, GND))
        for arr in self._rows.values():
            np.copyto(arr, np.where(arr > VDD_HALF, VDD, GND))

    def elapse(self, milliseconds: float) -> None:
        raise UnsupportedOperationError(
            "elapse is not available in a batched trial block: retention "
            "decay on rows the block never re-initializes would couple the "
            "trials; run retention experiments with --batch-trials 1"
        )

    def apply_hammer(self, row: int, activations: int) -> None:
        raise UnsupportedOperationError(
            "apply_hammer is not available in a batched trial block"
        )

    # -- host-side backdoors -------------------------------------------

    def store_bits(self, row: int, bits: Any) -> None:
        self._require_all_closed("store_bits")
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        self.bank.subarrays[subarray].check_row(local)
        pattern = self._trial_matrix(bits, "bits")
        arr = self._row_state(subarray, local)
        arr[:] = np.where(pattern.astype(bool), VDD, GND)

    def store_voltages(self, row: int, volts: Any) -> None:
        self._require_all_closed("store_voltages")
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        self.bank.subarrays[subarray].check_row(local)
        values = self._trial_matrix(
            np.asarray(volts, dtype=np.float64), "voltages"
        )
        arr = self._row_state(subarray, local)
        arr[:] = np.clip(values, GND, VDD)

    def load_bits(self, row: int) -> NDArray[np.uint8]:
        self._require_all_closed("load_bits")
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        self.bank.subarrays[subarray].check_row(local)
        arr = self._rows.get((subarray, local))
        if arr is None:
            base = self.bank.subarrays[subarray].read_bits(local)
            return np.repeat(base[np.newaxis, :], self.n_trials, axis=0)
        return (arr > 0.5 * VDD).astype(np.uint8)

    def finalize(self) -> None:
        """Fold the batch back into the bank.

        Writes the *last* trial's overlay rows into the bank's cell
        arrays — exactly the state a serial loop would have left — and
        transfers the ignored-command count.  All activations must be
        closed, as at the end of any measurement program.
        """
        self._require_all_closed("finalize")
        for (subarray_index, local), arr in self._rows.items():
            self.bank.subarrays[subarray_index].voltages[local] = arr[-1]
        self._rows.clear()
        self.bank.ignored_commands += self.ignored_commands
        self.ignored_commands = 0

    # ------------------------------------------------------------------
    # lane state machine (mirrors Bank's internals draw-for-draw)
    # ------------------------------------------------------------------

    def _begin_state(self, row: int, time_ns: float) -> _OpenState:
        subarray = self.bank.subarray_of_row(row)
        local = self.bank.local_row(row)
        return _OpenState(
            rows={subarray: (local,)},
            first_subarray=subarray,
            last_subarray=subarray,
            first_act_ns=time_ns,
            last_act_ns=time_ns,
        )

    def _precharge_due(self, state: Optional[_OpenState], time_ns: float) -> bool:
        return (
            state is not None
            and state.pending_pre_ns is not None
            and time_ns - state.pending_pre_ns >= self.bank.timing.t_rp - 1e-9
        )

    def _advance_lane(self, lane: _Lane, time_ns: float) -> None:
        state = lane.state
        if state is None:
            return
        if time_ns < state.last_act_ns - 1e-9:
            raise CommandSequenceError(
                f"time went backwards: {time_ns} < {state.last_act_ns}"
            )
        if state.phase != "sharing":
            return
        horizon_ns = time_ns
        if state.pending_pre_ns is not None:
            horizon_ns = min(horizon_ns, state.pending_pre_ns)
        if horizon_ns - state.last_act_ns >= SENSE_LATENCY_NS:
            self._resolve_and_restore_lane(lane)

    def _complete_precharge_lane(self, lane: _Lane) -> None:
        state = lane.state
        assert state is not None
        if state.phase == "sharing":
            sigma = self.bank.calibration.frac_noise_sigma
            for subarray_index, local_rows in state.rows.items():
                for local in local_rows:
                    noise = sigma * self._normal_draws(lane, self.columns)
                    arr = self._row_state(subarray_index, local)
                    arr[lane.trials] = np.clip(VDD_HALF + noise, GND, VDD)
        lane.state = None

    def _split_lane(self, lane: _Lane, keep: _BoolArray) -> Tuple[_Lane, _Lane]:
        """Split on a per-trial mask; both halves get independent state."""
        state = lane.state
        assert state is not None

        def clone(mask: _BoolArray) -> _OpenState:
            return _OpenState(
                rows=dict(state.rows),
                first_subarray=state.first_subarray,
                last_subarray=state.last_subarray,
                first_act_ns=state.first_act_ns,
                last_act_ns=state.last_act_ns,
                phase=state.phase,
                nominal=state.nominal,
                pending_pre_ns=state.pending_pre_ns,
                latched_upper={
                    stripe: latched[mask]
                    for stripe, latched in state.latched_upper.items()
                },
                glitch_regions=state.glitch_regions,
            )

        kept = _Lane(trials=lane.trials[keep], state=clone(keep))
        other = _Lane(trials=lane.trials[~keep], state=clone(~keep))
        return kept, other

    def _abort_lane(self, lane: _Lane, row: int, time_ns: float) -> None:
        """The glitch did not engage: only the last ACT takes effect."""
        lane.state = self._begin_state(row, time_ns)

    def _glitch_lane(self, lane: _Lane, row: int, time_ns: float) -> List[_Lane]:
        state = lane.state
        assert state is not None

        if self.bank.config.activation_support is ActivationSupport.NONE:
            self.ignored_commands += int(lane.trials.size)
            state.pending_pre_ns = None
            return [lane]

        subarray_last = self.bank.subarray_of_row(row)
        first_address = self.bank.config.geometry.bank_row(
            state.first_subarray, state.rows[state.first_subarray][0]
        )
        if subarray_last == state.first_subarray:
            pattern = self.bank.decoder.same_subarray_pattern(
                self.bank.index, first_address, row
            )
        elif abs(subarray_last - state.first_subarray) == 1:
            pattern = self.bank.decoder.neighboring_pattern(
                self.bank.index, first_address, row
            )
        else:
            self._abort_lane(lane, row, time_ns)
            return [lane]

        state.pending_pre_ns = None

        if pattern.kind is ActivationKind.LAST_ONLY:
            # Mirrors the serial short-circuit: LAST_ONLY aborts *before*
            # the engagement draw, so no trial consumes one.
            self._abort_lane(lane, row, time_ns)
            return [lane]

        if state.phase == "latched":
            probability = self.bank.calibration.not_engage_probability
        else:
            probability = self.bank.calibration.engage_probability_for(
                max(1, pattern.n_first)
            )
        engaged_mask = np.array(
            [self._gens[int(t)].random() < probability for t in lane.trials],
            dtype=bool,
        )

        result: List[_Lane] = []
        if bool(engaged_mask.all()):
            engaged = lane
        elif not bool(engaged_mask.any()):
            self._abort_lane(lane, row, time_ns)
            return [lane]
        else:
            engaged, aborted = self._split_lane(lane, engaged_mask)
            self._abort_lane(aborted, row, time_ns)
            result.append(aborted)

        estate = engaged.state
        assert estate is not None
        if pattern.kind is ActivationKind.SEQUENTIAL and estate.phase == "sharing":
            self._resolve_and_restore_lane(engaged)
        if estate.phase == "latched":
            self._join_latched_lane(engaged, pattern, time_ns)
        else:
            self._join_sharing_lane(engaged, pattern, time_ns)
        result.append(engaged)
        return result

    def _join_sharing_lane(
        self, lane: _Lane, pattern: Any, time_ns: float
    ) -> None:
        state = lane.state
        assert state is not None
        rows = dict(state.rows)
        merged_first = sorted(
            set(rows.get(pattern.subarray_first, ())) | set(pattern.rows_first)
        )
        rows[pattern.subarray_first] = tuple(merged_first)
        merged_last = sorted(
            set(rows.get(pattern.subarray_last, ())) | set(pattern.rows_last)
        )
        rows[pattern.subarray_last] = tuple(merged_last)
        state.rows = rows
        state.last_subarray = pattern.subarray_last
        state.last_act_ns = time_ns
        state.nominal = False
        state.glitch_regions = self.bank._region_pair(pattern)

    def _join_latched_lane(
        self, lane: _Lane, pattern: Any, time_ns: float
    ) -> None:
        state = lane.state
        assert state is not None
        calibration = self.bank.calibration
        rows = dict(state.rows)
        rows[pattern.subarray_first] = tuple(
            sorted(set(rows.get(pattern.subarray_first, ())) | set(pattern.rows_first))
        )
        rows[pattern.subarray_last] = tuple(
            sorted(set(rows.get(pattern.subarray_last, ())) | set(pattern.rows_last))
        )
        state.rows = rows
        state.last_subarray = pattern.subarray_last
        state.last_act_ns = time_ns
        state.nominal = False
        state.glitch_regions = self.bank._region_pair(pattern)

        src_region, dst_region = state.glitch_regions
        total_rows_pending = sum(len(r) for r in rows.values())
        load_scale = 0.35 + 0.65 * min(1.0, (total_rows_pending - 2) / 30.0)
        distance_z = (
            calibration.not_distance_z[src_region][dst_region] * load_scale
        )
        temperature_z = -calibration.temperature_drive_per_degc * (
            self.bank.temperature_c - 50.0
        )

        for stripe in self.bank._touched_stripes(rows):
            served = self.bank.served_columns(stripe)
            latched = state.latched_upper.get(stripe)
            if latched is None:
                resolved, _disturbance = self._sense_stripe_lane(
                    stripe, rows, served, state, lane
                )
                state.latched_upper[stripe] = resolved
                self._writeback_lane(stripe, rows, served, resolved, lane)
                continue
            load = sum(
                len(rows.get(side, ())) for side in (stripe - 1, stripe)
            )
            self._latched_fight_lane(
                stripe,
                rows,
                served,
                latched,
                load,
                distance_z + temperature_z,
                lane,
            )
        state.phase = "latched"

    def _resolve_and_restore_lane(self, lane: _Lane) -> None:
        state = lane.state
        assert state is not None
        calibration = self.bank.calibration
        rows = state.rows
        total_rows = sum(len(r) for r in rows.values())

        for stripe in self.bank._touched_stripes(rows):
            served = self.bank.served_columns(stripe)
            resolved, disturbance = self._sense_stripe_lane(
                stripe, rows, served, state, lane
            )
            state.latched_upper[stripe] = resolved
            if state.nominal:
                self._writeback_lane(stripe, rows, served, resolved, lane)
            else:
                extra_z = (
                    -calibration.op_coupling_flip_z * disturbance
                    - calibration.temperature_drive_per_degc
                    * (self.bank.temperature_c - 50.0)
                )
                self._latched_fight_lane(
                    stripe,
                    rows,
                    served,
                    resolved,
                    total_rows,
                    extra_z,
                    lane,
                    alpha=calibration.op_flip_alpha,
                )
        state.phase = "latched"

    def _gather_side_lane(
        self,
        subarray_index: int,
        rows: Dict[int, Tuple[int, ...]],
        served: NDArray[np.intp],
        lane: _Lane,
    ) -> NDArray[Any]:
        lane_size = int(lane.trials.size)
        if not 0 <= subarray_index < len(self.bank.subarrays):
            return np.empty((lane_size, 0, served.size))
        local_rows = rows.get(subarray_index, ())
        if not local_rows:
            return np.empty((lane_size, 0, served.size))
        slices = [
            self._row_state(subarray_index, local)[lane.trials][:, served]
            for local in local_rows
        ]
        return np.stack(slices, axis=1)

    def _sense_stripe_lane(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: NDArray[np.intp],
        state: _OpenState,
        lane: _Lane,
    ) -> Tuple[_FloatArray, _FloatArray]:
        calibration = self.bank.calibration
        upper_cells = self._gather_side_lane(stripe, rows, served, lane)
        lower_cells = self._gather_side_lane(stripe - 1, rows, served, lane)

        v_upper = charge_share(
            upper_cells, calibration.cell_cap_ff, calibration.bitline_cap_ff
        )
        v_lower = charge_share(
            lower_cells, calibration.cell_cap_ff, calibration.bitline_cap_ff
        )
        disturbance = coupling_disturbance(v_upper - v_lower)

        if state.nominal:
            upper_wins = (v_upper - v_lower) > 0.0
        else:
            margin_shift = self.bank._glitch_margin_shift(stripe, state)
            gain_scale = self.bank._glitch_cm_gain_scale(stripe, state)
            temperature_scale = 1.0 + calibration.temperature_noise_per_degc * (
                self.bank.temperature_c - 50.0
            )
            upper_wins = sense_differential(
                v_upper,
                v_lower,
                self.bank.stripes[stripe].offsets[served],
                calibration.sense_noise_sigma * temperature_scale,
                self._lane_generators(lane),
                common_mode_gain=calibration.common_mode_noise_gain * gain_scale,
                common_mode_threshold=calibration.common_mode_threshold,
                sigma_cap_factor=calibration.common_mode_sigma_cap * gain_scale,
                common_mode_offset_gain=calibration.common_mode_offset_gain,
                low_common_mode_offset_gain=calibration.low_common_mode_offset_gain,
                coupling_sigma=calibration.coupling_noise_sigma,
                margin_shift=margin_shift,
            )

        resolved = np.full((int(lane.trials.size), self.columns), VDD_HALF)
        resolved[:, served] = np.where(upper_wins, VDD, GND)
        return resolved, np.asarray(disturbance, dtype=np.float64)

    def _latched_fight_lane(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: NDArray[np.intp],
        latched_upper: _FloatArray,
        load_rows: int,
        extra_z: Union[float, _FloatArray],
        lane: _Lane,
        alpha: Optional[float] = None,
    ) -> None:
        calibration = self.bank.calibration
        if alpha is None:
            alpha = calibration.drive_load_alpha
        strengths = self.bank.stripes[stripe].strengths[served]
        z = strengths - alpha * max(0, load_rows - 1) + extra_z
        holds = self._uniform_draws(lane, int(served.size)) < ndtr(z)

        resolved = latched_upper.copy()
        on_served = resolved[:, served]
        flips = ~holds
        on_served[flips] = VDD - on_served[flips]
        resolved[:, served] = on_served
        latched_upper[:, served] = resolved[:, served]
        self._writeback_lane(stripe, rows, served, resolved, lane)

    def _writeback_lane(
        self,
        stripe: int,
        rows: Dict[int, Tuple[int, ...]],
        served: NDArray[np.intp],
        resolved_upper: _FloatArray,
        lane: _Lane,
    ) -> None:
        for subarray_index, value in (
            (stripe, resolved_upper),
            (stripe - 1, VDD - resolved_upper),
        ):
            if not 0 <= subarray_index < len(self.bank.subarrays):
                continue
            for local in rows.get(subarray_index, ()):
                arr = self._row_state(subarray_index, local)
                arr[np.ix_(lane.trials, served)] = value[:, served]


class BatchedModule:
    """Fans a batched trial block out across a module's lock-step chips.

    Reserves one trial-index block per chip (all chips must agree — they
    share the command bus) and stripes row data across per-chip column
    segments exactly like :class:`~repro.dram.module.Module`.
    """

    def __init__(self, module: Module, bank: int, n_trials: int):
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        start, per_chip_generators = module.reserve_trial_block(bank, n_trials)
        self.module = module
        self.bank_index = bank
        self.n_trials = n_trials
        #: Absolute trial indices of this block (for fault injection).
        self.trial_indices = range(start, start + n_trials)
        self.banks: List[BatchedBank] = [
            BatchedBank(chip.bank(bank), generators)
            for chip, generators in zip(module.chips, per_chip_generators)
        ]

    @property
    def row_bits(self) -> int:
        return self.module.row_bits

    def activate(self, row: int, time_ns: float) -> None:
        for bank in self.banks:
            bank.activate(row, time_ns)

    def precharge(self, time_ns: float) -> None:
        for bank in self.banks:
            bank.precharge(time_ns)

    def settle(self, time_ns: float) -> None:
        for bank in self.banks:
            bank.settle(time_ns)

    def refresh(self, time_ns: float) -> None:
        for bank in self.banks:
            bank.refresh(time_ns)

    def write(self, row: int, bits: Any, time_ns: float) -> None:
        data = self._check_module_bits(bits, "WR pattern")
        for i, bank in enumerate(self.banks):
            bank.write(row, data[..., self.module.chip_slice(i)], time_ns)

    def read(self, row: int, time_ns: float) -> NDArray[np.uint8]:
        parts = [bank.read(row, time_ns) for bank in self.banks]
        return np.concatenate(parts, axis=1)

    def store_bits(self, row: int, bits: Any) -> None:
        data = self._check_module_bits(bits, "bits")
        for i, bank in enumerate(self.banks):
            bank.store_bits(row, data[..., self.module.chip_slice(i)])

    def store_voltages(self, row: int, volts: Any) -> None:
        data = self._check_module_bits(
            np.asarray(volts, dtype=np.float64), "voltages"
        )
        for i, bank in enumerate(self.banks):
            bank.store_voltages(row, data[..., self.module.chip_slice(i)])

    def load_bits(self, row: int) -> NDArray[np.uint8]:
        parts = [bank.load_bits(row) for bank in self.banks]
        return np.concatenate(parts, axis=1)

    def finalize(self) -> None:
        for bank in self.banks:
            bank.finalize()

    def _check_module_bits(self, values: Any, what: str) -> NDArray[Any]:
        a = np.asarray(values)
        expected = (self.row_bits,)
        expected_batched = (self.n_trials, self.row_bits)
        if a.shape != expected and a.shape != expected_batched:
            raise ValueError(
                f"{what} must have shape {expected} or {expected_batched}, "
                f"got {a.shape}"
            )
        return a
