"""A DRAM chip: a collection of banks sharing one die's characteristics.

Banks are instantiated lazily — characterization sweeps touch a handful
of banks per chip, and the fleet holds hundreds of chips, so allocating
all 16 banks' cell arrays eagerly would waste most of the memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import AddressError
from ..rng import SeedTree
from .bank import Bank
from .calibration import DieCalibration, calibration_for
from .config import ChipConfig
from .decoder import make_decoder
from .timing import TimingParameters, timing_for_speed

__all__ = ["Chip"]


class Chip:
    """One simulated DRAM chip."""

    def __init__(
        self,
        config: ChipConfig,
        seed_tree: SeedTree,
        decoder_model: str = "calibrated",
        scramble_rows: bool = True,
        decoder=None,
        calibration: Optional[DieCalibration] = None,
    ):
        self.config = config
        self.calibration: DieCalibration = (
            calibration if calibration is not None else calibration_for(config)
        )
        self.timing: TimingParameters = timing_for_speed(config.speed_rate_mts)
        self._seed_tree = seed_tree
        # All chips of one module share a decoder: the activation-pattern
        # glitch is a property of the (common) circuit design plus the
        # module's address wiring, and lock-step chips must glitch alike.
        self._decoder = (
            decoder
            if decoder is not None
            else make_decoder(config, seed_tree.child("decoder"), decoder_model)
        )
        self._scramble_rows = scramble_rows
        self._banks: Dict[int, Bank] = {}
        self._temperature_c = 50.0

    @property
    def temperature_c(self) -> float:
        """Die temperature; set by the testing infrastructure's heater."""
        return self._temperature_c

    @temperature_c.setter
    def temperature_c(self, value: float) -> None:
        self._temperature_c = float(value)
        for bank in self._banks.values():
            bank.temperature_c = self._temperature_c

    def bank(self, index: int) -> Bank:
        """The bank at ``index``, instantiating it on first access."""
        if not 0 <= index < self.config.geometry.banks:
            raise AddressError(
                f"bank {index} out of range for chip with "
                f"{self.config.geometry.banks} banks"
            )
        bank = self._banks.get(index)
        if bank is None:
            bank = Bank(
                index,
                self.config,
                self.calibration,
                self.timing,
                self._decoder,
                self._seed_tree.child(f"bank-{index}"),
                scramble_rows=self._scramble_rows,
            )
            bank.temperature_c = self._temperature_c
            self._banks[index] = bank
        return bank

    def instantiated_banks(self) -> Iterator[Bank]:
        """Banks touched so far (for bookkeeping and tests)."""
        return iter(self._banks.values())

    @property
    def decoder(self):
        """The activation-pattern model (shared across a module's chips)."""
        return self._decoder

    def release_banks(self) -> None:
        """Drop all bank state (frees the cell arrays)."""
        self._banks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chip({self.config.die_label}, {self.config.speed_rate_mts}MT/s)"
