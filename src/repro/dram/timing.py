"""DDR4 timing parameters and timing-violation descriptors.

The characterization methodology of the paper is entirely about *when*
commands are issued: a manufacturer-recommended ``ACT → tRAS → PRE → tRP →
ACT`` sequence behaves normally, while ``ACT → PRE → ACT`` with tRAS and
tRP below ~3 ns triggers simultaneous multi-row activation (§4.1).

:class:`TimingParameters` carries the nominal datasheet values for a speed
grade; :class:`ReducedTiming` describes a deliberate violation in bus
cycles, because DRAM Bender (and any real memory controller) can only
space commands at clock-cycle granularity — a detail that matters for the
speed-rate sensitivity results (Observations 8 and 18).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import transfers_to_clock_ns

__all__ = ["TimingParameters", "ReducedTiming", "timing_for_speed"]


@dataclass(frozen=True)
class TimingParameters:
    """Nominal timing parameters of a DDR4 speed grade (all in ns)."""

    speed_rate_mts: int
    t_ck: float
    t_rcd: float
    t_rp: float
    t_ras: float
    t_rfc: float = 350.0
    t_wr: float = 15.0

    def __post_init__(self) -> None:
        for name in ("t_ck", "t_rcd", "t_rp", "t_ras", "t_rfc", "t_wr"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def t_rc(self) -> float:
        """Row-cycle time: minimum ACT-to-ACT delay to the same bank."""
        return self.t_ras + self.t_rp

    def cycles(self, nanoseconds: float) -> int:
        """Number of whole bus cycles needed to cover ``nanoseconds``."""
        if nanoseconds < 0:
            raise ValueError(f"duration must be non-negative, got {nanoseconds}")
        whole = int(nanoseconds / self.t_ck)
        if whole * self.t_ck < nanoseconds - 1e-9:
            whole += 1
        return whole

    def quantize(self, nanoseconds: float) -> float:
        """``nanoseconds`` rounded *up* to the bus cycle grid."""
        return self.cycles(nanoseconds) * self.t_ck


#: Datasheet-typical DDR4 timings per speed grade.  tRCD/tRP follow the
#: common CL=15/17/19/22 bins; tRAS is the JEDEC minimum for each grade.
_TIMING_TABLE = {
    2133: TimingParameters(2133, t_ck=0.938, t_rcd=14.06, t_rp=14.06, t_ras=33.0),
    2400: TimingParameters(2400, t_ck=0.833, t_rcd=14.16, t_rp=14.16, t_ras=32.0),
    2666: TimingParameters(2666, t_ck=0.750, t_rcd=14.25, t_rp=14.25, t_ras=32.0),
    3200: TimingParameters(3200, t_ck=0.625, t_rcd=13.75, t_rp=13.75, t_ras=32.0),
}


def timing_for_speed(speed_rate_mts: int) -> TimingParameters:
    """Nominal timing parameters for a DDR4 speed rate in MT/s."""
    try:
        return _TIMING_TABLE[speed_rate_mts]
    except KeyError:
        raise ConfigurationError(
            f"no timing table for {speed_rate_mts} MT/s; known grades: "
            f"{sorted(_TIMING_TABLE)}"
        ) from None


@dataclass(frozen=True)
class ReducedTiming:
    """A deliberately violated ``ACT→PRE→ACT`` spacing, in bus cycles.

    ``first_act_cycles`` is the delay between the first ``ACT`` and the
    ``PRE``; ``pre_to_act_cycles`` between the ``PRE`` and the second
    ``ACT``.  The paper uses <3 ns for both when triggering multi-row
    activation (§4.1), and the *full* tRAS before the ``PRE`` when
    performing NOT (§5.1) so that the first row is fully sensed first.
    """

    first_act_cycles: int
    pre_to_act_cycles: int

    def __post_init__(self) -> None:
        if self.first_act_cycles < 1:
            raise ConfigurationError("first_act_cycles must be >= 1")
        if self.pre_to_act_cycles < 1:
            raise ConfigurationError("pre_to_act_cycles must be >= 1")

    def first_act_ns(self, timing: TimingParameters) -> float:
        return self.first_act_cycles * timing.t_ck

    def pre_to_act_ns(self, timing: TimingParameters) -> float:
        return self.pre_to_act_cycles * timing.t_ck

    def violates_t_ras(self, timing: TimingParameters) -> bool:
        return self.first_act_ns(timing) < timing.t_ras - 1e-9

    def violates_t_rp(self, timing: TimingParameters) -> bool:
        return self.pre_to_act_ns(timing) < timing.t_rp - 1e-9

    @classmethod
    def for_logic_op(cls, timing: TimingParameters) -> "ReducedTiming":
        """The tightest spacing the bus allows: both gaps under 3 ns.

        Used for AND/OR/NAND/NOR, where the first activation must *not*
        complete sensing before the second joins (§6.1).
        """
        cycles = max(1, timing.cycles(1.5))
        return cls(first_act_cycles=cycles, pre_to_act_cycles=cycles)

    @classmethod
    def for_not_op(cls, timing: TimingParameters) -> "ReducedTiming":
        """Full tRAS before PRE, violated tRP after it (§5.1)."""
        return cls(
            first_act_cycles=timing.cycles(timing.t_ras),
            pre_to_act_cycles=max(1, timing.cycles(1.5)),
        )

    @classmethod
    def nominal(cls, timing: TimingParameters) -> "ReducedTiming":
        """A spacing that violates nothing (for control experiments)."""
        return cls(
            first_act_cycles=timing.cycles(timing.t_ras),
            pre_to_act_cycles=timing.cycles(timing.t_rp),
        )
