"""Static configuration of DRAM chips and modules.

The classes here describe *what a chip is* (manufacturer, density, die
revision, organization, speed rate, geometry) as opposed to *what state it
holds* (:mod:`repro.dram.chip`).  Table 1 of the paper is expressed as a
list of :class:`ModuleSpec` instances in
:mod:`repro.characterization.fleet`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Manufacturer",
    "ActivationSupport",
    "ChipGeometry",
    "ChipConfig",
    "ModuleSpec",
]


class Manufacturer(enum.Enum):
    """The three major DRAM manufacturers tested by the paper."""

    SK_HYNIX = "SK Hynix"
    SAMSUNG = "Samsung"
    MICRON = "Micron"

    def __str__(self) -> str:
        return self.value


class ActivationSupport(enum.Enum):
    """What a chip does with a timing-violating ``ACT→PRE→ACT`` sequence.

    Mirrors §7 Limitation 1 of the paper:

    * ``SIMULTANEOUS`` — multiple rows in two neighboring subarrays stay
      activated together (SK Hynix): the full operation set works.
    * ``SEQUENTIAL_ONLY`` — the rows activate one after another but never
      overlap in the analog sense; only the NOT operation (one destination
      row) works (Samsung).
    * ``NONE`` — the chip ignores commands that greatly violate timing
      parameters; no in-DRAM operation works (Micron).
    """

    SIMULTANEOUS = "simultaneous"
    SEQUENTIAL_ONLY = "sequential-only"
    NONE = "none"


@dataclass(frozen=True)
class ChipGeometry:
    """Array geometry of a single DRAM chip.

    The defaults describe a *simulation-scale* chip: the physical layout
    (banks, subarrays, 16-row local-wordline blocks) matches a real DDR4
    die, but the number of columns actually simulated per chip is reduced
    so that characterization sweeps stay laptop-fast.  ``columns`` is the
    number of cells *per chip* in a row segment, i.e. the unit on which
    success rates are measured.
    """

    banks: int = 16
    subarrays_per_bank: int = 8
    rows_per_subarray: int = 640
    columns: int = 128
    #: Rows driven by one local wordline block (master wordline granularity).
    lwl_block_rows: int = 16

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ConfigurationError(f"banks must be positive, got {self.banks}")
        if self.subarrays_per_bank < 2:
            raise ConfigurationError(
                "need at least two subarrays per bank for neighboring-subarray "
                f"operations, got {self.subarrays_per_bank}"
            )
        if self.columns <= 0 or self.columns % 2:
            raise ConfigurationError(
                f"columns must be positive and even (open bitline halves), got {self.columns}"
            )
        if self.lwl_block_rows <= 0 or self.lwl_block_rows & (self.lwl_block_rows - 1):
            raise ConfigurationError(
                f"lwl_block_rows must be a power of two, got {self.lwl_block_rows}"
            )
        if self.rows_per_subarray % self.lwl_block_rows:
            raise ConfigurationError(
                f"rows_per_subarray ({self.rows_per_subarray}) must be a multiple "
                f"of lwl_block_rows ({self.lwl_block_rows})"
            )

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def blocks_per_subarray(self) -> int:
        return self.rows_per_subarray // self.lwl_block_rows

    def subarray_of_row(self, row: int) -> int:
        """Index of the subarray containing bank-level row address ``row``."""
        self.check_row(row)
        return row // self.rows_per_subarray

    def local_row(self, row: int) -> int:
        """Row index within its subarray for bank-level address ``row``."""
        self.check_row(row)
        return row % self.rows_per_subarray

    def bank_row(self, subarray: int, local_row: int) -> int:
        """Bank-level row address of ``local_row`` within ``subarray``."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise ConfigurationError(f"subarray {subarray} out of range")
        if not 0 <= local_row < self.rows_per_subarray:
            raise ConfigurationError(f"local row {local_row} out of range")
        return subarray * self.rows_per_subarray + local_row

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            from ..errors import AddressError

            raise AddressError(
                f"row {row} out of range for bank with {self.rows_per_bank} rows"
            )

    def subarrays_are_neighbors(self, subarray_a: int, subarray_b: int) -> bool:
        """Whether two subarrays share a sense-amplifier stripe.

        In the open-bitline organization every internal amplifier stripe
        is shared by the two subarrays it sits between, so exactly the
        pairs at distance one can hold a multi-row activation together
        (§4.1).  Distance zero (one subarray) trivially shares its own
        amplifiers.
        """
        for subarray in (subarray_a, subarray_b):
            if not 0 <= subarray < self.subarrays_per_bank:
                raise ConfigurationError(f"subarray {subarray} out of range")
        return abs(subarray_a - subarray_b) <= 1

    def rows_share_sense_amps(self, row_a: int, row_b: int) -> bool:
        """Whether two bank-level rows can participate in one double
        activation (same or neighboring subarrays)."""
        return self.subarrays_are_neighbors(
            self.subarray_of_row(row_a), self.subarray_of_row(row_b)
        )


@dataclass(frozen=True)
class ChipConfig:
    """Full static description of one DRAM chip."""

    manufacturer: Manufacturer
    density_gb: int = 4
    die_revision: str = "M"
    io_width: int = 8
    speed_rate_mts: int = 2666
    geometry: ChipGeometry = field(default_factory=ChipGeometry)
    activation_support: ActivationSupport = ActivationSupport.SIMULTANEOUS
    #: Whether the row decoder exhibits the N:2N glitch (some modules
    #: only ever show N:N activation, §4.3 Observation 2).
    supports_n_to_2n: bool = True
    #: Largest N in N:N activation the decoder can produce (footnote 12:
    #: one tested 8Gb M-die module tops out at 8:8).
    max_simultaneous_n: int = 16

    def __post_init__(self) -> None:
        if self.density_gb not in (4, 8, 16):
            raise ConfigurationError(f"unsupported chip density {self.density_gb}Gb")
        if self.io_width not in (4, 8, 16):
            raise ConfigurationError(f"unsupported IO width x{self.io_width}")
        if self.speed_rate_mts not in (2133, 2400, 2666, 3200):
            raise ConfigurationError(
                f"unsupported DDR4 speed rate {self.speed_rate_mts} MT/s"
            )
        if self.max_simultaneous_n not in (1, 2, 4, 8, 16):
            raise ConfigurationError(
                f"max_simultaneous_n must be a power of two <= 16, got "
                f"{self.max_simultaneous_n}"
            )

    @property
    def die_label(self) -> str:
        """Human-readable die identifier, e.g. ``'SK Hynix 4Gb M-die'``."""
        return f"{self.manufacturer} {self.density_gb}Gb {self.die_revision}-die"

    def with_geometry(self, geometry: ChipGeometry) -> "ChipConfig":
        """A copy of this config with a different array geometry."""
        return replace(self, geometry=geometry)


@dataclass(frozen=True)
class ModuleSpec:
    """One row of the paper's Table 1: a DRAM module type under test."""

    name: str
    chip: ChipConfig
    chips_per_module: int = 8
    module_count: int = 1
    manufacture_date: Optional[str] = None

    def __post_init__(self) -> None:
        if self.chips_per_module <= 0:
            raise ConfigurationError(
                f"chips_per_module must be positive, got {self.chips_per_module}"
            )
        if self.module_count <= 0:
            raise ConfigurationError(
                f"module_count must be positive, got {self.module_count}"
            )

    @property
    def total_chips(self) -> int:
        return self.chips_per_module * self.module_count

    def table_row(self) -> Tuple[str, str, str, str, str, str, str]:
        """The Table-1 row for this spec (formatted strings)."""
        chip = self.chip
        return (
            str(chip.manufacturer),
            f"{self.module_count} ({self.total_chips})",
            chip.die_revision,
            self.manufacture_date or "N/A",
            f"{chip.density_gb}Gb",
            f"x{chip.io_width}",
            f"{chip.speed_rate_mts}MT/s",
        )
