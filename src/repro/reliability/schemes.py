"""Error-mitigation schemes: composable redundancy over unreliable ops.

The paper's in-DRAM operations succeed *probabilistically* — per cell,
per trial — so a system that promises a caller-specified error bound
must layer redundancy on top of the substrate.  Three physical levers
exist, and a :class:`MitigationScheme` composes any subset of them:

* **Space redundancy** (``row_copies``) — one multi-row activation
  already writes its result into *every* row of the output terminal
  (the NOT path writes up to 32 copies, an N-input logic op writes N);
  reading several copies and voting per cell costs extra row reads but
  no extra activations.
* **Time redundancy** (``votes``) — execute the whole operation an odd
  number of times and take a per-cell majority; per-trial noise is
  independent across repetitions, so a per-op error ``e`` becomes a
  binomial-tail residual.
* **Detection and retry** (``max_attempts``) — the AND/OR family
  produces its complement on the reference terminal *in the same
  activation* (§6.1.3), so ``primary == NOT(complement)`` is a per-cell
  consistency check that costs one extra row read.  Inconsistent cells
  are recomputed, up to a per-attempt budget; undetectable errors are
  exactly the both-terminals-flipped events.  NOT has no complement
  terminal, so retry does not apply to it.

Every lever has a closed-form residual-error model (vectorizable over
per-cell success-probability arrays) and a throughput cost in expected
op-sequence executions, which is what the auto-tuner
(:mod:`repro.reliability.tuner`) searches over.

The models assume per-copy/per-repetition independence, which holds for
trial noise but *not* for the deterministic worst-case-pattern failures
of statically infeasible operations (Observation 14) — those have
``p ~ 0`` for the boundary pattern and voting makes them worse, which is
why the tuner gates on the static sense-margin bound first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from ..errors import ConfigurationError

__all__ = [
    "MitigationScheme",
    "UNCODED",
    "majority_error",
    "detect_retry_error",
    "expected_attempts",
]

FloatLike = Union[float, NDArray[np.float64]]

#: Operations whose activation yields the complement terminal alongside
#: the result, enabling consistency-check retry (§6.1.3).
DETECTABLE_OPS = ("and", "or", "nand", "nor")


def majority_error(error: FloatLike, copies: int) -> FloatLike:
    """P(per-cell majority over ``copies`` independent reads is wrong).

    ``copies`` must be odd; the majority is wrong when more than half
    the copies are wrong — the upper binomial tail of the per-copy
    error.  Vectorized over ``error`` arrays.

    >>> round(majority_error(0.1, 3), 4)
    0.028
    >>> majority_error(0.25, 1)
    0.25
    """
    if copies < 1 or copies % 2 == 0:
        raise ConfigurationError(
            f"majority voting needs an odd copy count, got {copies}"
        )
    e = np.asarray(error, dtype=np.float64)
    if copies == 1:
        return float(e) if e.ndim == 0 else e
    ok = 1.0 - e
    total = np.zeros_like(e)
    for k in range((copies + 1) // 2, copies + 1):
        total += math.comb(copies, k) * e**k * ok ** (copies - k)
    return float(total) if total.ndim == 0 else total


def detect_retry_error(
    error: FloatLike, attempts: int
) -> Tuple[FloatLike, FloatLike]:
    """Residual error and detection-failure rate of consistency retry.

    Per attempt, both the primary and the complement terminal are read
    (each wrong with per-cell probability ``error``, independently).
    The cell is *accepted* when they are consistent — both right, or
    both wrong (the undetectable double flip) — and *retried* when
    exactly one is wrong.  After ``attempts`` tries the cell falls back
    to the last primary value.

    Returns ``(residual_error, per_attempt_detect_rate)``; the second
    value feeds :func:`expected_attempts`.
    """
    if attempts < 1:
        raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
    e = np.asarray(error, dtype=np.float64)
    if attempts == 1:
        out = float(e) if e.ndim == 0 else e
        return out, np.zeros_like(e) if e.ndim else 0.0
    both_wrong = e * e
    accept = (1.0 - e) ** 2 + both_wrong
    detect = 1.0 - accept
    exhaust = detect**attempts
    # Conditional error given acceptance; given exhaustion, the last
    # primary is kept and it is the wrong terminal half the... no:
    # given detection fired, the primary was the wrong one with
    # probability e(1-e)/detect.
    with np.errstate(divide="ignore", invalid="ignore"):
        accepted_bad = np.where(accept > 0, both_wrong / accept, 0.0)
        primary_bad_given_detect = np.where(
            detect > 0, e * (1.0 - e) / detect, 0.0
        )
    residual = (1.0 - exhaust) * accepted_bad + exhaust * primary_bad_given_detect
    if np.asarray(residual).ndim == 0:
        return float(residual), float(detect)
    return residual, detect


def expected_attempts(detect_rate: FloatLike, attempts: int) -> FloatLike:
    """Expected executions of a detect-retry unit (partial geometric sum).

    >>> expected_attempts(0.0, 3)
    1.0
    >>> round(expected_attempts(0.5, 3), 3)
    1.75
    """
    if attempts < 1:
        raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
    d = np.asarray(detect_rate, dtype=np.float64)
    total = np.zeros_like(d)
    for i in range(attempts):
        total += d**i
    return float(total) if total.ndim == 0 else total


@dataclass(frozen=True)
class MitigationScheme:
    """One composition of the three redundancy levers.

    All-ones is the uncoded scheme (:data:`UNCODED`).  Schemes are
    frozen value objects: the auto-tuner enumerates them, the policy
    table persists them, and the runtime interprets them.
    """

    #: Odd number of full executions voted per cell (time redundancy).
    votes: int = 1
    #: Odd number of output-terminal rows read and voted per execution
    #: (space redundancy; capped by the operation's terminal row count).
    row_copies: int = 1
    #: Detection-retry budget per voted execution (1 = no retry).
    max_attempts: int = 1

    def __post_init__(self) -> None:
        for name, value, odd in (
            ("votes", self.votes, True),
            ("row_copies", self.row_copies, True),
            ("max_attempts", self.max_attempts, False),
        ):
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
            if odd and value % 2 == 0:
                raise ConfigurationError(f"{name} must be odd, got {value}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def uncoded(cls) -> "MitigationScheme":
        return cls()

    @classmethod
    def majority_vote(cls, votes: int) -> "MitigationScheme":
        return cls(votes=votes)

    @classmethod
    def repetition(cls, row_copies: int) -> "MitigationScheme":
        return cls(row_copies=row_copies)

    @classmethod
    def retry(cls, max_attempts: int) -> "MitigationScheme":
        return cls(max_attempts=max_attempts)

    def with_votes(self, votes: int) -> "MitigationScheme":
        return replace(self, votes=votes)

    def with_row_copies(self, row_copies: int) -> "MitigationScheme":
        return replace(self, row_copies=row_copies)

    def with_retry(self, max_attempts: int) -> "MitigationScheme":
        return replace(self, max_attempts=max_attempts)

    # -- identity ----------------------------------------------------------

    @property
    def is_uncoded(self) -> bool:
        return self.votes == 1 and self.row_copies == 1 and self.max_attempts == 1

    @property
    def label(self) -> str:
        """Stable human/persistence label, e.g. ``"vote3+rows3+retry2"``.

        >>> MitigationScheme().label
        'uncoded'
        >>> MitigationScheme(votes=3, max_attempts=2).label
        'vote3+retry2'
        """
        if self.is_uncoded:
            return "uncoded"
        parts: List[str] = []
        if self.votes > 1:
            parts.append(f"vote{self.votes}")
        if self.row_copies > 1:
            parts.append(f"rows{self.row_copies}")
        if self.max_attempts > 1:
            parts.append(f"retry{self.max_attempts}")
        return "+".join(parts)

    @classmethod
    def from_label(cls, label: str) -> "MitigationScheme":
        """Invert :attr:`label` (the policy table's persisted form)."""
        if label == "uncoded":
            return cls()
        votes, row_copies, max_attempts = 1, 1, 1
        for part in label.split("+"):
            if part.startswith("vote"):
                votes = int(part[4:])
            elif part.startswith("rows"):
                row_copies = int(part[4:])
            elif part.startswith("retry"):
                max_attempts = int(part[5:])
            else:
                raise ConfigurationError(f"malformed scheme label {label!r}")
        return cls(votes=votes, row_copies=row_copies, max_attempts=max_attempts)

    def applicable_to(self, operation: str) -> bool:
        """Whether every lever this scheme uses exists for ``operation``
        (retry needs the complement terminal, which NOT lacks)."""
        return self.max_attempts == 1 or operation in DETECTABLE_OPS

    def capped_to_rows(self, terminal_rows: int) -> "MitigationScheme":
        """This scheme with ``row_copies`` capped to the rows the output
        terminal actually provides (kept odd)."""
        copies = min(self.row_copies, terminal_rows)
        if copies % 2 == 0:
            copies -= 1
        return replace(self, row_copies=max(copies, 1))

    # -- analytics ---------------------------------------------------------

    def predicted_error(self, p: FloatLike) -> FloatLike:
        """Residual per-cell error at per-read success probability ``p``.

        Composition order mirrors execution: space voting within one
        activation, consistency retry around it, time voting outermost.
        Vectorized over per-cell rate arrays (the frontier figure).
        """
        e = 1.0 - np.asarray(p, dtype=np.float64)
        e_space = majority_error(e, self.row_copies)
        e_unit, _detect = detect_retry_error(e_space, self.max_attempts)
        return majority_error(e_unit, self.votes)

    def expected_cost(self, p: FloatLike) -> FloatLike:
        """Expected op-sequence executions per logical operation.

        Activations dominate the throughput account (Buddy-RAM ground
        rules: row reads ride the same bus either way, the multi-row
        activation is the unit of in-DRAM work), so cost is measured in
        expected executions: ``votes x E[attempts]``.
        """
        e = 1.0 - np.asarray(p, dtype=np.float64)
        e_space = majority_error(e, self.row_copies)
        _unit, detect = detect_retry_error(e_space, self.max_attempts)
        attempts = expected_attempts(detect, self.max_attempts)
        cost = self.votes * np.asarray(attempts, dtype=np.float64)
        return float(cost) if cost.ndim == 0 else cost

    def reads_per_execution(self) -> int:
        """Row reads per execution: the voted copies plus, with retry
        enabled, the complement-terminal copies for the check."""
        return self.row_copies * (2 if self.max_attempts > 1 else 1)


#: The identity scheme: one execution, one copy, no retry.
UNCODED = MitigationScheme()
