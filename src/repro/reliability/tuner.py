"""The reliability auto-tuner: cheapest scheme meeting a target bound.

For every *(operation, fan-in, distance class, temperature)* cell of a
:class:`TuneGrid`, the tuner:

1. **Gates statically.**  The charge algebra decides some configurations
   before any trial runs: a non-positive worst-case sense margin
   (:func:`repro.dram.analog.worst_case_sense_margin`, Observation 14)
   means the boundary data pattern fails *deterministically*, so no
   amount of voting or retrying — which assume independent per-trial
   noise — converges.  Such cells are recorded unsatisfiable.
2. **Reads the substrate.**  The per-cell success probability comes
   from a :class:`~repro.substrate.base.SubstrateBackend` that can
   serve estimates (in practice the fitted surrogate, which is what
   makes the search affordable); a safety *slack* is subtracted to
   cover the surrogate's fit tolerance, so a scheme selected here still
   validates when replayed against the analog reference.
3. **Searches scheme space.**  Candidate
   :class:`~repro.reliability.schemes.MitigationScheme` compositions
   (votes x row copies x retry budget, capped to what the operation's
   output terminal physically provides) are ranked by expected cost;
   the cheapest one whose predicted residual error meets the bound
   wins.  When none does, the cell is recorded unsatisfiable with the
   best error any candidate achieved.

:func:`validate_policy` closes the loop: it re-derives per-cell
probabilities from the *analog* reference (via a fresh surrogate fit at
an independent seed) and checks every tuned cell still meets its bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..dram.analog import worst_case_sense_margin
from ..dram.calibration import REFERENCE_CALIBRATION
from ..errors import ReliabilityError, ReliabilityUnsatisfiableError
from .policy import ANY_DISTANCE, PolicyEntry, PolicyTable
from .schemes import MitigationScheme

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids a cycle:
    # substrate -> characterization -> experiments -> this module)
    from ..substrate.base import SubstrateBackend

__all__ = [
    "TuneGrid",
    "SMOKE_TUNE_GRID",
    "DEFAULT_ERROR_BOUND",
    "DEFAULT_P_SLACK",
    "DEFAULT_BOUND_MARGIN",
    "candidate_schemes",
    "select_scheme",
    "static_infeasibility",
    "tune",
    "validate_policy",
    "ValidationReport",
]

#: Default target per-cell error bound (ISSUE acceptance criterion).
DEFAULT_ERROR_BOUND = 1e-3

#: Safety margin subtracted from served probabilities before selection.
#: The surrogate fit guarantees |fitted - analog| <= 0.02 per cell, so
#: engineering against ``p - 0.02`` keeps analog replay within bound.
DEFAULT_P_SLACK = 0.02

#: Error-space safety factor: schemes are selected to reach
#: ``bound * margin`` so that the residual keeps meeting the *full*
#: bound under the surrogate's sampling noise.  Residual error is a
#: steep (binomial-tail) function of ``p``, so a modest probability
#: shift between fits can inflate the residual severalfold — headroom
#: in error space is the robust guard, and it is cheap: one extra vote
#: level typically buys an order of magnitude.
DEFAULT_BOUND_MARGIN = 0.25

#: Ops whose activation kind supports which family of fan-ins.
_LOGIC_OPS = ("and", "or", "nand", "nor")
_STATIC_BASE = {"nand": "and", "nor": "or"}


@dataclass(frozen=True)
class TuneGrid:
    """The (operation, fan-in, distance, temperature) cells to tune."""

    logic_ops: Tuple[str, ...] = _LOGIC_OPS
    logic_fan_ins: Tuple[int, ...] = (2, 4, 8, 16)
    not_fan_ins: Tuple[int, ...] = (1, 2, 4, 8, 16)
    distances: Tuple[str, ...] = (ANY_DISTANCE,)
    temperatures: Tuple[float, ...] = (50.0, 70.0, 90.0)
    #: Largest odd vote count the search considers.
    max_votes: int = 9
    #: Largest detect-retry budget the search considers.
    max_attempts: int = 4

    def cells(self) -> List[Tuple[str, int, str, float]]:
        out: List[Tuple[str, int, str, float]] = []
        for operation in self.logic_ops:
            for fan_in in self.logic_fan_ins:
                for distance in self.distances:
                    for temperature in self.temperatures:
                        out.append((operation, fan_in, distance, temperature))
        if "not" in self.logic_ops:
            raise ReliabilityError(
                "list NOT fan-ins via not_fan_ins, not logic_ops"
            )
        for fan_in in self.not_fan_ins:
            for distance in self.distances:
                for temperature in self.temperatures:
                    out.append(("not", fan_in, distance, temperature))
        return out


#: Tiny grid for unit tests and the CI smoke job.
SMOKE_TUNE_GRID = TuneGrid(
    logic_ops=("and", "nand"),
    logic_fan_ins=(2, 16),
    not_fan_ins=(2,),
    temperatures=(50.0,),
    max_votes=9,
    max_attempts=3,
)


def terminal_rows(operation: str, fan_in: int) -> int:
    """Rows of the output terminal: how many result copies one
    activation physically writes (the space-redundancy ceiling).

    An N-input AND/OR replicates the result over the N compute-terminal
    rows; NAND/NOR land on the N reference-terminal rows; a NOT with
    ``fan_in`` destination rows writes that many copies (up to 32).
    """
    return int(fan_in)


def static_infeasibility(operation: str, fan_in: int) -> Optional[str]:
    """Why (operation, fan-in) is statically infeasible, or ``None``.

    Evaluates the worst-case sense-margin bound at the reference
    calibration; NOT is a plain two-row activation with no multi-input
    charge fight, so it never trips this gate.
    """
    if operation not in _LOGIC_OPS:
        return None
    base_op = _STATIC_BASE.get(operation, operation)
    bound = worst_case_sense_margin(base_op, fan_in, REFERENCE_CALIBRATION)
    if bound.feasible:
        return None
    return (
        f"worst-case sense margin {bound.net_margin:+.4f} VDD <= 0 "
        f"(Observation 14: the {bound.worst_case} boundary pattern fails "
        "deterministically; redundancy cannot converge)"
    )


def candidate_schemes(operation: str, fan_in: int, grid: TuneGrid) -> (
    List[MitigationScheme]
):
    """All scheme compositions the search ranks for one cell.

    Row copies are capped by the output terminal's physical row count
    and retry is restricted to operations with a complement terminal.
    """
    rows = terminal_rows(operation, fan_in)
    copy_options = [c for c in range(1, rows + 1, 2)]
    vote_options = [v for v in range(1, grid.max_votes + 1, 2)]
    attempt_options = list(range(1, grid.max_attempts + 1))
    out: List[MitigationScheme] = []
    for votes in vote_options:
        for copies in copy_options:
            for attempts in attempt_options:
                scheme = MitigationScheme(
                    votes=votes, row_copies=copies, max_attempts=attempts
                )
                if scheme.applicable_to(operation):
                    out.append(scheme)
    return out


def select_scheme(
    operation: str,
    fan_in: int,
    probability: float,
    error_bound: float,
    grid: TuneGrid,
    bound_margin: float = DEFAULT_BOUND_MARGIN,
) -> Tuple[MitigationScheme, float, float]:
    """The cheapest scheme meeting ``error_bound`` at ``probability``.

    Selection targets ``error_bound * bound_margin`` so that the chosen
    scheme keeps meeting the full bound when replayed at a slightly
    different probability (see :data:`DEFAULT_BOUND_MARGIN`).  Returns
    ``(scheme, predicted_error, expected_cost)``; raises
    :class:`~repro.errors.ReliabilityUnsatisfiableError` when no
    candidate converges (carrying the best error achieved) or when the
    configuration is statically infeasible (Observation 14).
    """
    reason = static_infeasibility(operation, fan_in)
    if reason is not None:
        raise ReliabilityUnsatisfiableError(
            f"{operation} n={fan_in} is statically infeasible: {reason}",
            operation=operation,
            fan_in=fan_in,
            error_bound=error_bound,
        )
    target = error_bound * bound_margin
    best: Optional[Tuple[float, int, MitigationScheme, float]] = None
    best_error: Optional[float] = None
    for scheme in candidate_schemes(operation, fan_in, grid):
        predicted = float(scheme.predicted_error(probability))
        if best_error is None or predicted < best_error:
            best_error = predicted
        if predicted > target:
            continue
        cost = float(scheme.expected_cost(probability))
        ranked = (cost, scheme.reads_per_execution(), scheme, predicted)
        if best is None or ranked[:2] < best[:2]:
            best = ranked
    if best is None:
        raise ReliabilityUnsatisfiableError(
            f"{operation} n={fan_in}: no scheme reaches {error_bound:.1e} "
            f"(engineering target {target:.1e}) at p={probability:.4f} "
            f"(best residual {best_error:.2e})",
            operation=operation,
            fan_in=fan_in,
            error_bound=error_bound,
            best_error=best_error,
        )
    cost, _reads, scheme, predicted = best
    return scheme, predicted, cost


def tune(
    backend: SubstrateBackend,
    grid: TuneGrid = TuneGrid(),
    error_bound: float = DEFAULT_ERROR_BOUND,
    p_slack: float = DEFAULT_P_SLACK,
    bound_margin: float = DEFAULT_BOUND_MARGIN,
    progress: Optional[Callable[[str], None]] = None,
) -> PolicyTable:
    """Tune every grid cell against ``backend`` into a policy table.

    ``backend`` must serve probability estimates (the surrogate does;
    the analog reference answers ``None`` and cannot drive a search).
    Cells the backend has no estimate for are skipped — they stay
    untuned rather than guessed.
    """
    table = PolicyTable(
        meta={
            "backend": getattr(backend, "name", "substrate"),
            "error_bound": error_bound,
            "p_slack": p_slack,
            "bound_margin": bound_margin,
            "grid": {
                "logic_ops": list(grid.logic_ops),
                "logic_fan_ins": list(grid.logic_fan_ins),
                "not_fan_ins": list(grid.not_fan_ins),
                "distances": list(grid.distances),
                "temperatures": list(grid.temperatures),
                "max_votes": grid.max_votes,
                "max_attempts": grid.max_attempts,
            },
        }
    )
    served = 0
    for operation, fan_in, distance, temperature in grid.cells():
        key = (operation, fan_in, distance, temperature)
        reason = static_infeasibility(operation, fan_in)
        if reason is not None:
            table.set_unsatisfiable(key, reason)
            if progress is not None:
                progress(f"{operation} n={fan_in}: statically infeasible")
            continue
        probability = backend.probability(
            operation,
            fan_in,
            temperature_c=temperature,
            distance=distance,
        )
        if probability is None:
            if progress is not None:
                progress(f"{operation} n={fan_in} @{temperature:g}C: no data")
            continue
        served += 1
        engineered = min(max(probability - p_slack, 0.0), 1.0)
        try:
            scheme, predicted, cost = select_scheme(
                operation, fan_in, engineered, error_bound, grid,
                bound_margin=bound_margin,
            )
        except ReliabilityUnsatisfiableError as error:
            table.set_unsatisfiable(key, str(error))
            if progress is not None:
                progress(f"{operation} n={fan_in}: unsatisfiable")
            continue
        table.set(
            key,
            PolicyEntry(
                scheme=scheme,
                probability=engineered,
                predicted_error=predicted,
                expected_cost=cost,
                error_bound=error_bound,
            ),
        )
        if progress is not None:
            progress(
                f"{operation} n={fan_in} {distance} @{temperature:g}C -> "
                f"{scheme.label} (err {predicted:.2e}, cost {cost:.2f}x)"
            )
    if served == 0 and len(table) == 0:
        raise ReliabilityError(
            f"backend {getattr(backend, 'name', backend)!r} served no "
            "probability estimates; fit a surrogate table first "
            "(`python -m repro.substrate fit`) and tune against it"
        )
    return table


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of replaying a policy table against the analog reference."""

    checked: int
    skipped: int
    #: ``(operation, fan_in, distance, temperature, analog_error)`` of
    #: every tuned cell whose scheme misses its bound at the analog
    #: probability.
    violations: Tuple[Tuple[str, int, str, float, float], ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def validate_policy(
    table: PolicyTable,
    reference: SubstrateBackend,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Check every tuned cell against an independent reference backend.

    ``reference`` is typically a surrogate fitted *from the analog
    model at a different seed* than the tuning table (fit RNG streams
    are disjoint from sweep streams, so this is analog data the tuner
    never saw).  A cell whose scheme's predicted error at the reference
    probability exceeds its recorded bound is a violation; cells the
    reference cannot answer are counted skipped.
    """
    violations: List[Tuple[str, int, str, float, float]] = []
    checked = 0
    skipped = 0
    for (operation, fan_in, distance, temperature), entry in table:
        probability = reference.probability(
            operation,
            fan_in,
            temperature_c=temperature,
            distance=distance,
        )
        if probability is None:
            skipped += 1
            continue
        checked += 1
        analog_error = float(entry.scheme.predicted_error(probability))
        status = "ok" if analog_error <= entry.error_bound else "VIOLATION"
        if progress is not None:
            progress(
                f"{operation} n={fan_in} {distance} @{temperature:g}C: "
                f"analog err {analog_error:.2e} vs bound "
                f"{entry.error_bound:.1e} [{status}]"
            )
        if analog_error > entry.error_bound:
            violations.append(
                (operation, fan_in, distance, temperature, analog_error)
            )
    return ValidationReport(
        checked=checked, skipped=skipped, violations=tuple(violations)
    )
