"""Tune, inspect, and validate reliability policy tables.

Usage::

    python -m repro.reliability tune --table surrogate.json \\
        --out policy.json --error-bound 1e-3
    python -m repro.reliability show policy.json
    python -m repro.reliability validate policy.json \\
        --scale smoke --seed 1

``tune`` searches scheme space against a fitted surrogate table
(``python -m repro.substrate fit`` produces one) and writes the policy
table; ``show`` prints a policy's cells, including the cells recorded
unsatisfiable; ``validate`` refits the surrogate from the analog
reference at an independent seed and replays every tuned cell against
it, exiting non-zero if any cell misses its bound.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..characterization.runner import DEFAULT, FULL, SMOKE
from ..substrate.base import ANY_DISTANCE
from ..substrate.fit import SMOKE_GRID, FitGrid, fit_surrogate
from ..substrate.surrogate import SurrogateBackend, SurrogateTable
from .policy import PolicyTable
from .tuner import (
    DEFAULT_BOUND_MARGIN,
    DEFAULT_ERROR_BOUND,
    DEFAULT_P_SLACK,
    TuneGrid,
    tune,
    validate_policy,
)

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def _csv_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_strs(text: str) -> List[str]:
    return [part for part in text.split(",") if part]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reliability", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tune_cmd = commands.add_parser(
        "tune", help="tune a policy table against a surrogate"
    )
    tune_cmd.add_argument(
        "--table", required=True,
        help="fitted surrogate table (python -m repro.substrate fit)",
    )
    tune_cmd.add_argument("--out", required=True, help="policy output (JSON)")
    tune_cmd.add_argument(
        "--error-bound", type=float, default=DEFAULT_ERROR_BOUND
    )
    tune_cmd.add_argument(
        "--p-slack", type=float, default=DEFAULT_P_SLACK,
        help="probability safety margin covering the surrogate fit error",
    )
    tune_cmd.add_argument(
        "--bound-margin", type=float, default=DEFAULT_BOUND_MARGIN,
        help="error-space headroom factor (select to bound*margin)",
    )
    tune_cmd.add_argument(
        "--logic-ops", type=_csv_strs, default=None,
        help="comma-separated logic ops (default and,or,nand,nor)",
    )
    tune_cmd.add_argument("--logic-fan-ins", type=_csv_ints, default=None)
    tune_cmd.add_argument("--not-fan-ins", type=_csv_ints, default=None)
    tune_cmd.add_argument(
        "--distances", type=_csv_strs, default=None,
        help=f"comma-separated distance classes (default {ANY_DISTANCE})",
    )
    tune_cmd.add_argument("--temperatures", type=_csv_floats, default=None)
    tune_cmd.add_argument("--max-votes", type=int, default=None)
    tune_cmd.add_argument("--max-attempts", type=int, default=None)
    tune_cmd.add_argument("--quiet", action="store_true")

    show = commands.add_parser("show", help="print a policy table")
    show.add_argument("policy", help="policy table path (JSON)")

    validate = commands.add_parser(
        "validate", help="replay a policy against the analog reference"
    )
    validate.add_argument("policy", help="policy table path (JSON)")
    validate.add_argument(
        "--scale", choices=sorted(_SCALES), default="smoke"
    )
    validate.add_argument(
        "--seed", type=int, default=1,
        help="fit seed for the reference (use one the tuner did not)",
    )
    validate.add_argument(
        "--grid", choices=("smoke", "default"), default="smoke",
        help="fit grid for the reference surrogate",
    )
    validate.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "show":
        table = PolicyTable.load(args.policy)
        meta = ", ".join(f"{k}={v}" for k, v in sorted(table.meta.items()))
        print(f"# {meta}")
        for line in table.summary_lines():
            print(line)
        print(
            f"# {len(table)} tuned cell(s), "
            f"{table.unsatisfiable_count} unsatisfiable"
        )
        return 0

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"  {message}", file=sys.stderr)

    if args.command == "tune":
        base = TuneGrid()
        grid = TuneGrid(
            logic_ops=(
                tuple(args.logic_ops) if args.logic_ops else base.logic_ops
            ),
            logic_fan_ins=(
                tuple(args.logic_fan_ins)
                if args.logic_fan_ins is not None
                else base.logic_fan_ins
            ),
            not_fan_ins=(
                tuple(args.not_fan_ins)
                if args.not_fan_ins is not None
                else base.not_fan_ins
            ),
            distances=(
                tuple(args.distances) if args.distances else base.distances
            ),
            temperatures=(
                tuple(args.temperatures)
                if args.temperatures
                else base.temperatures
            ),
            max_votes=(
                args.max_votes if args.max_votes is not None else base.max_votes
            ),
            max_attempts=(
                args.max_attempts
                if args.max_attempts is not None
                else base.max_attempts
            ),
        )
        backend = SurrogateBackend(SurrogateTable.load(args.table))
        policy = tune(
            backend,
            grid=grid,
            error_bound=args.error_bound,
            p_slack=args.p_slack,
            bound_margin=args.bound_margin,
            progress=progress,
        )
        policy.save(args.out)
        print(
            f"tuned {len(policy)} cell(s) "
            f"({policy.unsatisfiable_count} unsatisfiable) "
            f"at bound {args.error_bound:.1e} -> {args.out}"
        )
        return 0

    # validate
    policy = PolicyTable.load(args.policy)
    scale = _SCALES[args.scale]
    fit_grid = SMOKE_GRID if args.grid == "smoke" else FitGrid()
    reference = SurrogateBackend(
        fit_surrogate(scale, args.seed, grid=fit_grid, progress=progress)
    )
    report = validate_policy(policy, reference, progress=progress)
    print(
        f"validated {report.checked} cell(s) "
        f"({report.skipped} skipped, {len(report.violations)} violation(s))"
    )
    for operation, fan_in, distance, temperature, error in report.violations:
        print(
            f"  VIOLATION: {operation} n={fan_in} {distance} "
            f"@{temperature:g}C analog err {error:.2e}"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
