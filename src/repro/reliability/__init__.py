"""Reliability engineering on top of probabilistic in-DRAM logic.

The characterization layers measure *how often* multi-row-activation
logic succeeds; this package makes it *reliable*: composable
error-mitigation schemes (:mod:`~repro.reliability.schemes`), an
auto-tuner that picks the cheapest scheme meeting a caller-specified
error bound per (operation, fan-in, region, temperature) cell
(:mod:`~repro.reliability.tuner`), and a persisted policy table the
runtime consumes (:mod:`~repro.reliability.policy`).

``python -m repro.reliability tune`` drives the tuner from the command
line; :class:`repro.system.runtime.PudRuntime` consumes the result via
``submit_job(..., error_bound=...)``.
"""

from __future__ import annotations

from .policy import PolicyEntry, PolicyTable
from .schemes import (
    UNCODED,
    MitigationScheme,
    detect_retry_error,
    expected_attempts,
    majority_error,
)
from .tuner import (
    DEFAULT_BOUND_MARGIN,
    DEFAULT_ERROR_BOUND,
    DEFAULT_P_SLACK,
    SMOKE_TUNE_GRID,
    TuneGrid,
    ValidationReport,
    candidate_schemes,
    select_scheme,
    static_infeasibility,
    tune,
    validate_policy,
)

__all__ = [
    "MitigationScheme",
    "UNCODED",
    "majority_error",
    "detect_retry_error",
    "expected_attempts",
    "PolicyEntry",
    "PolicyTable",
    "TuneGrid",
    "SMOKE_TUNE_GRID",
    "DEFAULT_ERROR_BOUND",
    "DEFAULT_P_SLACK",
    "DEFAULT_BOUND_MARGIN",
    "candidate_schemes",
    "select_scheme",
    "static_infeasibility",
    "tune",
    "validate_policy",
    "ValidationReport",
]
