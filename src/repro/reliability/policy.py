"""Persisted reliability policies: which scheme serves which cell.

A :class:`PolicyTable` is what the auto-tuner emits: for every tuned
*(operation, fan-in, region/distance class, temperature)* cell, the
cheapest :class:`~repro.reliability.schemes.MitigationScheme` whose
predicted residual error meets the target bound, together with the
engineering probability it was selected at and its predicted error and
cost.  Cells the tuner *proved* unsatisfiable (statically infeasible
per Observation 14, or no candidate scheme converging below the bound)
are recorded explicitly with their reason — looking one up raises a
typed :class:`~repro.errors.ReliabilityUnsatisfiableError` rather than
silently degrading.

The JSON format mirrors the surrogate table's: ``operation|fan_in|
distance|temperature`` keys, an explicit ``format`` version, and atomic
writes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..atomicio import atomic_write_json
from ..errors import (
    ReliabilityError,
    ReliabilityUnsatisfiableError,
)
from .schemes import MitigationScheme

__all__ = ["PolicyEntry", "PolicyTable", "ANY_DISTANCE"]

#: Distance-class wildcard, matching the surrogate table's convention.
ANY_DISTANCE = "any"

PolicyKey = Tuple[str, int, str, float]


@dataclass(frozen=True)
class PolicyEntry:
    """One tuned cell: the chosen scheme and the numbers behind it."""

    scheme: MitigationScheme
    #: Engineering success probability the selection used (the fitted
    #: probability minus the tuner's slack).
    probability: float
    #: Residual per-cell error the scheme predicts at ``probability``.
    predicted_error: float
    #: Expected op-sequence executions per logical operation.
    expected_cost: float
    #: The bound this entry was tuned against.
    error_bound: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme.label,
            "probability": self.probability,
            "predicted_error": self.predicted_error,
            "expected_cost": self.expected_cost,
            "error_bound": self.error_bound,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PolicyEntry":
        return cls(
            scheme=MitigationScheme.from_label(str(payload["scheme"])),
            probability=float(payload["probability"]),
            predicted_error=float(payload["predicted_error"]),
            expected_cost=float(payload["expected_cost"]),
            error_bound=float(payload["error_bound"]),
        )


def _format_key(key: PolicyKey) -> str:
    operation, fan_in, distance, temperature = key
    return f"{operation}|{fan_in}|{distance}|{temperature:g}"


def _parse_key(raw: str) -> PolicyKey:
    parts = raw.split("|")
    if len(parts) != 4:
        raise ReliabilityError(f"malformed policy key {raw!r}")
    return parts[0], int(parts[1]), parts[2], float(parts[3])


class PolicyTable:
    """The tuned (operation, fan-in, distance, temperature) -> scheme map."""

    FORMAT = 1

    def __init__(self, meta: Optional[Dict[str, object]] = None) -> None:
        self.meta: Dict[str, object] = dict(meta or {})
        self._entries: Dict[PolicyKey, PolicyEntry] = {}
        self._unsatisfiable: Dict[PolicyKey, str] = {}

    # -- construction ------------------------------------------------------

    def set(self, key: PolicyKey, entry: PolicyEntry) -> None:
        self._entries[key] = entry
        self._unsatisfiable.pop(key, None)

    def set_unsatisfiable(self, key: PolicyKey, reason: str) -> None:
        self._unsatisfiable[key] = reason
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def unsatisfiable_count(self) -> int:
        return len(self._unsatisfiable)

    def __iter__(self) -> Iterator[Tuple[PolicyKey, PolicyEntry]]:
        return iter(sorted(self._entries.items()))

    def unsatisfiable_cells(self) -> Iterator[Tuple[PolicyKey, str]]:
        return iter(sorted(self._unsatisfiable.items()))

    # -- lookup ------------------------------------------------------------

    def _temperatures_for(
        self, operation: str, fan_in: int, distance: str
    ) -> List[float]:
        return sorted(
            t
            for (op, n, dist, t) in self._entries
            if op == operation and n == fan_in and dist == distance
        )

    def scheme_for(
        self,
        operation: str,
        fan_in: int,
        distance: str = ANY_DISTANCE,
        temperature_c: float = 50.0,
    ) -> PolicyEntry:
        """The tuned entry for a cell, at the nearest tuned temperature.

        Falls back from the requested distance class to ``"any"``; a
        cell tuned *unsatisfiable* raises
        :class:`~repro.errors.ReliabilityUnsatisfiableError` and an
        untuned cell raises :class:`~repro.errors.ReliabilityError`.
        """
        for dist in dict.fromkeys((distance, ANY_DISTANCE)):
            temps = self._temperatures_for(operation, fan_in, dist)
            if temps:
                nearest = min(temps, key=lambda t: abs(t - temperature_c))
                return self._entries[(operation, fan_in, dist, nearest)]
            for (op, n, d, _t), reason in sorted(self._unsatisfiable.items()):
                if (op, n, d) == (operation, fan_in, dist):
                    raise ReliabilityUnsatisfiableError(
                        f"{operation} n={fan_in} ({dist}) was tuned "
                        f"unsatisfiable: {reason}",
                        operation=operation,
                        fan_in=fan_in,
                    )
        raise ReliabilityError(
            f"no tuned policy for {operation} n={fan_in} "
            f"distance={distance!r}; run `python -m repro.reliability tune` "
            "with this configuration in its grid"
        )

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": self.FORMAT,
            "meta": self.meta,
            "cells": {
                _format_key(key): entry.to_dict() for key, entry in self
            },
            "unsatisfiable": {
                _format_key(key): reason
                for key, reason in self.unsatisfiable_cells()
            },
        }

    def save(self, path: str) -> None:
        atomic_write_json(path, self.to_payload(), indent=2)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PolicyTable":
        if payload.get("format") != cls.FORMAT:
            raise ReliabilityError(
                f"unsupported policy table format {payload.get('format')!r}"
            )
        meta = payload.get("meta")
        table = cls(meta if isinstance(meta, dict) else {})
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            raise ReliabilityError("policy table has no 'cells' mapping")
        for raw_key, raw_entry in cells.items():
            table.set(_parse_key(str(raw_key)), PolicyEntry.from_dict(raw_entry))
        unsat = payload.get("unsatisfiable", {})
        if not isinstance(unsat, dict):
            raise ReliabilityError("'unsatisfiable' must be a mapping")
        for raw_key, reason in unsat.items():
            table.set_unsatisfiable(_parse_key(str(raw_key)), str(reason))
        return table

    @classmethod
    def load(cls, path: str) -> "PolicyTable":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ReliabilityError(
                f"cannot read policy table {path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ReliabilityError(
                f"policy table {path!r} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ReliabilityError(f"policy table {path!r} must be an object")
        return cls.from_payload(payload)

    # -- display -----------------------------------------------------------

    def summary_lines(self) -> List[str]:
        lines = []
        for (operation, fan_in, distance, temperature), entry in self:
            lines.append(
                f"{operation:>4} n={fan_in:<2} {distance:<12} "
                f"{temperature:5.1f}C -> {entry.scheme.label:<20} "
                f"err={entry.predicted_error:.2e} "
                f"cost={entry.expected_cost:.2f}x p={entry.probability:.4f}"
            )
        for (operation, fan_in, distance, temperature), reason in (
            self.unsatisfiable_cells()
        ):
            lines.append(
                f"{operation:>4} n={fan_in:<2} {distance:<12} "
                f"{temperature:5.1f}C -> UNSATISFIABLE: {reason}"
            )
        return lines
