"""Exception hierarchy for the FCDRAM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from protocol-level
problems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple

if TYPE_CHECKING:  # only for annotations: keep errors import-cycle-free
    from .staticcheck.diagnostics import Diagnostic


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised when, for example, a chip organization declares more banks than
    its density allows, or a subarray height is not a power of two.
    """


class AddressError(ReproError):
    """A row, column, bank, or subarray address is out of range."""


class CommandSequenceError(ReproError):
    """A DRAM command was issued in a state where it is illegal.

    The real memory controller enforces these rules; DRAM Bender lets the
    experimenter violate *timings* but a command to a closed bank (for
    instance a ``RD`` with no open row) is still a programming error.
    """


class TimingViolationError(CommandSequenceError):
    """A timing violation occurred where the experiment did not allow one.

    The executor raises this only when a program is run in *strict* mode;
    characterization programs deliberately violate timings and run in
    permissive mode instead.
    """


class ProgramError(ReproError):
    """A DRAM Bender test program is malformed."""


class ProgramVerificationError(ProgramError):
    """The static pre-flight verifier refused a test program.

    Raised by :class:`~repro.bender.executor.ProgramExecutor` in
    ``verify="error"`` mode before any command reaches the device; the
    module state is untouched.  ``diagnostics`` carries the structured
    findings (:class:`~repro.staticcheck.diagnostics.Diagnostic`).
    """

    def __init__(
        self, message: str, diagnostics: Iterable["Diagnostic"] = ()
    ) -> None:
        super().__init__(message)
        self.diagnostics: Tuple["Diagnostic", ...] = tuple(diagnostics)


class IsolationError(ReproError):
    """The concurrency/isolation gate refused a job or schedule.

    Raised by :meth:`~repro.system.runtime.PudRuntime.submit_job` in
    ``verify_isolation="error"`` mode before any operand is stored —
    runtime state (slots, quarantine, placements) is untouched.
    ``diagnostics`` carries the structured CC-rule findings
    (:class:`~repro.staticcheck.diagnostics.Diagnostic`).
    """

    def __init__(
        self, message: str, diagnostics: Iterable["Diagnostic"] = ()
    ) -> None:
        super().__init__(message)
        self.diagnostics: Tuple["Diagnostic", ...] = tuple(diagnostics)


class ThermalError(ReproError):
    """The temperature controller cannot reach or hold a target."""


class TransientInfrastructureError(ReproError):
    """A transient infrastructure failure interrupted an experiment.

    Models what the real bench occasionally does to a long campaign: a
    host/FPGA command timeout, a stalled link, a thermal-controller
    setpoint dropout.  By definition the failure is *retryable* — the
    resilient sweep machinery rebuilds the affected module group from
    its seed tree and re-runs it, so a retried run stays bit-identical
    to an uninterrupted one.
    """


class TargetQuarantinedError(ReproError):
    """A sweep target exhausted its retry budget.

    Raised only when the active :class:`~repro.characterization.resilience.RetryPolicy`
    forbids graceful degradation (``quarantine=False``); with the default
    policy the target is quarantined instead and the sweep completes with
    partial results plus a structured degradation report.
    """


class ReliabilityError(ReproError):
    """The reliability engineering layer could not serve a request.

    Base class for :mod:`repro.reliability` failures: malformed schemes,
    missing policy tables, and untunable configurations.
    """


class ReliabilityUnsatisfiableError(ReliabilityError):
    """No mitigation scheme can meet the requested error bound.

    Raised instead of silently degrading — e.g. for 16-input AND, whose
    worst-case sense margin is statically infeasible (Observation 14),
    no amount of voting or retrying converges, because the failure is
    deterministic for the boundary data pattern rather than noise.

    ``best_error`` is the lowest residual error any candidate scheme
    achieved (``None`` when the operation is statically infeasible and
    no candidate was evaluated at all).
    """

    def __init__(
        self,
        message: str,
        operation: str = "",
        fan_in: int = 0,
        error_bound: float = 0.0,
        best_error: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.operation = operation
        self.fan_in = fan_in
        self.error_bound = error_bound
        self.best_error = best_error


class ReverseEngineeringError(ReproError):
    """A reverse-engineering pass could not reach a conclusion.

    Raised when, e.g., RowHammer probing produces contradictory adjacency
    evidence and the physical row order cannot be recovered.
    """


class UnsupportedOperationError(ReproError):
    """The targeted chip cannot perform the requested in-DRAM operation.

    Mirrors the paper's §7 Limitation 1: Samsung chips only support the
    NOT operation (sequential two-row activation) and Micron chips ignore
    timing-violating command sequences entirely.
    """


class SubstrateError(ReproError):
    """A substrate backend could not serve a measurement request.

    Base class for the :mod:`repro.substrate` failures: malformed backend
    specifications, unusable surrogate tables, and trace mismatches.
    """


class SurrogateTableError(SubstrateError):
    """A fitted surrogate table is missing, malformed, or lacks the
    requested (operation, fan-in, distance, temperature, pattern) cell.
    """


class TraceMismatchError(SubstrateError):
    """A strict-mode trace replay diverged from the recorded call stream.

    Raised when a replayed measurement request has no recorded entry
    (unknown key), when a key's recorded entries are exhausted, or when a
    recorded payload fails its integrity check.  The message names the
    offending key so the divergence is attributable.
    """
