"""DRAM Bender-style testing infrastructure (the paper's §3.1 setup).

* :mod:`repro.bender.commands` / :mod:`repro.bender.program` — command
  encoding and the test-program builder
* :mod:`repro.bender.executor` — cycle-quantized program execution with
  optional strict timing checking
* :mod:`repro.bender.host` — host-machine interface (row I/O, programs)
* :mod:`repro.bender.thermal` — heater pads and temperature controller
* :mod:`repro.bender.infrastructure` — the whole Fig.-4 bench in one object
"""

from .commands import Command, Opcode
from .executor import ExecutionResult, ProgramExecutor, ReadRecord
from .host import DramBenderHost
from .infrastructure import TestingInfrastructure
from .program import TestProgram
from .thermal import TemperatureController, ThermalPlant

__all__ = [
    "Command",
    "DramBenderHost",
    "ExecutionResult",
    "Opcode",
    "ProgramExecutor",
    "ReadRecord",
    "TemperatureController",
    "TestProgram",
    "TestingInfrastructure",
    "ThermalPlant",
]
