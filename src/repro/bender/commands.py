"""DDR4 command encoding for test programs.

A test program is a sequence of :class:`Command` records; each carries
the number of bus cycles to wait before the *next* command issues, which
is exactly how DRAM Bender programs express (and violate) timing
parameters: spacing is only controllable at bus-cycle granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ProgramError

__all__ = ["Opcode", "Command"]


class Opcode(enum.Enum):
    """DDR4 command opcodes used by the characterization programs."""

    ACT = "ACT"
    PRE = "PRE"
    WR = "WR"
    RD = "RD"
    REF = "REF"
    NOP = "NOP"


@dataclass(frozen=True)
class Command:
    """One bus command plus the idle gap that follows it."""

    opcode: Opcode
    bank: int = 0
    row: Optional[int] = None
    data: Optional[np.ndarray] = field(default=None, compare=False)
    wait_cycles: int = 1
    #: Free-form tag surfaced in read results and error messages.
    label: str = ""
    #: The nanosecond wait originally requested, when the command was
    #: built via ``wait_ns=``; ``None`` when spacing was given in cycles.
    requested_wait_ns: Optional[float] = field(default=None, compare=False)
    #: True when ``requested_wait_ns`` was below one bus cycle and had to
    #: be quantized up — the spacing on the bus is coarser than asked.
    quantized: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.wait_cycles < 1:
            raise ProgramError(
                f"wait_cycles must be >= 1 (bus cycle granularity), got "
                f"{self.wait_cycles}"
            )
        if self.bank < 0:
            raise ProgramError(f"bank must be non-negative, got {self.bank}")
        needs_row = self.opcode in (Opcode.ACT, Opcode.WR, Opcode.RD)
        if needs_row and self.row is None:
            raise ProgramError(f"{self.opcode.value} requires a row address")
        if not needs_row and self.row is not None:
            raise ProgramError(
                f"{self.opcode.value} ignores row addressing but row="
                f"{self.row} was supplied; a mislabeled row here masks "
                "addressing bugs elsewhere (staticcheck rule FC110)"
            )
        if self.opcode is Opcode.WR and self.data is None:
            raise ProgramError("WR requires data")

    def describe(self) -> str:
        """Short human-readable rendering, e.g. ``ACT b0 r128 (+3ck)``."""
        parts = [self.opcode.value, f"b{self.bank}"]
        if self.row is not None:
            parts.append(f"r{self.row}")
        if self.quantized and self.requested_wait_ns is not None:
            parts.append(
                f"(+{self.wait_cycles}ck, quantized from "
                f"{self.requested_wait_ns:g}ns)"
            )
        else:
            parts.append(f"(+{self.wait_cycles}ck)")
        if self.label:
            parts.append(f"[{self.label}]")
        return " ".join(parts)
