"""Thermal plant and controller: heater pads plus a MaxWell-FT200-like
closed-loop temperature controller (§3.1, Fig. 4).

The device under test is a first-order thermal plant: its temperature
relaxes toward the heater setpoint with time constant ``tau_s``.  The
controller steps the simulation until the target is held within a
tolerance band, exactly how the bench controller gates experiment start.

The settle loop is guarded twice: a *simulated-time* budget
(``timeout_s``) models the bench controller declaring an unreachable
setpoint, and a *wall-clock* budget (``wall_timeout_s``) protects the
host process itself — a plant driven into a pathological regime (or a
buggy fault plan) raises :class:`~repro.errors.ThermalError` instead of
spinning forever.  An injected setpoint dropout
(:class:`~repro.faults.FaultInjector`) surfaces as
:class:`~repro.errors.TransientInfrastructureError` so the resilient
sweep machinery retries it; a genuinely unreachable setpoint stays a
:class:`~repro.errors.ThermalError`.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
import time
from typing import Optional

from ..errors import ThermalError, TransientInfrastructureError
from ..dram.module import Module

__all__ = ["ThermalPlant", "TemperatureController"]


@dataclass
class ThermalPlant:
    """First-order thermal model of a module with heater pads."""

    ambient_c: float = 25.0
    tau_s: float = 30.0
    temperature_c: float = 25.0
    heater_c: float = 25.0

    def step(self, dt_s: float) -> float:
        """Advance the plant ``dt_s`` seconds; returns the temperature."""
        if dt_s < 0:
            raise ValueError(f"dt_s must be non-negative, got {dt_s}")
        decay = math.exp(-dt_s / self.tau_s)
        self.temperature_c = self.heater_c + (self.temperature_c - self.heater_c) * decay
        return self.temperature_c


class TemperatureController:
    """Closed-loop controller holding a module at a target temperature."""

    #: Supported range of the bench controller.
    MIN_TARGET_C = 20.0
    MAX_TARGET_C = 110.0

    #: Simulated seconds into the settle at which an injected setpoint
    #: dropout takes effect (the controller loses its target mid-ramp).
    DROPOUT_AFTER_S = 5.0

    def __init__(
        self,
        module: Module,
        plant: "ThermalPlant" = None,
        tolerance_c: float = 0.5,
        timeout_s: float = 1800.0,
        wall_timeout_s: Optional[float] = 60.0,
        fault_injector=None,
    ):
        self.module = module
        self.plant = plant if plant is not None else ThermalPlant()
        self.tolerance_c = tolerance_c
        self.timeout_s = timeout_s
        self.wall_timeout_s = wall_timeout_s
        self.faults = fault_injector
        self.module.temperature_c = self.plant.temperature_c

    @property
    def temperature_c(self) -> float:
        return self.plant.temperature_c

    def set_target(self, target_c: float) -> None:
        """Set the heater target and block until the module settles.

        The heater overshoots the target slightly (as a real controller's
        feed-forward does) so settling happens from both directions.
        """
        if not self.MIN_TARGET_C <= target_c <= self.MAX_TARGET_C:
            raise ThermalError(
                f"target {target_c}degC outside supported range "
                f"[{self.MIN_TARGET_C}, {self.MAX_TARGET_C}]"
            )
        disturbance = (
            self.faults.on_thermal_set(target_c)
            if self.faults is not None
            else None
        )
        self.plant.heater_c = target_c
        if disturbance == "overshoot":
            self.plant.heater_c = min(
                self.MAX_TARGET_C, target_c + self.faults.plan.thermal_overshoot_c
            )
        dropout_pending = disturbance == "dropout"
        dropped_out = False
        elapsed = 0.0
        step_s = 1.0
        started = time.monotonic()
        while abs(self.plant.temperature_c - target_c) > self.tolerance_c:
            self.plant.step(step_s)
            elapsed += step_s
            if dropout_pending and elapsed >= self.DROPOUT_AFTER_S:
                # The controller lost its setpoint: the heater falls back
                # to ambient and the target becomes unreachable.
                self.plant.heater_c = self.plant.ambient_c
                dropout_pending = False
                dropped_out = True
            if elapsed > self.timeout_s:
                if dropped_out:
                    raise TransientInfrastructureError(
                        f"injected thermal setpoint dropout at {target_c}degC "
                        f"(module stuck at {self.plant.temperature_c:.2f}degC)"
                    )
                raise ThermalError(
                    f"module failed to settle at {target_c}degC within "
                    f"{self.timeout_s}s (stuck at {self.plant.temperature_c:.2f}degC)"
                )
            if (
                self.wall_timeout_s is not None
                and time.monotonic() - started > self.wall_timeout_s
            ):
                raise ThermalError(
                    f"settle loop for {target_c}degC exceeded the "
                    f"{self.wall_timeout_s}s wall-clock budget "
                    f"(at {self.plant.temperature_c:.2f}degC after {elapsed:.0f} "
                    "simulated seconds)"
                )
        # Snap to the setpoint once inside the band — the bench controller
        # holds the plateau for the duration of the experiment.
        self.plant.temperature_c = target_c
        self.module.temperature_c = target_c
