"""Thermal plant and controller: heater pads plus a MaxWell-FT200-like
closed-loop temperature controller (§3.1, Fig. 4).

The device under test is a first-order thermal plant: its temperature
relaxes toward the heater setpoint with time constant ``tau_s``.  The
controller steps the simulation until the target is held within a
tolerance band, exactly how the bench controller gates experiment start.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..errors import ThermalError
from ..dram.module import Module

__all__ = ["ThermalPlant", "TemperatureController"]


@dataclass
class ThermalPlant:
    """First-order thermal model of a module with heater pads."""

    ambient_c: float = 25.0
    tau_s: float = 30.0
    temperature_c: float = 25.0
    heater_c: float = 25.0

    def step(self, dt_s: float) -> float:
        """Advance the plant ``dt_s`` seconds; returns the temperature."""
        if dt_s < 0:
            raise ValueError(f"dt_s must be non-negative, got {dt_s}")
        decay = math.exp(-dt_s / self.tau_s)
        self.temperature_c = self.heater_c + (self.temperature_c - self.heater_c) * decay
        return self.temperature_c


class TemperatureController:
    """Closed-loop controller holding a module at a target temperature."""

    #: Supported range of the bench controller.
    MIN_TARGET_C = 20.0
    MAX_TARGET_C = 110.0

    def __init__(
        self,
        module: Module,
        plant: "ThermalPlant" = None,
        tolerance_c: float = 0.5,
        timeout_s: float = 1800.0,
    ):
        self.module = module
        self.plant = plant if plant is not None else ThermalPlant()
        self.tolerance_c = tolerance_c
        self.timeout_s = timeout_s
        self.module.temperature_c = self.plant.temperature_c

    @property
    def temperature_c(self) -> float:
        return self.plant.temperature_c

    def set_target(self, target_c: float) -> None:
        """Set the heater target and block until the module settles.

        The heater overshoots the target slightly (as a real controller's
        feed-forward does) so settling happens from both directions.
        """
        if not self.MIN_TARGET_C <= target_c <= self.MAX_TARGET_C:
            raise ThermalError(
                f"target {target_c}degC outside supported range "
                f"[{self.MIN_TARGET_C}, {self.MAX_TARGET_C}]"
            )
        self.plant.heater_c = target_c
        elapsed = 0.0
        step_s = 1.0
        while abs(self.plant.temperature_c - target_c) > self.tolerance_c:
            self.plant.step(step_s)
            elapsed += step_s
            if elapsed > self.timeout_s:
                raise ThermalError(
                    f"module failed to settle at {target_c}degC within "
                    f"{self.timeout_s}s (stuck at {self.plant.temperature_c:.2f}degC)"
                )
        # Snap to the setpoint once inside the band — the bench controller
        # holds the plateau for the duration of the experiment.
        self.plant.temperature_c = target_c
        self.module.temperature_c = target_c
