"""Host-side interface to a module under test.

:class:`DramBenderHost` mirrors what the paper's host machine does
through the FPGA: generate programs, push data, pull results.  Two data
paths exist:

* the *command path* (``write_row``/``read_row``) issues real
  ACT/WR/RD/PRE sequences at nominal timing, exercising the full device
  model;
* the *backdoor path* (``fill_row``/``peek_row``) pokes cell state
  directly.  Experiments use it for bulk initialization, like the real
  infrastructure uses burst DMA writes — it is orders of magnitude
  faster and, at nominal timing, behaviorally identical.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..dram.batch import BatchedModule
from ..dram.module import Module
from ..dram.timing import TimingParameters
from .executor import ExecutionResult, ProgramExecutor
from .program import TestProgram

__all__ = ["DramBenderHost", "BatchedTrialSession"]


class DramBenderHost:
    """High-level driver for one module.

    ``verify``/``suppress_rules`` configure the executor's static
    pre-flight gate (see :class:`~repro.bender.executor.ProgramExecutor`).
    """

    def __init__(
        self,
        module: Module,
        strict: bool = False,
        fault_injector=None,
        verify: str = "warn",
        verify_semantics: str = "off",
        suppress_rules: Iterable[str] = (),
    ):
        self.module = module
        self.faults = fault_injector
        self.executor = ProgramExecutor(
            module,
            strict=strict,
            fault_injector=fault_injector,
            verify=verify,
            verify_semantics=verify_semantics,
            suppress_rules=suppress_rules,
        )

    @property
    def timing(self) -> TimingParameters:
        return self.module.chips[0].timing

    def new_program(
        self, name: str = "", intent: Optional[str] = None
    ) -> TestProgram:
        return TestProgram(self.timing, name=name, intent=intent)

    def run(self, program: TestProgram) -> ExecutionResult:
        return self.executor.run(program)

    # -- command-path row access ------------------------------------------

    def write_row(self, bank: int, row: int, bits: np.ndarray) -> None:
        """Write a full row through ACT → WR → (tRAS) → PRE."""
        timing = self.timing
        program = (
            self.new_program(f"write-row-{row}", intent="nominal")
            .act(bank, row, wait_ns=timing.t_rcd)
            .wr(bank, row, bits, wait_ns=max(timing.t_wr, timing.t_ras - timing.t_rcd))
            .pre(bank, wait_ns=timing.t_rp)
        )
        self.run(program)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a full row through ACT → RD → (tRAS) → PRE."""
        timing = self.timing
        program = (
            self.new_program(f"read-row-{row}", intent="nominal")
            .act(bank, row, wait_ns=timing.t_ras)
            .rd(bank, row, wait_ns=timing.t_rcd, label="row")
            .pre(bank, wait_ns=timing.t_rp)
        )
        return self.run(program).read_by_label("row")

    # -- backdoor row access ------------------------------------------------

    def fill_row(self, bank: int, row: int, bits: np.ndarray) -> None:
        """Backdoor bulk initialization of one row."""
        self.module.store_bits(bank, row, bits)
        self.executor.note_backdoor_write(bank, row, bits=bits)

    def fill_row_voltages(self, bank: int, row: int, volts: np.ndarray) -> None:
        self.module.store_voltages(bank, row, volts)
        self.executor.note_backdoor_write(bank, row, voltages=volts)

    def peek_row(self, bank: int, row: int) -> np.ndarray:
        """Backdoor readout of one row."""
        bits = self.module.load_bits(bank, row)
        if self.faults is not None:
            # Cell-level faults are physical: they show on the backdoor
            # path exactly as on the command path.
            bits = self.faults.filter_read(bank, row, bits)
        return bits

    def fill_subarray(
        self, bank: int, subarray: int, bits_per_row: np.ndarray
    ) -> None:
        """Fill every row of ``subarray`` with the same pattern."""
        geometry = self.module.config.geometry
        base = subarray * geometry.rows_per_subarray
        for offset in range(geometry.rows_per_subarray):
            self.fill_row(bank, base + offset, bits_per_row)

    # -- characterization helpers ---------------------------------------

    def hammer_row(self, bank: int, row: int, activations: int) -> None:
        """Single-sided RowHammer: ``activations`` ACT/PRE cycles.

        Provided as a macro (the unrolled loop would dominate runtime),
        exactly like DRAM Bender's loop instructions.
        """
        self.module.apply_hammer(bank, row, activations)

    def random_bits(
        self, rng: np.random.Generator, density: Optional[float] = None
    ) -> np.ndarray:
        """A module-width random row pattern (RAND1/RAND2 style)."""
        if density is None:
            return rng.integers(0, 2, self.module.row_bits, dtype=np.uint8)
        return (rng.random(self.module.row_bits) < density).astype(np.uint8)

    # -- trial-axis execution ---------------------------------------------

    def begin_trial(self, bank: int) -> int:
        """Start the next measurement trial on ``bank`` (serial path).

        Switches the bank's analog noise to the trial's substream and
        scopes fault injection to the trial index, mirroring what
        :meth:`batched_trials` does for a whole block at once.
        """
        index = self.module.begin_trial(bank)
        if self.faults is not None:
            self.faults.set_trial(index)
        return index

    def end_trials(self) -> None:
        """Leave per-trial fault scoping after a measurement completes."""
        if self.faults is not None:
            self.faults.set_trial(None)

    def batched_trials(self, bank: int, n_trials: int) -> "BatchedTrialSession":
        """Open a batched block of ``n_trials`` trials against ``bank``."""
        return BatchedTrialSession(self, bank, n_trials)


class BatchedTrialSession:
    """One block of measurement trials executing as a single batch.

    The session exposes the same fill/run/peek surface a serial trial
    uses on :class:`DramBenderHost`, with data carrying an optional
    leading trials axis.  Use as a context manager::

        with host.batched_trials(bank, n) as session:
            session.fill_row(row, bits)            # same bits, every trial
            session.fill_row(row, stacked_bits)    # (n, row_bits): per trial
            session.run(program)                   # one batched execution
            bits = session.peek_row(row)           # (n, row_bits)

    On clean exit the block is folded back into the module, leaving the
    device bit-identical to ``n`` serial trials.  On an exception
    (injected host timeout, ...) the fold-back is skipped — the module
    state is stale, exactly like a serial loop aborted mid-trial, and
    the retry machinery rebuilds the module either way.
    """

    def __init__(self, host: DramBenderHost, bank: int, n_trials: int):
        self.host = host
        self.bank = bank
        self.batch = BatchedModule(host.module, bank, n_trials)
        self.n_trials = n_trials
        #: Absolute trial indices covered by this block.
        self.trial_indices = self.batch.trial_indices
        self._finished = False

    @property
    def timing(self) -> TimingParameters:
        return self.host.timing

    def fill_row(self, row: int, bits: np.ndarray) -> None:
        """Backdoor fill; ``bits`` is ``(row_bits,)`` or ``(n, row_bits)``."""
        self.batch.store_bits(row, bits)
        self.host.executor.note_backdoor_write(self.bank, row, bits=bits)

    def fill_row_voltages(self, row: int, volts: np.ndarray) -> None:
        self.batch.store_voltages(row, volts)
        self.host.executor.note_backdoor_write(self.bank, row, voltages=volts)

    def peek_row(self, row: int) -> np.ndarray:
        """Backdoor readout for every trial: ``(n_trials, row_bits)``."""
        bits = self.batch.load_bits(row)
        faults = self.host.faults
        if faults is None:
            return bits
        filtered = bits.copy()
        for i, trial in enumerate(self.trial_indices):
            faults.set_trial(trial)
            filtered[i] = faults.filter_read(self.bank, row, bits[i])
        return filtered

    def run(self, program: TestProgram) -> ExecutionResult:
        """Execute ``program`` once for every trial of the block."""
        return self.host.executor.run_batched(program, self.batch)

    def finish(self) -> None:
        """Fold the block back into the module (idempotent)."""
        if self._finished:
            return
        self.batch.finalize()
        self._finished = True

    def __enter__(self) -> "BatchedTrialSession":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is None:
            self.finish()
        return False
