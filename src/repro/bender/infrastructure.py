"""The full experimental setup of the paper's Fig. 4, in one object.

A :class:`TestingInfrastructure` bundles the host machine interface
(:class:`~repro.bender.host.DramBenderHost`), the module under test, and
the temperature controller, so characterization code reads like the
bench procedure: mount a module, set a temperature, run programs.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..dram.config import ChipConfig, ModuleSpec
from ..dram.module import Module
from ..rng import SeedTree
from .host import DramBenderHost
from .thermal import TemperatureController

__all__ = ["TestingInfrastructure"]


class TestingInfrastructure:
    """Host + FPGA board + heater/controller around one module."""

    #: Not a pytest test class, despite the (domain-accurate) name.
    __test__ = False

    def __init__(
        self,
        module: Module,
        strict: bool = False,
        fault_injector=None,
        verify: str = "warn",
        suppress_rules: Iterable[str] = (),
    ):
        self.module = module
        self.faults = fault_injector
        self.host = DramBenderHost(
            module,
            strict=strict,
            fault_injector=fault_injector,
            verify=verify,
            suppress_rules=suppress_rules,
        )
        self.thermal = TemperatureController(module, fault_injector=fault_injector)

    @classmethod
    def for_config(
        cls,
        config: ChipConfig,
        chip_count: int = 1,
        seed: int = 0,
        **kwargs,
    ) -> "TestingInfrastructure":
        """Mount a fresh module built from a chip configuration."""
        module = Module(config, chip_count=chip_count, seed_tree=SeedTree(seed))
        return cls(module, **kwargs)

    @classmethod
    def for_spec(
        cls,
        spec: ModuleSpec,
        module_index: int = 0,
        seed: int = 0,
        chip_count: Optional[int] = None,
        **kwargs,
    ) -> "TestingInfrastructure":
        """Mount one physical module of a Table-1 spec."""
        module = Module.from_spec(
            spec, module_index=module_index, seed_tree=SeedTree(seed), chip_count=chip_count
        )
        return cls(module, **kwargs)

    def set_temperature(self, target_c: float) -> None:
        """Heat/cool the module and wait for it to settle (§3.1)."""
        self.thermal.set_target(target_c)

    @property
    def temperature_c(self) -> float:
        return self.thermal.temperature_c
