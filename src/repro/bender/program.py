"""Test-program builder.

:class:`TestProgram` accumulates commands with a fluent interface and
converts nanosecond waits to bus cycles using the module's timing — the
same quantization a real DRAM Bender program is subject to.  The
FCDRAM command sequences (§4.1, §5.1, §6.1) are provided as ready-made
constructors in :mod:`repro.core.sequences`.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ProgramError
from ..dram.timing import TimingParameters
from .commands import Command, Opcode

__all__ = ["TestProgram", "KNOWN_INTENTS"]

#: Program pragmas use the same comment syntax as the source lint:
#: ``# staticcheck: ignore[SEM306]`` / ``ignore[SEM306, SEM309]`` /
#: ``ignore[*]`` (the leading ``#`` is optional when passed as a string).
_PRAGMA_RE = re.compile(r"(?:#\s*)?staticcheck:\s*ignore\[([^\]]+)\]")

#: Operation intents a program may declare; the static verifier checks
#: the declared intent against what the timing/topology actually do.
KNOWN_INTENTS = ("not", "rowclone", "logic", "frac", "nominal")


class TestProgram:
    """A mutable sequence of DDR4 commands with explicit spacing.

    ``intent`` optionally declares which in-DRAM operation the program
    is supposed to perform (one of :data:`KNOWN_INTENTS`); the static
    verifier (:mod:`repro.staticcheck`) flags programs whose command
    timing or row placement produce a different operation (rule FC113).
    """

    #: Not a pytest test class, despite the (domain-accurate) name.
    __test__ = False

    def __init__(
        self,
        timing: TimingParameters,
        name: str = "",
        intent: Optional[str] = None,
    ):
        if intent is not None and intent not in KNOWN_INTENTS:
            raise ProgramError(
                f"unknown intent {intent!r}; expected one of {KNOWN_INTENTS}"
            )
        self.timing = timing
        self.name = name
        self.intent = intent
        #: Rule ids suppressed for this program (see :meth:`pragma`).
        self.ignored_rules: FrozenSet[str] = frozenset()
        self._commands: List[Command] = []

    # -- builder interface ----------------------------------------------

    def pragma(self, comment: str) -> "TestProgram":
        """Attach a ``staticcheck: ignore[...]`` pragma to the program.

        The static checkers (the semantic evaluator in particular) skip
        the listed rule ids when analyzing this program — the program
        analogue of the source lint's in-place pragma comment::

            program.pragma("# staticcheck: ignore[SEM306] TRNG readout")

        Trailing text after the bracket is a free-form justification.
        """
        match = _PRAGMA_RE.search(comment)
        if match is None:
            raise ProgramError(
                f"not a staticcheck pragma: {comment!r}; expected "
                "'# staticcheck: ignore[RULE, ...]'"
            )
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        self.ignored_rules = self.ignored_rules | ids
        return self

    def _wait_to_cycles(
        self, wait_ns: Optional[float], wait_cycles: Optional[int]
    ) -> Tuple[int, Optional[float], bool]:
        """Resolve a requested spacing to bus cycles.

        Returns ``(cycles, requested_ns, quantized)``: ``requested_ns``
        preserves the original nanosecond request (``None`` for cycle
        requests) and ``quantized`` is True when the request was below
        one bus cycle and had to be rounded up — sub-cycle spacing does
        not exist on the bus, and silently widening it changes what an
        intentionally-violated sequence does (staticcheck rule FC107).
        """
        if wait_ns is not None and wait_cycles is not None:
            raise ProgramError("specify wait_ns or wait_cycles, not both")
        if wait_cycles is not None:
            return wait_cycles, None, False
        if wait_ns is not None:
            cycles = max(1, self.timing.cycles(wait_ns))
            quantized = wait_ns < self.timing.t_ck - 1e-9
            return cycles, wait_ns, quantized
        return 1, None, False

    def _append(self, command: Command) -> "TestProgram":
        self._commands.append(command)
        return self

    def act(
        self,
        bank: int,
        row: int,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
        label: str = "",
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(wait_ns, wait_cycles)
        return self._append(
            Command(
                Opcode.ACT,
                bank,
                row,
                wait_cycles=cycles,
                label=label,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    def pre(
        self,
        bank: int,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
        label: str = "",
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(wait_ns, wait_cycles)
        return self._append(
            Command(
                Opcode.PRE,
                bank,
                wait_cycles=cycles,
                label=label,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    def wr(
        self,
        bank: int,
        row: int,
        data: np.ndarray,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
        label: str = "",
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(wait_ns, wait_cycles)
        return self._append(
            Command(
                Opcode.WR,
                bank,
                row,
                data=np.asarray(data),
                wait_cycles=cycles,
                label=label,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    def rd(
        self,
        bank: int,
        row: int,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
        label: str = "",
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(wait_ns, wait_cycles)
        return self._append(
            Command(
                Opcode.RD,
                bank,
                row,
                wait_cycles=cycles,
                label=label,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    def ref(
        self,
        bank: int,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(
            wait_ns if wait_ns is not None else self.timing.t_rfc, wait_cycles
        )
        return self._append(
            Command(
                Opcode.REF,
                bank,
                wait_cycles=cycles,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    def nop(
        self,
        wait_ns: Optional[float] = None,
        wait_cycles: Optional[int] = None,
    ) -> "TestProgram":
        cycles, requested, quantized = self._wait_to_cycles(wait_ns, wait_cycles)
        return self._append(
            Command(
                Opcode.NOP,
                wait_cycles=cycles,
                requested_wait_ns=requested,
                quantized=quantized,
            )
        )

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self._commands)

    @property
    def commands(self) -> List[Command]:
        return list(self._commands)

    @property
    def duration_ns(self) -> float:
        """Total bus time the program occupies."""
        cycles = sum(command.wait_cycles for command in self._commands)
        return cycles * self.timing.t_ck

    def describe(self) -> str:
        """Multi-line rendering of the program (for logs and docs)."""
        header = f"# program {self.name or '<anonymous>'} ({len(self)} commands)"
        return "\n".join([header] + [cmd.describe() for cmd in self._commands])
