"""Program executor: replays a test program against a module.

The executor owns the bus clock: commands issue at cycle boundaries and
the absolute time of each command is handed to the device model, which
decides — exactly like silicon would — whether the spacing constitutes
nominal operation, a FracDRAM-style interrupted activation, or the
multi-row activation glitch.

``strict=True`` turns timing violations into
:class:`~repro.errors.TimingViolationError` instead, which is how
*functional* (non-characterization) users of the library protect
themselves from accidentally issuing undefined-behavior sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import TimingViolationError
from ..dram.module import Module
from .commands import Command, Opcode
from .program import TestProgram

__all__ = ["ExecutionResult", "ReadRecord", "ProgramExecutor"]


@dataclass(frozen=True)
class ReadRecord:
    """One RD command's returned data."""

    command_index: int
    bank: int
    row: int
    label: str
    bits: np.ndarray


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one program execution."""

    reads: List[ReadRecord]
    duration_ns: float
    violations: List[str]

    def read_by_label(self, label: str) -> np.ndarray:
        for record in self.reads:
            if record.label == label:
                return record.bits
        raise KeyError(f"no RD with label {label!r}")


class _BankClock:
    """Per-bank timestamps for timing-rule checking."""

    __slots__ = ("last_act_ns", "last_pre_ns", "open_")

    def __init__(self) -> None:
        self.last_act_ns: Optional[float] = None
        self.last_pre_ns: Optional[float] = None
        self.open_ = False


class ProgramExecutor:
    """Replays :class:`TestProgram` instances against a :class:`Module`."""

    def __init__(self, module: Module, strict: bool = False, fault_injector=None):
        self.module = module
        self.strict = strict
        self.faults = fault_injector
        self._now_ns = 0.0

    @property
    def now_ns(self) -> float:
        """Absolute bus time; monotone across program executions."""
        return self._now_ns

    def run(self, program: TestProgram) -> ExecutionResult:
        if self.faults is not None:
            # A host command timeout aborts the program before any
            # command reaches the module, exactly like the real bench
            # dropping a DMA transaction: the device state is untouched
            # and the whole program is safe to re-issue.
            self.faults.on_program(program.name)
        timing = program.timing
        clocks: Dict[int, _BankClock] = {}
        reads: List[ReadRecord] = []
        violations: List[str] = []
        start_ns = self._now_ns

        for index, command in enumerate(program):
            clock = clocks.setdefault(command.bank, _BankClock())
            self._check_timing(command, clock, timing, violations)
            self._dispatch(command, index, reads)
            self._now_ns += command.wait_cycles * timing.t_ck

        # Give every touched bank a chance to complete a trailing PRE.
        settle_at = self._now_ns + timing.t_rc
        for bank in clocks:
            self.module.settle(bank, settle_at)
        self._now_ns = settle_at

        if self.strict and violations:
            raise TimingViolationError(
                f"program {program.name or '<anonymous>'} violated timings: "
                + "; ".join(violations)
            )
        return ExecutionResult(
            reads=reads, duration_ns=self._now_ns - start_ns, violations=violations
        )

    # ------------------------------------------------------------------

    def _dispatch(
        self, command: Command, index: int, reads: List[ReadRecord]
    ) -> None:
        module = self.module
        now = self._now_ns
        if command.opcode is Opcode.ACT:
            module.activate(command.bank, command.row, now)
        elif command.opcode is Opcode.PRE:
            module.precharge(command.bank, now)
        elif command.opcode is Opcode.WR:
            module.write(command.bank, command.row, command.data, now)
        elif command.opcode is Opcode.RD:
            bits = module.read(command.bank, command.row, now)
            if self.faults is not None:
                bits = self.faults.filter_read(command.bank, command.row, bits)
            reads.append(
                ReadRecord(index, command.bank, command.row, command.label, bits)
            )
        elif command.opcode is Opcode.REF:
            module.refresh(command.bank, now)
        elif command.opcode is Opcode.NOP:
            pass  # NOP touches no bank; time advances in run()

    def _check_timing(
        self,
        command: Command,
        clock: _BankClock,
        timing,
        violations: List[str],
    ) -> None:
        now = self._now_ns
        eps = 1e-9
        if command.opcode is Opcode.ACT:
            if clock.open_ and clock.last_pre_ns is None:
                violations.append(f"ACT@{now:.2f}ns to open bank {command.bank}")
            if clock.last_pre_ns is not None and now - clock.last_pre_ns < (
                timing.t_rp - eps
            ):
                violations.append(
                    f"tRP violated on bank {command.bank}: "
                    f"{now - clock.last_pre_ns:.2f}ns < {timing.t_rp}ns"
                )
            clock.last_act_ns = now
            clock.last_pre_ns = None
            clock.open_ = True
        elif command.opcode is Opcode.PRE:
            if clock.last_act_ns is not None and now - clock.last_act_ns < (
                timing.t_ras - eps
            ):
                violations.append(
                    f"tRAS violated on bank {command.bank}: "
                    f"{now - clock.last_act_ns:.2f}ns < {timing.t_ras}ns"
                )
            clock.last_pre_ns = now
            clock.open_ = False
        elif command.opcode in (Opcode.WR, Opcode.RD):
            if clock.last_act_ns is None:
                violations.append(
                    f"{command.opcode.value}@{now:.2f}ns with no prior ACT"
                )
            elif now - clock.last_act_ns < timing.t_rcd - eps:
                violations.append(
                    f"tRCD violated on bank {command.bank}: "
                    f"{now - clock.last_act_ns:.2f}ns < {timing.t_rcd}ns"
                )
