"""Program executor: replays a test program against a module.

The executor owns the bus clock: commands issue at cycle boundaries and
the absolute time of each command is handed to the device model, which
decides — exactly like silicon would — whether the spacing constitutes
nominal operation, a FracDRAM-style interrupted activation, or the
multi-row activation glitch.

``strict=True`` turns timing violations into
:class:`~repro.errors.TimingViolationError` instead, which is how
*functional* (non-characterization) users of the library protect
themselves from accidentally issuing undefined-behavior sequences.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import (
    CommandSequenceError,
    ProgramVerificationError,
    TimingViolationError,
)
from ..dram.batch import BatchedModule
from ..dram.module import Module
# diagnostics has no repro-internal imports, so this cannot cycle; the
# verifier itself is imported lazily in _preflight.
from ..staticcheck.diagnostics import Diagnostic, format_diagnostics
from .commands import Command, Opcode
from .program import TestProgram

__all__ = ["ExecutionResult", "ReadRecord", "ProgramExecutor", "VERIFY_MODES"]

#: Pre-flight verification modes for :class:`ProgramExecutor`.
VERIFY_MODES = ("error", "warn", "off")

_logger = logging.getLogger("repro.staticcheck")


@dataclass(frozen=True)
class ReadRecord:
    """One RD command's returned data."""

    command_index: int
    bank: int
    row: int
    label: str
    bits: np.ndarray


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one program execution."""

    reads: List[ReadRecord]
    duration_ns: float
    violations: List[str]
    #: Static pre-flight findings (empty when ``verify="off"``).
    diagnostics: Tuple[Diagnostic, ...] = field(default=(), compare=False)

    def read_by_label(self, label: str) -> np.ndarray:
        for record in self.reads:
            if record.label == label:
                return record.bits
        raise KeyError(f"no RD with label {label!r}")


class _BankClock:
    """Per-bank timestamps for timing-rule checking."""

    __slots__ = ("last_act_ns", "last_pre_ns", "open_")

    def __init__(self) -> None:
        self.last_act_ns: Optional[float] = None
        self.last_pre_ns: Optional[float] = None
        self.open_ = False


class ProgramExecutor:
    """Replays :class:`TestProgram` instances against a :class:`Module`.

    ``verify`` selects the static pre-flight gate (``"warn"`` by
    default): every program is checked by
    :class:`repro.staticcheck.verifier.ProgramVerifier` before any
    command reaches the device.  ``"error"`` refuses programs with
    error-severity findings (:class:`ProgramVerificationError`, device
    state untouched); ``"warn"`` logs findings once per rule and attaches
    them to the :class:`ExecutionResult`; ``"off"`` skips the check.
    ``suppress_rules`` drops specific rule ids — the escape hatch for
    deliberately-broken fault-injection programs.

    ``verify_semantics`` adds the second, deeper gate (``"off"`` by
    default): the :class:`repro.staticcheck.semantics.SemanticAnalyzer`
    mirrors every program over symbolic cell values and reports the
    SEM3xx family (semantics mismatch, dead compute, infeasible margin,
    ...).  Backdoor fills (:meth:`~repro.bender.host.DramBenderHost.
    fill_row`) are forwarded to the analyzer via
    :meth:`note_backdoor_write` so real characterization flows prove
    clean; :meth:`semantic_session` exposes the symbolic state for
    operand binding and value inspection.
    """

    def __init__(
        self,
        module: Module,
        strict: bool = False,
        fault_injector=None,
        verify: str = "warn",
        verify_semantics: str = "off",
        suppress_rules: Iterable[str] = (),
    ):
        if verify not in VERIFY_MODES:
            raise ValueError(
                f"verify must be one of {VERIFY_MODES}, got {verify!r}"
            )
        if verify_semantics not in VERIFY_MODES:
            raise ValueError(
                f"verify_semantics must be one of {VERIFY_MODES}, "
                f"got {verify_semantics!r}"
            )
        self.module = module
        self.strict = strict
        self.faults = fault_injector
        self.verify = verify
        self.verify_semantics = verify_semantics
        self.suppress_rules = tuple(suppress_rules)
        self._now_ns = 0.0
        self._verifier = None
        self._verify_state = None
        self._semantics = None
        self._semantic_state = None
        self._logged_rules: set = set()

    @property
    def now_ns(self) -> float:
        """Absolute bus time; monotone across program executions."""
        return self._now_ns

    def _preflight(self, program: TestProgram) -> Tuple[Diagnostic, ...]:
        """Statically verify ``program`` against the session state.

        The verifier runs on a *clone* of the session state and commits
        only when the program is accepted, so a refused program leaves
        both device and verifier state untouched.
        """
        if self.verify == "off":
            return ()
        if self._verifier is None:
            from ..staticcheck.verifier import ProgramVerifier

            self._verifier = ProgramVerifier.for_module(
                self.module, suppress=self.suppress_rules
            )
            self._verify_state = self._verifier.new_session()
        trial_state = self._verify_state.clone()
        report = self._verifier.verify_program(program, state=trial_state)
        if self.verify == "error" and report.errors:
            raise ProgramVerificationError(
                f"static verification refused program "
                f"{program.name or '<anonymous>'}:\n"
                + format_diagnostics(report.errors),
                diagnostics=report.diagnostics,
            )
        self._verify_state = trial_state
        for diag in report.diagnostics:
            if diag.rule not in self._logged_rules:
                self._logged_rules.add(diag.rule)
                _logger.warning("%s", diag.format())
        return report.diagnostics

    def _ensure_semantics(self):
        if self._semantics is None:
            from ..staticcheck.semantics import SemanticAnalyzer

            self._semantics = SemanticAnalyzer.for_module(
                self.module, suppress=self.suppress_rules
            )
            self._semantic_state = self._semantics.new_session()
        return self._semantics

    def semantic_session(self):
        """The live :class:`~repro.staticcheck.semantics.SemanticSession`.

        Use it to ``bind`` operand rows to named variables before a
        sweep, or to inspect what function a row holds after a program.
        Creates the analyzer on first use, so it works even before the
        first program runs (e.g. to bind operands up front).
        """
        self._ensure_semantics()
        return self._semantic_state

    def note_backdoor_write(
        self, bank: int, row: int, bits=None, voltages=None
    ) -> None:
        """Record a backdoor fill for the semantic gate.

        Backdoor fills bypass the command stream the analyzer watches;
        without this hook every operand row of a real flow would be
        symbolically unknown (SEM307).  No-op when ``verify_semantics``
        is ``"off"``.
        """
        if self.verify_semantics == "off":
            return
        analyzer = self._ensure_semantics()
        analyzer.note_backdoor_write(
            self._semantic_state, bank, row, bits=bits, voltages=voltages
        )

    def _preflight_semantics(self, program: TestProgram) -> Tuple[Diagnostic, ...]:
        """Symbolically interpret ``program`` against the session state.

        Clone-and-commit like :meth:`_preflight`: a refused program
        leaves the symbolic state (and the device) untouched.
        """
        if self.verify_semantics == "off":
            return ()
        analyzer = self._ensure_semantics()
        trial = self._semantic_state.clone()
        report = analyzer.analyze_program(program, session=trial)
        if self.verify_semantics == "error" and report.errors:
            raise ProgramVerificationError(
                f"semantic verification refused program "
                f"{program.name or '<anonymous>'}:\n"
                + format_diagnostics(report.errors),
                diagnostics=report.diagnostics,
            )
        self._semantic_state = trial
        for diag in report.diagnostics:
            if diag.rule not in self._logged_rules:
                self._logged_rules.add(diag.rule)
                _logger.warning("%s", diag.format())
        return report.diagnostics

    def run(self, program: TestProgram) -> ExecutionResult:
        if self.faults is not None:
            # A host command timeout aborts the program before any
            # command reaches the module, exactly like the real bench
            # dropping a DMA transaction: the device state is untouched
            # and the whole program is safe to re-issue.
            self.faults.on_program(program.name)
        diagnostics = self._preflight(program) + self._preflight_semantics(
            program
        )
        timing = program.timing
        clocks: Dict[int, _BankClock] = {}
        reads: List[ReadRecord] = []
        violations: List[str] = []
        start_ns = self._now_ns

        for index, command in enumerate(program):
            clock = clocks.setdefault(command.bank, _BankClock())
            self._check_timing(command, clock, timing, violations)
            self._dispatch(command, index, reads)
            self._now_ns += command.wait_cycles * timing.t_ck

        # Give every touched bank a chance to complete a trailing PRE.
        settle_at = self._now_ns + timing.t_rc
        for bank in clocks:
            self.module.settle(bank, settle_at)
        self._now_ns = settle_at

        if self.strict and violations:
            raise TimingViolationError(
                f"program {program.name or '<anonymous>'} violated timings: "
                + "; ".join(violations)
            )
        return ExecutionResult(
            reads=reads,
            duration_ns=self._now_ns - start_ns,
            violations=violations,
            diagnostics=diagnostics,
        )

    def run_batched(
        self, program: TestProgram, batch: BatchedModule
    ) -> ExecutionResult:
        """Replay ``program`` over a whole trial block in one pass.

        ``batch`` is the block's :class:`~repro.dram.batch.BatchedModule`
        (see :meth:`~repro.bender.host.DramBenderHost.batched_trials`).
        Every command must target the block's bank.  Semantics relative
        to ``n_trials`` serial :meth:`run` calls:

        * Device state and RD data are bit-identical per trial (the
          per-trial noise substreams guarantee it).
        * Fault injection stays per-trial: ``on_program`` rolls once per
          trial index before any command executes, and RD data is
          filtered per trial.
        * The static pre-flight runs once per program instead of once
          per trial — the verifier's findings are a pure function of
          the program, so per-trial repetition only duplicated them.
        * ``now_ns`` advances by ``n_trials`` single-pass durations, and
          timing violations are recorded once instead of per trial.
        """
        if self.faults is not None:
            # Per-trial timeout rolls, in trial order: the same (trial,
            # occurrence) pairs a serial loop would roll, so the same
            # trial times out in either execution mode.
            for trial in batch.trial_indices:
                self.faults.set_trial(trial)
                self.faults.on_program(program.name)
        diagnostics = self._preflight(program) + self._preflight_semantics(
            program
        )
        timing = program.timing
        clocks: Dict[int, _BankClock] = {}
        reads: List[ReadRecord] = []
        violations: List[str] = []
        start_ns = self._now_ns

        for index, command in enumerate(program):
            if command.opcode is not Opcode.NOP and command.bank != batch.bank_index:
                raise CommandSequenceError(
                    f"batched execution is bound to bank {batch.bank_index}; "
                    f"command {index} targets bank {command.bank}"
                )
            clock = clocks.setdefault(command.bank, _BankClock())
            self._check_timing(command, clock, timing, violations)
            self._dispatch_batched(command, index, reads, batch)
            self._now_ns += command.wait_cycles * timing.t_ck

        settle_at = self._now_ns + timing.t_rc
        batch.settle(settle_at)
        self._now_ns = settle_at

        # The bus replayed the program once per trial: advance the clock
        # accordingly so interleaved serial/batched sessions stay
        # monotone and account the same total bus time.
        single_pass_ns = self._now_ns - start_ns
        self._now_ns = start_ns + batch.n_trials * single_pass_ns

        if self.strict and violations:
            raise TimingViolationError(
                f"program {program.name or '<anonymous>'} violated timings: "
                + "; ".join(violations)
            )
        return ExecutionResult(
            reads=reads,
            duration_ns=self._now_ns - start_ns,
            violations=violations,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------

    def _dispatch_batched(
        self,
        command: Command,
        index: int,
        reads: List[ReadRecord],
        batch: BatchedModule,
    ) -> None:
        now = self._now_ns
        if command.opcode is Opcode.ACT:
            batch.activate(command.row, now)
        elif command.opcode is Opcode.PRE:
            batch.precharge(now)
        elif command.opcode is Opcode.WR:
            batch.write(command.row, command.data, now)
        elif command.opcode is Opcode.RD:
            bits = batch.read(command.row, now)
            if self.faults is not None:
                filtered = bits.copy()
                for i, trial in enumerate(batch.trial_indices):
                    self.faults.set_trial(trial)
                    filtered[i] = self.faults.filter_read(
                        command.bank, command.row, bits[i]
                    )
                bits = filtered
            reads.append(
                ReadRecord(index, command.bank, command.row, command.label, bits)
            )
        elif command.opcode is Opcode.REF:
            batch.refresh(now)
        elif command.opcode is Opcode.NOP:
            pass

    def _dispatch(
        self, command: Command, index: int, reads: List[ReadRecord]
    ) -> None:
        module = self.module
        now = self._now_ns
        if command.opcode is Opcode.ACT:
            module.activate(command.bank, command.row, now)
        elif command.opcode is Opcode.PRE:
            module.precharge(command.bank, now)
        elif command.opcode is Opcode.WR:
            module.write(command.bank, command.row, command.data, now)
        elif command.opcode is Opcode.RD:
            bits = module.read(command.bank, command.row, now)
            if self.faults is not None:
                bits = self.faults.filter_read(command.bank, command.row, bits)
            reads.append(
                ReadRecord(index, command.bank, command.row, command.label, bits)
            )
        elif command.opcode is Opcode.REF:
            module.refresh(command.bank, now)
        elif command.opcode is Opcode.NOP:
            pass  # NOP touches no bank; time advances in run()

    def _check_timing(
        self,
        command: Command,
        clock: _BankClock,
        timing,
        violations: List[str],
    ) -> None:
        now = self._now_ns
        eps = 1e-9
        if command.opcode is Opcode.ACT:
            if clock.open_ and clock.last_pre_ns is None:
                violations.append(f"ACT@{now:.2f}ns to open bank {command.bank}")
            if clock.last_pre_ns is not None and now - clock.last_pre_ns < (
                timing.t_rp - eps
            ):
                violations.append(
                    f"tRP violated on bank {command.bank}: "
                    f"{now - clock.last_pre_ns:.2f}ns < {timing.t_rp}ns"
                )
            clock.last_act_ns = now
            clock.last_pre_ns = None
            clock.open_ = True
        elif command.opcode is Opcode.PRE:
            if clock.last_act_ns is not None and now - clock.last_act_ns < (
                timing.t_ras - eps
            ):
                violations.append(
                    f"tRAS violated on bank {command.bank}: "
                    f"{now - clock.last_act_ns:.2f}ns < {timing.t_ras}ns"
                )
            clock.last_pre_ns = now
            clock.open_ = False
        elif command.opcode in (Opcode.WR, Opcode.RD):
            if clock.last_act_ns is None:
                violations.append(
                    f"{command.opcode.value}@{now:.2f}ns with no prior ACT"
                )
            elif now - clock.last_act_ns < timing.t_rcd - eps:
                violations.append(
                    f"tRCD violated on bank {command.bank}: "
                    f"{now - clock.last_act_ns:.2f}ns < {timing.t_rcd}ns"
                )
