"""Activation-pattern scanning — the §4.2/§4.3 methodology (Fig. 5).

For a candidate ``(R_F, R_L)`` pair in neighboring subarrays, the probe:

1. initializes the surrounding rows with a background pattern,
2. issues ``ACT R_F → PRE → ACT R_L`` with violated tRP,
3. overdrives the open rows with a WR of a *different* probe pattern
   (which lands as-is in R_L's subarray and inverted — on the shared
   columns — in R_F's subarray),
4. precharges and reads the rows back with nominal timing.

Rows holding the probe pattern in R_L's subarray were simultaneously
activated; rows holding the inverted pattern on the shared columns in
R_F's subarray likewise.  Counting both sides classifies the pair as an
``N_RF:N_RL`` activation (N:N, N:2N, or no engagement), and the fraction
of pairs per class is the paper's *coverage* metric.

Readout is restricted to the 32-row aligned windows around both
addresses: the decoder glitch never activates rows outside the aligned
2N-block (N <= 16), so the restriction is lossless and keeps a scan of
thousands of pairs fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bender.host import DramBenderHost
from ..core.layout import module_shared_columns
from ..dram.timing import ReducedTiming
from ..errors import AddressError

__all__ = ["ObservedPattern", "ActivationScanner", "coverage_from_counts"]

_WINDOW = 32


@dataclass(frozen=True)
class ObservedPattern:
    """Classification of one probed address pair."""

    n_first: int
    n_last: int

    @property
    def label(self) -> str:
        return f"{self.n_first}:{self.n_last}"

    @property
    def engaged(self) -> bool:
        return self.n_first > 0


class ActivationScanner:
    """Probes and classifies multi-row activation patterns of a bank."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        subarray_first: int,
        subarray_last: int,
        match_threshold: float = 0.85,
        seed: int = 0,
    ):
        if abs(subarray_first - subarray_last) != 1:
            raise AddressError(
                f"subarrays {subarray_first} and {subarray_last} must be "
                "neighbors"
            )
        self.host = host
        self.bank = bank
        self.subarray_first = subarray_first
        self.subarray_last = subarray_last
        self.match_threshold = match_threshold
        self._rng = np.random.default_rng(seed)
        self.shared_columns = module_shared_columns(
            host.module, subarray_first, subarray_last
        )

    # ------------------------------------------------------------------

    def _window_rows(self, subarray: int, local_row: int) -> List[int]:
        geometry = self.host.module.config.geometry
        start = (local_row // _WINDOW) * _WINDOW
        end = min(start + _WINDOW, geometry.rows_per_subarray)
        return [geometry.bank_row(subarray, r) for r in range(start, end)]

    def probe(self, row_first: int, row_last: int) -> ObservedPattern:
        """Classify one (bank-level) address pair."""
        host, bank = self.host, self.bank
        geometry = host.module.config.geometry
        local_first = geometry.local_row(row_first)
        local_last = geometry.local_row(row_last)
        window_first = self._window_rows(self.subarray_first, local_first)
        window_last = self._window_rows(self.subarray_last, local_last)

        # Background and probe patterns must be independent: activated
        # first-side rows are detected by holding the *inverse* of the
        # probe on the shared columns, and with a complementary
        # background every idle row would spuriously match.
        background = self._rng.integers(0, 2, host.module.row_bits, dtype=np.uint8)
        probe_pattern = self._rng.integers(0, 2, host.module.row_bits, dtype=np.uint8)
        for row in window_first + window_last:
            host.fill_row(bank, row, background)

        # ACT R_F -> (tRAS) -> PRE -> (violated tRP) -> ACT R_L, then —
        # while the multi-row set is still open — overdrive it with the
        # probe pattern and close (§4.2 step 3).
        timing = host.timing
        reduced = ReducedTiming.for_not_op(timing)
        program = (
            host.new_program("activation-probe")
            .act(bank, row_first, wait_cycles=reduced.first_act_cycles)
            .pre(bank, wait_cycles=reduced.pre_to_act_cycles)
            .act(bank, row_last, wait_ns=timing.t_ras)
            .wr(bank, row_last, probe_pattern, wait_ns=timing.t_wr)
            .pre(bank, wait_ns=timing.t_rp)
        )
        host.run(program)

        shared = self.shared_columns
        inverted = probe_pattern[shared] ^ 1
        n_last = 0
        for row in window_last:
            bits = host.peek_row(bank, row)
            if np.mean(bits == probe_pattern) >= self.match_threshold:
                n_last += 1
        n_first = 0
        for row in window_first:
            bits = host.peek_row(bank, row)
            if np.mean(bits[shared] == inverted) >= self.match_threshold:
                n_first += 1
        return ObservedPattern(n_first=n_first, n_last=n_last)

    def scan(
        self, sample_pairs: int, max_local_row: Optional[int] = None
    ) -> Dict[str, int]:
        """Probe ``sample_pairs`` random pairs; returns label -> count.

        The paper tests *every* combination (409,600 per subarray pair);
        a uniform sample estimates the same coverage distribution.
        """
        geometry = self.host.module.config.geometry
        rows = geometry.rows_per_subarray
        if max_local_row is not None:
            rows = min(rows, max_local_row)
        counts: Dict[str, int] = {}
        for _ in range(sample_pairs):
            local_first = int(self._rng.integers(rows))
            local_last = int(self._rng.integers(rows))
            row_first = geometry.bank_row(self.subarray_first, local_first)
            row_last = geometry.bank_row(self.subarray_last, local_last)
            observed = self.probe(row_first, row_last)
            label = observed.label if observed.engaged else "none"
            counts[label] = counts.get(label, 0) + 1
        return counts


def coverage_from_counts(counts: Dict[str, int]) -> Dict[str, float]:
    """Normalize probe counts to the paper's coverage metric."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {label: count / total for label, count in counts.items()}
