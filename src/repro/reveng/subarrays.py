"""Subarray-boundary reverse engineering via RowClone probing (§4.2).

RowClone only copies between rows that share bitlines, i.e. rows of the
*same* subarray.  Probing "does a RowClone from row A to row B replicate
A's pattern?" therefore reveals subarray membership, and a sweep over a
bank recovers the subarray boundaries — the prerequisite for every
neighboring-subarray experiment in the paper.

The mapper walks the bank with a coarse stride and refines each detected
boundary by binary search, since bank row addresses within one subarray
are contiguous; a full pairwise sweep (what the paper brute-forces on
silicon) is available as :meth:`SubarrayMapper.exhaustive_groups` for
small banks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..bender.host import DramBenderHost
from ..core.rowclone import rowclone_match_fraction
from ..errors import ReverseEngineeringError

__all__ = ["SubarrayMap", "SubarrayMapper"]


@dataclass(frozen=True)
class SubarrayMap:
    """Recovered subarray layout of one bank."""

    #: Half-open bank-row ranges, one per discovered subarray, in order.
    ranges: Tuple[Tuple[int, int], ...]

    @property
    def count(self) -> int:
        return len(self.ranges)

    def subarray_of(self, row: int) -> int:
        for index, (start, end) in enumerate(self.ranges):
            if start <= row < end:
                return index
        raise ReverseEngineeringError(f"row {row} not covered by the map")

    def rows_of(self, subarray: int) -> range:
        start, end = self.ranges[subarray]
        return range(start, end)


class SubarrayMapper:
    """Discovers subarray boundaries of a bank with RowClone probes."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        match_threshold: float = 0.9,
        seed: int = 0,
    ):
        self.host = host
        self.bank = bank
        self.match_threshold = match_threshold
        self._rng = np.random.default_rng(seed)
        self.probe_count = 0

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """One probe: do ``row_a`` and ``row_b`` share a subarray?"""
        pattern = self._rng.integers(0, 2, self.host.module.row_bits, dtype=np.uint8)
        background = 1 - pattern
        self.probe_count += 1
        fraction = rowclone_match_fraction(
            self.host, self.bank, row_a, row_b, pattern, background
        )
        return fraction >= self.match_threshold

    def map_bank(self, coarse_step: int = 32) -> SubarrayMap:
        """Recover all subarray boundaries of the bank.

        Strategy: anchor at the first row of the current subarray, stride
        forward until a probe fails, then binary-search the exact
        boundary in the last stride window.
        """
        if coarse_step < 1:
            raise ValueError(f"coarse_step must be >= 1, got {coarse_step}")
        total_rows = (
            self.host.module.config.geometry.rows_per_bank
        )
        ranges: List[Tuple[int, int]] = []
        start = 0
        while start < total_rows:
            end = self._find_boundary(start, total_rows, coarse_step)
            ranges.append((start, end))
            start = end
        return SubarrayMap(ranges=tuple(ranges))

    def _find_boundary(self, anchor: int, total_rows: int, step: int) -> int:
        """First row after ``anchor`` that is *not* in ``anchor``'s subarray."""
        # Coarse scan.
        inside = anchor
        probe = anchor + step
        while probe < total_rows and self.same_subarray(anchor, probe):
            inside = probe
            probe += step
        if probe >= total_rows:
            probe = total_rows
            if inside < total_rows - 1 and self.same_subarray(anchor, total_rows - 1):
                return total_rows
            if inside == total_rows - 1:
                return total_rows
        # Binary search in (inside, probe].
        low, high = inside, min(probe, total_rows - 1)
        if high == total_rows - 1 and self.same_subarray(anchor, high):
            return total_rows
        while high - low > 1:
            mid = (low + high) // 2
            if self.same_subarray(anchor, mid):
                low = mid
            else:
                high = mid
        return high

    def exhaustive_groups(self, rows: List[int]) -> List[List[int]]:
        """Group an explicit row list by pairwise probing (test helper).

        Quadratic in the worst case; matches the paper's brute-force
        methodology on a small row sample.
        """
        groups: List[List[int]] = []
        for row in rows:
            for group in groups:
                if self.same_subarray(group[0], row):
                    group.append(row)
                    break
            else:
                groups.append([row])
        return groups
