"""Reverse-engineering passes over chips under test (§4.2, §5.2).

* :mod:`repro.reveng.subarrays` — subarray boundaries via RowClone
* :mod:`repro.reveng.roworder` — physical row order via RowHammer
* :mod:`repro.reveng.activation` — multi-row activation pattern coverage
"""

from .activation import ActivationScanner, ObservedPattern, coverage_from_counts
from .roworder import RowOrderMapper, RowOrderResult
from .subarrays import SubarrayMap, SubarrayMapper

__all__ = [
    "ActivationScanner",
    "ObservedPattern",
    "RowOrderMapper",
    "RowOrderResult",
    "SubarrayMap",
    "SubarrayMapper",
    "coverage_from_counts",
]
