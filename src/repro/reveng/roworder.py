"""Physical row order recovery via RowHammer probing (§5.2).

DRAM vendors scramble the logical-to-physical row mapping, but
single-sided RowHammer leaks it: hammering a row flips bits in its
*physically adjacent* rows.  Rows that produce bitflip victims on only
one side are physically adjacent to a sense-amplifier stripe (the edge
of the subarray).  Collecting each row's victim set yields an adjacency
path whose traversal is the physical order — which the paper needs to
classify rows into Close/Middle/Far regions for the design-induced-
variation analysis (Figs. 9 and 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import ReverseEngineeringError

__all__ = ["RowOrderResult", "RowOrderMapper"]


@dataclass(frozen=True)
class RowOrderResult:
    """Recovered physical layout of one subarray."""

    #: Logical local rows in physical order (index 0 = one stripe edge).
    physical_order: Tuple[int, ...]
    #: The two rows physically adjacent to the sense-amplifier stripes.
    edge_rows: Tuple[int, int]

    def position_of(self, row: int) -> int:
        return self.physical_order.index(row)


class RowOrderMapper:
    """Recovers a subarray's physical row order with hammer probes."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        subarray: int,
        hammer_count: int = 60_000,
        min_flips: int = 2,
    ):
        self.host = host
        self.bank = bank
        self.subarray = subarray
        self.hammer_count = hammer_count
        self.min_flips = min_flips
        geometry = host.module.config.geometry
        self._base = subarray * geometry.rows_per_subarray
        self._rows = geometry.rows_per_subarray

    def _all_rows(self) -> range:
        return range(self._base, self._base + self._rows)

    def victims_of(self, row: int) -> List[int]:
        """Rows showing bitflips after single-sided hammering of ``row``.

        The subarray is initialized to all-1s; a victim is any row that
        afterwards shows at least ``min_flips`` zero bits.
        """
        ones = np.ones(self.host.module.row_bits, dtype=np.uint8)
        for r in self._all_rows():
            self.host.fill_row(self.bank, r, ones)
        self.host.hammer_row(self.bank, row, self.hammer_count)
        victims = []
        for r in self._all_rows():
            if r == row:
                continue
            flips = int(np.sum(self.host.peek_row(self.bank, r) == 0))
            if flips >= self.min_flips:
                victims.append(r)
        return victims

    def adjacency(self) -> Dict[int, List[int]]:
        """Victim sets for every row of the subarray."""
        return {row: self.victims_of(row) for row in self._all_rows()}

    def recover_order(self) -> RowOrderResult:
        """Traverse the hammer-adjacency path from one edge to the other."""
        adjacency = self.adjacency()
        edges = [row for row, victims in adjacency.items() if len(victims) == 1]
        if len(edges) != 2:
            raise ReverseEngineeringError(
                f"expected exactly 2 edge rows (one victim each), found "
                f"{len(edges)}; raise hammer_count or lower min_flips"
            )
        for row, victims in adjacency.items():
            if not 1 <= len(victims) <= 2:
                raise ReverseEngineeringError(
                    f"row {row} has {len(victims)} hammer victims; "
                    "adjacency evidence is inconsistent"
                )

        order = [min(edges)]
        previous = None
        while True:
            candidates = [v for v in adjacency[order[-1]] if v != previous]
            if not candidates:
                break
            previous = order[-1]
            order.append(candidates[0])
        if len(order) != self._rows:
            raise ReverseEngineeringError(
                f"adjacency walk covered {len(order)}/{self._rows} rows; "
                "the victim graph is not a single path"
            )
        return RowOrderResult(
            physical_order=tuple(order), edge_rows=(order[0], order[-1])
        )
