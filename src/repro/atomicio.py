"""Atomic file writes for results, reports, and checkpoints.

Long characterization campaigns die at arbitrary points — a SIGKILL mid
``json.dump`` must never leave a truncated artifact that a later
``--resume`` (or a human) trips over.  Every writer in the library goes
through :func:`atomic_write_text`: the content lands in a temporary file
in the destination directory, is fsynced, and is moved into place with
:func:`os.replace`, which POSIX guarantees to be atomic.  Readers see
either the old complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str, content: str) -> None:
    """Write ``content`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave the temp file behind: a crashed write must look
        # exactly like no write at all.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: object, indent: Optional[int] = None) -> None:
    """Serialize ``payload`` to JSON and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent))
