"""Statistics over per-cell success rates.

The paper reports results as box-and-whiskers distributions over DRAM
cells (footnote 5: box = Q1..Q3, whiskers = min/max) plus the *average
success rate*, the mean over all tested cells.  :class:`BoxStats`
carries exactly those numbers; :class:`WeightedSamples` aggregates
per-cell rate arrays across sweep targets with population re-weighting
(the simulation subsamples module instances; each spec's samples count
with its real Table-1 module multiplicity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["BoxStats", "WeightedSamples"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, as in the paper's box plots."""

    count: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "BoxStats":
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            minimum=float(values.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(values.max()),
        )

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def format_percent(self) -> str:
        """E.g. ``mean 94.9%  [min 12.0 | Q1 93.0 | med 97.0 | Q3 99.5 | max 100.0]``."""
        return (
            f"mean {self.mean * 100:5.1f}%  "
            f"[min {self.minimum * 100:5.1f} | Q1 {self.q1 * 100:5.1f} | "
            f"med {self.median * 100:5.1f} | Q3 {self.q3 * 100:5.1f} | "
            f"max {self.maximum * 100:5.1f}]"
        )


class WeightedSamples:
    """Per-cell rate samples with integer population weights."""

    def __init__(self) -> None:
        self._chunks: List[Tuple[np.ndarray, int]] = []

    def add(self, values: np.ndarray, weight: int = 1) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        if values.size:
            self._chunks.append((values, int(weight)))

    def extend(self, other: "WeightedSamples") -> None:
        self._chunks.extend(other._chunks)

    @property
    def empty(self) -> bool:
        return not self._chunks

    @property
    def raw_count(self) -> int:
        """Number of distinct cell samples, ignoring population weights."""
        return sum(values.size for values, _weight in self._chunks)

    def values(self) -> np.ndarray:
        """All samples, each repeated by its weight."""
        if not self._chunks:
            return np.empty(0)
        return np.concatenate(
            [np.repeat(values, weight) for values, weight in self._chunks]
        )

    def box(self) -> BoxStats:
        return BoxStats.from_values(self.values())

    @property
    def mean(self) -> float:
        total = sum(values.sum() * weight for values, weight in self._chunks)
        count = sum(values.size * weight for values, weight in self._chunks)
        if count == 0:
            raise ValueError("no samples collected")
        return float(total / count)
