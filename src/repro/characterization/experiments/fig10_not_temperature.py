"""Fig. 10 — NOT success rate across chip temperature (Obs. 7).

Per footnote 8, only cells with >90% success at the 50 degC baseline are
tracked, then re-measured at 60/70/80/95 degC.  The paper's headline: at
most 0.20% mean variation for the most sensitive configuration (32
destination rows).
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig10"
TITLE = "NOT success rate at different DRAM chip temperatures"

DESTINATION_COUNTS = (1, 2, 4, 8, 16, 32)
TEMPERATURES_C = (50.0, 60.0, 70.0, 80.0, 95.0)


def _label_fn(target, variant, temp):
    return f"{variant.n_destination} dst @{temp:.0f}C"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [NotVariant(n) for n in DESTINATION_COUNTS]
    groups = not_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        manufacturers=[Manufacturer.SK_HYNIX],
        temperatures=TEMPERATURES_C,
        good_cells_only=True,
        jobs=jobs,
        resilience=resilience,
    )

    # At bench scale, high destination-row counts leave only a handful of
    # cells above the 90% filter, so their mean bounces with sampling
    # noise; judge the temperature effect only on well-populated groups.
    min_cells = 50
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    worst_span = 0.0
    skipped = []
    for n in DESTINATION_COUNTS:
        means = []
        populated = True
        for temp in TEMPERATURES_C:
            label = f"{n} dst @{temp:.0f}C"
            samples = groups.get(label)
            if samples is None or samples.empty:
                continue
            result.add_group(label, samples.box())
            means.append(samples.mean)
            populated = populated and samples.raw_count >= min_cells
        if len(means) >= 2 and populated:
            worst_span = max(worst_span, max(means) - min(means))
        elif means:
            skipped.append(n)
    result.extras["max_mean_variation"] = worst_span
    result.notes.append(
        f"max mean variation across 50..95C: {worst_span * 100:.2f}% "
        "(paper: 0.20% for 32 destination rows, Observation 7)"
    )
    if skipped:
        result.notes.append(
            f"destination counts {skipped} had <{min_cells} qualifying "
            "cells at this scale and were excluded from the variation"
        )
    return result
