"""Fig. 21 — logic-op success vs. SK Hynix chip density and die revision
(Obs. 19).

Paper anchors: the 2-input AND loses 27.47% mean success from 4Gb A-die
to 4Gb M-die, but *gains* 2.11% from 8Gb A-die to 8Gb M-die.  The 8Gb
M-die module only reaches 8-input operations (it activates at most 8:8,
footnote 12) — visible as a missing n=16 group.
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig21"
TITLE = "AND/NAND/OR/NOR success rate by chip density and die revision"

INPUT_COUNTS = (2, 4, 8, 16)
DIES = ("4Gb A", "4Gb M", "8Gb A", "8Gb M")
OPS = ("and", "nand", "or", "nor")


def _die_of(target) -> str:
    chip = target.spec.chip
    return f"{chip.density_gb}Gb {chip.die_revision}"


def _label_fn(target, variant, temp, op_name):
    return f"{op_name.upper()} n={variant.n_inputs} {_die_of(target)}"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        LogicVariant(base_op, n) for base_op in ("and", "or") for n in INPUT_COUNTS
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for op_name in OPS:
        for die in DIES:
            for n in INPUT_COUNTS:
                label = f"{op_name.upper()} n={n} {die}"
                samples = groups.get(label)
                if samples is not None and not samples.empty:
                    result.add_group(label, samples.box())

    def delta(a: str, b: str) -> float:
        return result.groups[a].mean - result.groups[b].mean

    try:
        result.notes.append(
            f"2-input AND: 4Gb M minus 4Gb A = "
            f"{delta('AND n=2 4Gb M', 'AND n=2 4Gb A') * 100:+.2f}% "
            "(paper: -27.47%)"
        )
    except KeyError:
        pass
    try:
        result.notes.append(
            f"2-input AND: 8Gb M minus 8Gb A = "
            f"{delta('AND n=2 8Gb M', 'AND n=2 8Gb A') * 100:+.2f}% "
            "(paper: +2.11%)"
        )
    except KeyError:
        pass
    if not any("n=16 8Gb M" in label for label in result.groups):
        result.notes.append(
            "8Gb M-die contributes no 16-input groups (8:8 activation cap, "
            "footnote 12)"
        )
    return result
