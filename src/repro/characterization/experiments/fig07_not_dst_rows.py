"""Fig. 7 — NOT success rate vs. number of destination rows (Obs. 3-4).

Destination-row counts 1..16 use N:N activation; 32 destination rows
require the 16:32 (N:2N) pattern.  Samsung chips contribute only the
one-destination-row point (sequential activation, §5.3); Micron chips
contribute nothing.
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig7"
TITLE = "NOT success rate vs. number of destination rows"

DESTINATION_COUNTS = (1, 2, 4, 8, 16, 32)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [NotVariant(n) for n in DESTINATION_COUNTS]
    groups = not_sweep(
        scale,
        seed,
        variants,
        manufacturers=[Manufacturer.SK_HYNIX, Manufacturer.SAMSUNG],
        jobs=jobs,
        resilience=resilience,
    )
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for n in DESTINATION_COUNTS:
        label = f"{n} dst"
        if label in groups and not groups[label].empty:
            result.add_group(label, groups[label].box())
    result.notes.append(
        "paper anchors: 98.37% mean at 1 destination row, 7.95% at 32 "
        "(Observation 4); at least one 100%-success cell per count "
        "(Observation 3)"
    )
    return result
