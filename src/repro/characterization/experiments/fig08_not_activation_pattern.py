"""Fig. 8 — NOT success rate vs. N_RF:N_RL activation type (Obs. 5).

N:2N patterns drive fewer total rows than N:N patterns with the same
destination count (e.g. 8+16 vs. 16+16 rows for 16 destinations), so
N:2N achieves higher success — the paper measures a 9.41% mean gap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...dram.config import Manufacturer
from ...dram.decoder import ActivationKind
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig8"
TITLE = "NOT success rate vs. N_RF:N_RL activation type"

#: (n_destination_rows, kind) in the paper's x-axis order.
PATTERNS: List[Tuple[int, ActivationKind]] = [
    (1, ActivationKind.N_TO_N),
    (2, ActivationKind.N_TO_2N),
    (2, ActivationKind.N_TO_N),
    (4, ActivationKind.N_TO_2N),
    (4, ActivationKind.N_TO_N),
    (8, ActivationKind.N_TO_2N),
    (8, ActivationKind.N_TO_N),
    (16, ActivationKind.N_TO_2N),
    (16, ActivationKind.N_TO_N),
    (32, ActivationKind.N_TO_2N),
]


def _label(n_destination: int, kind: ActivationKind) -> str:
    n_first = n_destination if kind is ActivationKind.N_TO_N else n_destination // 2
    return f"{n_first}:{n_destination}"


def _label_fn(target, variant, temp):
    return _label(variant.n_destination, variant.kind)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [NotVariant(n, kind=kind) for n, kind in PATTERNS]
    groups = not_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        manufacturers=[Manufacturer.SK_HYNIX],
        jobs=jobs,
        resilience=resilience,
    )
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for n, kind in PATTERNS:
        label = _label(n, kind)
        if label in groups and not groups[label].empty:
            result.add_group(label, groups[label].box())

    # Observation 5 compares the two families at equal *destination-row*
    # counts: e.g. 16 destinations via 8:16 (24 rows driven in total)
    # versus via 16:16 (32 rows driven).
    deltas = []
    for n_destination in (2, 4, 8, 16):
        n2n_label = _label(n_destination, ActivationKind.N_TO_2N)
        nn_label = _label(n_destination, ActivationKind.N_TO_N)
        n2n = groups.get(n2n_label)
        nn = groups.get(nn_label)
        if n2n and nn and not n2n.empty and not nn.empty:
            deltas.append(n2n.mean - nn.mean)
    if deltas:
        mean_delta = sum(deltas) / len(deltas)
        result.extras["n2n_minus_nn_mean"] = mean_delta
        result.notes.append(
            f"N:2N mean - N:N mean at equal destination counts = "
            f"{mean_delta * 100:+.2f}% (paper: +9.41%, Observation 5)"
        )
    return result
