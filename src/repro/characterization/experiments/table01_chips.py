"""Table 1 — summary of the DDR4 DRAM chips tested (§3.2).

Not a measurement: renders the simulated fleet's inventory in the
paper's format and checks the population totals (256 chips / 22 modules
analyzed; 280 / 28 tested including Micron).
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ..fleet import all_specs, micron_specs, table1_specs
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale

EXPERIMENT_ID = "table1"
TITLE = "Summary of DDR4 DRAM chips tested"

_HEADER = ("Chip Mfr.", "#Modules(#Chips)", "Die Rev.", "Mfr. Date",
           "Density", "Org.", "Speed")


def format_table1() -> str:
    """The Table-1 text rendering."""
    rows = [spec.table_row() for spec in table1_specs()]
    widths = [
        max(len(_HEADER[i]), max(len(row[i]) for row in rows))
        for i in range(len(_HEADER))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(_HEADER)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
    return "\n".join(lines)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    # ``jobs``/``resilience`` accepted for a uniform entry point;
    # rendering Table 1 is not a measurement, so there is nothing to
    # parallelize or retry.
    analyzed = table1_specs()
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.extras["table"] = format_table1()
    result.extras["analyzed_modules"] = sum(s.module_count for s in analyzed)
    result.extras["analyzed_chips"] = sum(s.total_chips for s in analyzed)
    result.extras["tested_modules"] = sum(s.module_count for s in all_specs())
    result.extras["tested_chips"] = sum(s.total_chips for s in all_specs())
    result.extras["micron_modules"] = sum(s.module_count for s in micron_specs())

    by_mfr = {}
    for spec in analyzed:
        key = str(spec.chip.manufacturer)
        chips = by_mfr.setdefault(key, 0)
        by_mfr[key] = chips + spec.total_chips
    result.extras["chips_by_manufacturer"] = by_mfr

    result.notes.append(
        f"analyzed: {result.extras['analyzed_chips']} chips / "
        f"{result.extras['analyzed_modules']} modules (paper: 256 / 22)"
    )
    result.notes.append(
        f"tested incl. Micron: {result.extras['tested_chips']} chips / "
        f"{result.extras['tested_modules']} modules (paper: 280 / 28)"
    )
    return result
