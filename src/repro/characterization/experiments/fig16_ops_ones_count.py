"""Fig. 16 — AND/OR success vs. number of logic-1s in the operands
(Obs. 14).

The analog mechanism makes this the stress axis: an AND is hardest when
all (or all-but-one) inputs are 1, an OR when none (or exactly one) is —
those inputs leave the smallest voltage margin at the sense amplifier.
Paper anchors: the 16-input AND loses 52.43% mean success from zero to
fifteen logic-1s; the 16-input OR loses 53.66% from sixteen down to one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig16"
TITLE = "AND/OR success rate vs. number of logic-1s in the input operands"

CONFIGS = (("and", 4), ("and", 16), ("or", 4), ("or", 16))


def _label_fn(target, variant, temp, op_name):
    # Only the primary terminal (AND or OR itself) is plotted.
    if op_name not in ("and", "or"):
        return None
    return f"{op_name.upper()}{variant.n_inputs} k={variant.ones_count}"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants: List[LogicVariant] = []
    for base_op, n in CONFIGS:
        variants.extend(
            LogicVariant(base_op, n, mode="ones_count", ones_count=k)
            for k in range(n + 1)
        )
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        trials_override=max(20, scale.trials // 3),
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    series: Dict[str, List[float]] = {}
    for base_op, n in CONFIGS:
        means = []
        for k in range(n + 1):
            label = f"{base_op.upper()}{n} k={k}"
            samples = groups.get(label)
            if samples is None or samples.empty:
                means.append(float("nan"))
                continue
            result.add_group(label, samples.box())
            means.append(samples.mean)
        series[f"{base_op.upper()}{n}"] = means
    result.extras["series"] = series

    and16 = series.get("AND16", [])
    if len(and16) >= 16 and and16[0] == and16[0] and and16[15] == and16[15]:
        result.notes.append(
            f"16-input AND: k=0 minus k=15 = "
            f"{(and16[0] - and16[15]) * 100:+.2f}% (paper: +52.43%)"
        )
    or16 = series.get("OR16", [])
    if len(or16) >= 17 and or16[16] == or16[16] and or16[1] == or16[1]:
        result.notes.append(
            f"16-input OR: k=16 minus k=1 = "
            f"{(or16[16] - or16[1]) * 100:+.2f}% (paper: +53.66%)"
        )
    return result
