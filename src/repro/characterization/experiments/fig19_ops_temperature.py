"""Fig. 19 — logic-op success across chip temperature (Obs. 17).

Same protocol as Fig. 10 but for AND/NAND/OR/NOR.  Paper anchors: the
largest mean variation from 50 to 95 degC is 1.66% (AND), 1.65% (NAND),
1.63% (OR), 1.64% (NOR).
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig19"
TITLE = "AND/NAND/OR/NOR success rate at different DRAM chip temperatures"

INPUT_COUNTS = (2, 4, 8, 16)
TEMPERATURES_C = (50.0, 60.0, 70.0, 80.0, 95.0)
OPS = ("and", "nand", "or", "nor")


def _label_fn(target, variant, temp, op_name):
    return f"{op_name.upper()} n={variant.n_inputs} @{temp:.0f}C"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        LogicVariant(base_op, n) for base_op in ("and", "or") for n in INPUT_COUNTS
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        temperatures=TEMPERATURES_C,
        good_cells_only=True,
        trials_override=max(30, scale.trials // 2),
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    variations = {}
    for op_name in OPS:
        worst = 0.0
        for n in INPUT_COUNTS:
            means = []
            for temp in TEMPERATURES_C:
                label = f"{op_name.upper()} n={n} @{temp:.0f}C"
                samples = groups.get(label)
                if samples is None or samples.empty:
                    continue
                result.add_group(label, samples.box())
                means.append(samples.mean)
            if len(means) >= 2:
                worst = max(worst, max(means) - min(means))
        variations[op_name] = worst
        result.notes.append(
            f"{op_name.upper()}: max mean variation across 50..95C "
            f"{worst * 100:.2f}%"
        )
    result.extras["max_mean_variation"] = variations
    result.notes.append(
        "paper anchors: 1.66% (AND), 1.65% (NAND), 1.63% (OR), 1.64% "
        "(NOR) (Observation 17)"
    )
    return result
