"""One module per reproduced table/figure (see DESIGN.md §4).

:data:`REGISTRY` maps experiment ids to their ``run(scale, seed)``
entry points; :func:`run_experiment` dispatches by id.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from . import (
    capability_matrix,
    fig05_activation_coverage,
    fig07_not_dst_rows,
    fig08_not_activation_pattern,
    fig09_not_distance,
    fig10_not_temperature,
    fig11_not_speed,
    fig12_not_die,
    fig15_ops_inputs,
    fig16_ops_ones_count,
    fig17_ops_distance,
    fig18_ops_datapattern,
    fig19_ops_temperature,
    fig20_ops_speed,
    fig21_ops_die,
    frontier_reliability,
    table01_chips,
)

_MODULES = (
    table01_chips,
    capability_matrix,
    fig05_activation_coverage,
    fig07_not_dst_rows,
    fig08_not_activation_pattern,
    fig09_not_distance,
    fig10_not_temperature,
    fig11_not_speed,
    fig12_not_die,
    fig15_ops_inputs,
    fig16_ops_ones_count,
    fig17_ops_distance,
    fig18_ops_datapattern,
    fig19_ops_temperature,
    fig20_ops_speed,
    fig21_ops_die,
    frontier_reliability,
)

#: Experiment id -> run callable.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

#: Experiment id -> human-readable title.
TITLES: Dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def run_experiment(
    experiment_id: str,
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    """Run one table/figure reproduction by id (e.g. ``"fig15"``).

    ``jobs`` > 1 fans the experiment's sweeps out over a process pool;
    results are bit-identical to a serial run (see
    :mod:`repro.characterization.parallel`).  ``resilience`` configures
    fault injection, retry/quarantine, and checkpoint/resume; the
    experiment's accumulated :class:`~repro.characterization.results.\
SweepHealth` is attached to the returned result.
    """
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    if resilience is None:
        return runner(scale=scale, seed=seed, jobs=jobs)
    resilience.begin_experiment(experiment_id)
    result = runner(scale=scale, seed=seed, jobs=jobs, resilience=resilience)
    result.health = resilience.health
    return result


__all__ = ["REGISTRY", "TITLES", "run_experiment"]
