"""Fig. 18 — logic-op success for all-1s/0s vs. random operands
(Obs. 16).

Random operands make adjacent bitlines swing differently, and the
parasitic coupling between them costs a little reliability.  Paper
anchors: random data lowers mean success by 1.43% (AND), 1.39% (NAND),
1.98% (OR), 1.97% (NOR).
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig18"
TITLE = "AND/NAND/OR/NOR success rate for all-1s/0s vs. random operands"

INPUT_COUNTS = (2, 4, 8, 16)
MODES = ("all01", "random")
OPS = ("and", "nand", "or", "nor")


def _label_fn(target, variant, temp, op_name):
    return f"{op_name.upper()} n={variant.n_inputs} {variant.mode}"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        LogicVariant(base_op, n, mode=mode)
        for base_op in ("and", "or")
        for n in INPUT_COUNTS
        for mode in MODES
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    deltas = {}
    for op_name in OPS:
        per_mode = {mode: [] for mode in MODES}
        for n in INPUT_COUNTS:
            for mode in MODES:
                label = f"{op_name.upper()} n={n} {mode}"
                samples = groups.get(label)
                if samples is None or samples.empty:
                    continue
                result.add_group(label, samples.box())
                per_mode[mode].append(samples.mean)
        if per_mode["all01"] and per_mode["random"]:
            delta = sum(per_mode["all01"]) / len(per_mode["all01"]) - sum(
                per_mode["random"]
            ) / len(per_mode["random"])
            deltas[op_name] = delta
            result.notes.append(
                f"{op_name.upper()}: all-1s/0s minus random = "
                f"{delta * 100:+.2f}%"
            )
    result.extras["all01_minus_random"] = deltas
    result.notes.append(
        "paper anchors: random costs 1.43% (AND), 1.39% (NAND), 1.98% "
        "(OR), 1.97% (NOR) (Observation 16)"
    )
    return result
