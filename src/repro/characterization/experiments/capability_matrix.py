"""Per-module computational capability matrix.

The paper's extended version "provides every tested DRAM module's
computational capability"; this experiment reproduces that inventory for
the simulated fleet.  For each module type it probes, with real command
sequences:

* whether RowClone works (in-subarray copy),
* whether NOT works and the largest observed destination-row count,
* whether many-input AND/OR/NAND/NOR work and the largest fan-in,
* whether the N:2N activation family exists.

The expected outcome mirrors §7: SK Hynix modules support everything
(with per-die caps), Samsung modules only the one-destination NOT, and
Micron modules nothing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...core.rowclone import rowclone_match_fraction
from ...core.success import LogicSuccessMeasurement, NotSuccessMeasurement
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import (
    DEFAULT,
    Scale,
    find_logic_measurement,
    find_not_measurement,
    iter_targets,
)

EXPERIMENT_ID = "capability"
TITLE = "Per-module computational capability (extended-version inventory)"

#: A probed operation counts as supported above this mean success rate.
SUPPORT_THRESHOLD = 0.5


def _probe_rowclone(target, attempts: int = 3) -> bool:
    """Best-of-N RowClone probe: a single trial can lose to the rare
    per-trial engagement failure even on a fully capable chip."""
    geometry = target.module.config.geometry
    src = geometry.bank_row(target.subarray_pair[0], 3)
    dst = geometry.bank_row(target.subarray_pair[0], geometry.lwl_block_rows + 5)
    rng = np.random.default_rng(target.pair_seed("rowclone"))
    for _ in range(attempts):
        pattern = rng.integers(0, 2, target.module.row_bits, dtype=np.uint8)
        fraction = rowclone_match_fraction(
            target.infra.host, target.bank, src, dst, pattern, 1 - pattern
        )
        if fraction >= 0.9:
            return True
    return False


def _max_not_destinations(target, trials: int, batch_trials: int) -> int:
    best = 0
    for n in (1, 2, 4, 8, 16, 32):
        measurement = find_not_measurement(target, n)
        if measurement is None:
            continue
        result = measurement.run(
            trials, np.random.default_rng(n), batch_trials=batch_trials
        )
        if result.mean_rate >= SUPPORT_THRESHOLD:
            best = n
    return best

def _max_op_inputs(target, trials: int, batch_trials: int) -> int:
    best = 0
    for n in (2, 4, 8, 16):
        measurement = find_logic_measurement(target, "and", n)
        if measurement is None:
            continue
        pair = measurement.run(
            trials, np.random.default_rng(n), batch_trials=batch_trials
        )
        if pair.primary.mean_rate >= SUPPORT_THRESHOLD:
            best = n
    return best


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    # ``jobs``/``resilience`` accepted for a uniform entry point but
    # unused: one probe per module type keeps this inventory cheap
    # enough to stay serial and fault-free.
    trials = max(20, scale.trials // 3)
    rows: Dict[str, Dict[str, object]] = {}
    for target in iter_targets(scale, seed, include_micron=True):
        if target.spec.name in rows:
            continue  # one probe per module type suffices here
        chip = target.spec.chip
        rows[target.spec.name] = {
            "manufacturer": str(chip.manufacturer),
            "rowclone": _probe_rowclone(target),
            "max_not_dst": _max_not_destinations(
                target, trials, scale.batch_trials
            ),
            "max_op_inputs": _max_op_inputs(target, trials, scale.batch_trials),
            "n_to_2n": chip.supports_n_to_2n
            and find_not_measurement(target, 32) is not None,
        }

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.extras["matrix"] = rows
    header = (
        f"{'module':<24} {'RowClone':>8} {'NOT dst':>8} "
        f"{'op inputs':>9} {'N:2N':>5}"
    )
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<24} {'yes' if row['rowclone'] else 'no':>8} "
            f"{row['max_not_dst']:>8} {row['max_op_inputs']:>9} "
            f"{'yes' if row['n_to_2n'] else 'no':>5}"
        )
    result.extras["table"] = "\n".join(lines)

    hynix = [r for r in rows.values() if r["manufacturer"] == "SK Hynix"]
    samsung = [r for r in rows.values() if r["manufacturer"] == "Samsung"]
    micron = [r for r in rows.values() if r["manufacturer"] == "Micron"]
    result.notes.append(
        f"SK Hynix: all {len(hynix)} module types compute "
        f"(ops up to {max(r['max_op_inputs'] for r in hynix)} inputs)"
    )
    if samsung:
        result.notes.append(
            "Samsung: NOT only, single destination row "
            f"({sum(1 for r in samsung if r['max_not_dst'] == 1)}/"
            f"{len(samsung)} types)"
        )
    if micron:
        result.notes.append(
            f"Micron: no operations ({len(micron)} module types), §7 Limitation 1"
        )
    return result
