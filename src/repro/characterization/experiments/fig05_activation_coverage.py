"""Fig. 5 — coverage of each N_RF:N_RL activation type (§4.3, Obs. 1-2).

For every SK Hynix target, a command-level scan probes random (R_F, R_L)
pairs in a neighboring subarray pair and classifies the resulting
activation; the *coverage* of a type is the fraction of pairs producing
it.  The box per type is taken over targets (module/bank/pair), matching
the paper's per-chip distribution.
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ...reveng.activation import ActivationScanner, coverage_from_counts
from ..metrics import WeightedSamples
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale, iter_targets

EXPERIMENT_ID = "fig5"
TITLE = "Coverage of N_RF:N_RL activation types across row pairs"

#: Plot order of the paper's x-axis.
TYPE_ORDER = (
    "1:1", "1:2", "2:2", "2:4", "4:4", "4:8", "8:8", "8:16", "16:16", "16:32",
)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    # ``jobs``/``resilience`` accepted for a uniform entry point but
    # unused: the scanner's per-target seed is an ordinal counter, so
    # this sweep stays serial until it migrates to path-derived seeds.
    samples_per_target = max(200, 4 * scale.trials)
    groups = {label: WeightedSamples() for label in TYPE_ORDER + ("none",)}

    targets = 0
    for target in iter_targets(
        scale, seed, manufacturers=[Manufacturer.SK_HYNIX]
    ):
        scanner = ActivationScanner(
            target.infra.host,
            target.bank,
            target.subarray_pair[0],
            target.subarray_pair[1],
            seed=seed + targets,
        )
        coverage = coverage_from_counts(scanner.scan(samples_per_target))
        for label in groups:
            groups[label].add([coverage.get(label, 0.0)], target.weight)
        targets += 1

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for label in TYPE_ORDER:
        if not groups[label].empty:
            result.add_group(label, groups[label].box())
    if not groups["none"].empty:
        result.add_group("none", groups["none"].box())
    result.notes.append(
        f"{targets} targets x {samples_per_target} sampled pairs each "
        "(the paper scans all 409,600 combinations per subarray pair)"
    )
    return result
