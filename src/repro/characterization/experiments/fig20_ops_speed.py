"""Fig. 20 — logic-op success vs. DRAM speed rate (Obs. 18).

Paper anchor: the 4-input NAND loses 29.89% mean success from 2133 to
2400 MT/s — the same cycle-quantization sour spot as Fig. 11.
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig20"
TITLE = "AND/NAND/OR/NOR success rate for different DRAM speed rates"

INPUT_COUNTS = (2, 4, 8, 16)
SPEEDS = (2133, 2400, 2666)
OPS = ("and", "nand", "or", "nor")


def _label_fn(target, variant, temp, op_name):
    return (
        f"{op_name.upper()} n={variant.n_inputs} "
        f"@{target.spec.chip.speed_rate_mts}MT/s"
    )


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        LogicVariant(base_op, n) for base_op in ("and", "or") for n in INPUT_COUNTS
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for op_name in OPS:
        for n in INPUT_COUNTS:
            for speed in SPEEDS:
                label = f"{op_name.upper()} n={n} @{speed}MT/s"
                samples = groups.get(label)
                if samples is not None and not samples.empty:
                    result.add_group(label, samples.box())

    try:
        drop = (
            result.groups["NAND n=4 @2133MT/s"].mean
            - result.groups["NAND n=4 @2400MT/s"].mean
        )
        result.extras["nand4_2133_to_2400_drop"] = drop
        result.notes.append(
            f"4-input NAND: 2133->2400 change {-drop * 100:+.2f}% "
            "(paper: -29.89%, Observation 18)"
        )
    except KeyError:
        result.notes.append("incomplete speed coverage at this scale")
    return result
