"""Fig. 9 — NOT success vs. distance of activated rows to the sense
amplifiers (Obs. 6).

Rows are bucketed into Close/Middle/Far thirds by physical distance from
the shared sense-amplifier stripe (recovered in hardware via the
RowHammer pass of §5.2; the sweep uses the predicate form).  The result
is a 3x3 heatmap of mean success: the paper's extremes are Middle-Far at
85.02% and Far-Close at 44.16%.
"""

from __future__ import annotations

from typing import Optional

from itertools import product

from ...dram.config import Manufacturer
from ...dram.variation import Region
from ..metrics import WeightedSamples
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig9"
TITLE = "NOT success rate vs. src/dst distance to the sense amplifiers"

#: Destination-row counts aggregated into each heatmap cell (the paper
#: averages over every tested destination-row count).
DESTINATION_COUNTS = (1, 4, 16)


def _label_fn(target, variant, temp):
    return (
        f"{Region(variant.regions[0])}-{Region(variant.regions[1])}"
        f"|{variant.n_destination}"
    )


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        NotVariant(n, regions=(int(src), int(dst)))
        for n in DESTINATION_COUNTS
        for src, dst in product(Region, Region)
    ]
    # Keep destination-row counts apart while sweeping and average the
    # per-count means with equal weight afterwards: the region predicate
    # finds different count mixes per cell, and an unbalanced mix would
    # confound the distance effect with the destination-count effect.
    groups = not_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        manufacturers=[Manufacturer.SK_HYNIX],
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    heatmap = {}
    for src, dst in product(Region, Region):
        label = f"{src}-{dst}"
        per_count_means = []
        merged = WeightedSamples()
        for n in DESTINATION_COUNTS:
            samples = groups.get(f"{label}|{n}")
            if samples is None or samples.empty:
                continue
            per_count_means.append(samples.mean)
            merged.extend(samples)
        if not per_count_means:
            continue
        result.add_group(label, merged.box())
        heatmap[(int(src), int(dst))] = sum(per_count_means) / len(per_count_means)
    result.extras["heatmap"] = heatmap
    result.notes.append(
        "paper anchors: Middle-Far 85.02% (best), Far-Close 44.16% (worst)"
    )
    return result
