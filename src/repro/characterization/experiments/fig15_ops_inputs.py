"""Fig. 15 — AND/NAND/OR/NOR success vs. number of input operands
(Obs. 10-13).

Paper anchors: 16-input AND/NAND/OR/NOR average 94.94/94.94/95.85/95.87%
success; success *increases* with operand count (16-input AND beats
2-input AND by 10.27%); OR-family beats AND-family (by 10.42% at
2-input); AND vs. NAND and OR vs. NOR differ by under 0.5%.
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig15"
TITLE = "AND/NAND/OR/NOR success rate vs. number of input operands"

INPUT_COUNTS = (2, 4, 8, 16)
OP_ORDER = ("and", "nand", "or", "nor")


def _label_fn(target, variant, temp, op_name):
    return f"{op_name.upper()} n={variant.n_inputs}"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [
        LogicVariant(base_op, n) for base_op in ("and", "or") for n in INPUT_COUNTS
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for op_name in OP_ORDER:
        for n in INPUT_COUNTS:
            label = f"{op_name.upper()} n={n}"
            samples = groups.get(label)
            if samples is not None and not samples.empty:
                result.add_group(label, samples.box())

    means = result.group_means()

    def maybe_note(text: str) -> None:
        result.notes.append(text)

    if "AND n=16" in means and "AND n=2" in means:
        maybe_note(
            f"16-input AND minus 2-input AND: "
            f"{(means['AND n=16'] - means['AND n=2']) * 100:+.2f}% "
            "(paper: +10.27%, Observation 11)"
        )
    if "OR n=2" in means and "AND n=2" in means:
        maybe_note(
            f"2-input OR minus 2-input AND: "
            f"{(means['OR n=2'] - means['AND n=2']) * 100:+.2f}% "
            "(paper: +10.42%, Observation 12)"
        )
    if "AND n=16" in means and "NAND n=16" in means:
        maybe_note(
            f"16-input AND minus NAND: "
            f"{(means['AND n=16'] - means['NAND n=16']) * 100:+.2f}% "
            "(paper: ~0, Observation 13)"
        )
    return result
