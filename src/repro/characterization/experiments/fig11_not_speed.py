"""Fig. 11 — NOT success rate vs. DRAM speed rate (Obs. 8).

SK Hynix modules in Table 1 span 2133, 2400, and 2666 MT/s.  The paper
observes a non-monotonic dip at 2400 MT/s: for 4 destination rows, mean
success drops 20.06% from 2133 to 2400 and recovers 19.76% at 2666.
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig11"
TITLE = "NOT success rate for different DRAM speed rates"

DESTINATION_COUNTS = (1, 2, 4, 8, 16)
SPEEDS = (2133, 2400, 2666)


def _label_fn(target, variant, temp):
    return f"{variant.n_destination} dst @{target.spec.chip.speed_rate_mts}MT/s"


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    variants = [NotVariant(n) for n in DESTINATION_COUNTS]
    groups = not_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        manufacturers=[Manufacturer.SK_HYNIX],
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for n in DESTINATION_COUNTS:
        for speed in SPEEDS:
            label = f"{n} dst @{speed}MT/s"
            samples = groups.get(label)
            if samples is not None and not samples.empty:
                result.add_group(label, samples.box())

    def mean_at(n: int, speed: int) -> float:
        return result.groups[f"{n} dst @{speed}MT/s"].mean

    try:
        drop = mean_at(4, 2133) - mean_at(4, 2400)
        recovery = mean_at(4, 2666) - mean_at(4, 2400)
        result.extras["dip_2400_drop"] = drop
        result.extras["dip_2400_recovery"] = recovery
        result.notes.append(
            f"4-dst: 2133->2400 change {-drop * 100:+.2f}%, 2400->2666 "
            f"change {recovery * 100:+.2f}% (paper: -20.06% / +19.76%, "
            "Observation 8)"
        )
    except KeyError:
        result.notes.append("incomplete speed coverage at this scale")
    return result
