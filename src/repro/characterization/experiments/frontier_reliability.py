"""Reliability/throughput frontier of the mitigation schemes.

Not a figure from the paper — the engineering consequence of its
characterization: per-cell success rates measured by the standard
sweeps are mapped through every mitigation scheme's closed-form
residual-error model (:mod:`repro.reliability.schemes`), pairing each
scheme's residual error with its throughput cost in expected
op-sequence executions.  The resulting (cost, error) points trace the
frontier a system designer actually navigates: how much throughput a
given error bound costs, per operation.

Groups hold per-cell *residual error* distributions (not success
rates — lower is better); ``extras["frontier"]`` carries the frontier
points, and ``extras["bound_met"]`` the fraction of cells each scheme
brings under the default 1e-3 bound.  Statically infeasible
configurations (Observation 14) are noted, not plotted: no scheme has
a point there.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...reliability.schemes import MitigationScheme
from ...reliability.tuner import DEFAULT_ERROR_BOUND, static_infeasibility
from ..metrics import BoxStats
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, NotVariant, logic_sweep, not_sweep

EXPERIMENT_ID = "frontier"
TITLE = "Reliability/throughput frontier of the mitigation schemes"

#: NOT destination-row count measured (8 copies: enough to show the
#: space-redundancy lever without demanding the full 32-row pattern).
NOT_DESTINATIONS = 8

#: The scheme ladder traced per operation, cheapest first.  Schemes
#: inapplicable to an operation (retry on NOT) or exceeding its output
#: terminal's rows are skipped per op.
SCHEME_LADDER = (
    MitigationScheme(),
    MitigationScheme(row_copies=3),
    MitigationScheme(row_copies=7),
    MitigationScheme(max_attempts=2),
    MitigationScheme(max_attempts=3),
    MitigationScheme(votes=3),
    MitigationScheme(votes=3, max_attempts=2),
    MitigationScheme(votes=5, max_attempts=3),
    MitigationScheme(votes=5, row_copies=7),
    MitigationScheme(votes=9, max_attempts=3),
    MitigationScheme(votes=9, row_copies=3, max_attempts=4),
    MitigationScheme(votes=15, max_attempts=4),
)


def _logic_label(target, variant, temp, op_name):
    return f"{op_name.upper()} n={variant.n_inputs}"


def _not_label(target, variant, temp):
    return f"NOT {variant.n_destination} dst"


def _terminal_rows(label: str) -> int:
    """Output-terminal rows of a measured group (space-vote ceiling)."""
    if label.startswith("NOT"):
        return NOT_DESTINATIONS
    return int(label.rsplit("=", 1)[1])


def _operation(label: str) -> str:
    return label.split(" ")[0].lower()


def _render_frontier(frontier: List[dict]) -> str:
    """Text frontier figure: per op, schemes by cost with a log-error bar.

    Each ``#`` column is one decade of mean residual error below 1
    (more ``#`` = more reliable); the ``|`` marks the default bound.
    """
    lines = ["cost(x)  scheme                mean err   p95 err    reliability"]
    bound_decades = -np.log10(DEFAULT_ERROR_BOUND)
    for op in sorted({str(point["op"]) for point in frontier}):
        lines.append(f"-- {op} --")
        points = sorted(
            (point for point in frontier if point["op"] == op),
            key=lambda p: float(p["cost"]),  # type: ignore[arg-type]
        )
        for point in points:
            mean_error = max(float(point["mean_error"]), 1e-12)  # type: ignore[arg-type]
            decades = min(-np.log10(mean_error), 12.0)
            bar = "#" * int(round(decades))
            marker = int(round(bound_decades))
            if len(bar) < marker:
                bar = bar + " " * (marker - len(bar))
            bar = bar[:marker] + "|" + bar[marker:]
            lines.append(
                f"{float(point['cost']):7.2f}  {str(point['scheme']):<20} "  # type: ignore[arg-type]
                f"{float(point['mean_error']):9.2e}  "  # type: ignore[arg-type]
                f"{float(point['p95_error']):9.2e}  {bar}"  # type: ignore[arg-type]
            )
    return "\n".join(lines)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    # Footnote-8 filter: schemes code against *trial noise*; cells that
    # fail most trials are a placement/quarantine problem, not a coding
    # one, so the frontier is traced over the deployable population.
    logic_groups = logic_sweep(
        scale,
        seed,
        [LogicVariant("and", 2), LogicVariant("or", 2)],
        label_fn=_logic_label,
        good_cells_only=True,
        jobs=jobs,
        resilience=resilience,
    )
    not_groups = not_sweep(
        scale,
        seed,
        [NotVariant(NOT_DESTINATIONS)],
        label_fn=_not_label,
        good_cells_only=True,
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    frontier: List[dict] = []
    bound_met: List[dict] = []
    for label, samples in list(logic_groups.items()) + list(not_groups.items()):
        if samples.empty:
            continue
        rates = np.asarray(samples.values(), dtype=np.float64)
        operation = _operation(label)
        rows = _terminal_rows(label)
        for scheme in SCHEME_LADDER:
            if not scheme.applicable_to(operation):
                continue
            if scheme.row_copies > rows:
                continue
            residual = np.asarray(scheme.predicted_error(rates))
            cost = float(np.mean(scheme.expected_cost(rates)))
            group = f"{label} {scheme.label}"
            result.add_group(group, BoxStats.from_values(residual))
            frontier.append(
                {
                    "op": label,
                    "scheme": scheme.label,
                    "cost": cost,
                    "mean_error": float(np.mean(residual)),
                    "p95_error": float(np.percentile(residual, 95)),
                }
            )
            bound_met.append(
                {
                    "op": label,
                    "scheme": scheme.label,
                    "fraction": float(
                        np.mean(residual <= DEFAULT_ERROR_BOUND)
                    ),
                }
            )
    result.extras["frontier"] = frontier
    result.extras["bound_met"] = bound_met
    result.extras["error_bound"] = DEFAULT_ERROR_BOUND
    result.extras["table"] = _render_frontier(frontier)

    # The cheapest scheme whose mean residual meets the default bound,
    # per operation: the headline frontier reading.
    ops = sorted({str(point["op"]) for point in frontier})
    for op in ops:
        eligible = [
            point
            for point in frontier
            if point["op"] == op
            and float(point["mean_error"]) <= DEFAULT_ERROR_BOUND  # type: ignore[arg-type]
        ]
        if eligible:
            cheapest = min(eligible, key=lambda p: float(p["cost"]))  # type: ignore[arg-type]
            result.notes.append(
                f"{op}: cheapest scheme meeting "
                f"{DEFAULT_ERROR_BOUND:.0e} is {cheapest['scheme']} at "
                f"{float(cheapest['cost']):.2f}x throughput"  # type: ignore[arg-type]
            )
        else:
            result.notes.append(
                f"{op}: no ladder scheme meets {DEFAULT_ERROR_BOUND:.0e}"
            )
    reason = static_infeasibility("and", 16)
    if reason is not None:
        result.notes.append(
            "AND n=16 has no frontier point: " + reason
        )
    return result
