"""Fig. 12 — NOT success (one destination row) vs. chip density and die
revision for both manufacturers (Obs. 9).

Paper anchors: SK Hynix 8Gb M-die to 8Gb A-die drops 8.05%; Samsung
A-die to D-die drops 11.02%.  One destination row is used because
Samsung chips support no more (§5.3, footnote 9).
"""

from __future__ import annotations

from typing import Optional

from ...dram.config import Manufacturer
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import NotVariant, not_sweep

EXPERIMENT_ID = "fig12"
TITLE = "NOT success rate by chip density and die revision"


def _die_label(target) -> str:
    chip = target.spec.chip
    return f"{chip.manufacturer} {chip.density_gb}Gb {chip.die_revision}-die"


def _label_fn(target, variant, temp):
    return _die_label(target)


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    groups = not_sweep(
        scale,
        seed,
        [NotVariant(1)],
        label_fn=_label_fn,
        manufacturers=[Manufacturer.SK_HYNIX, Manufacturer.SAMSUNG],
        jobs=jobs,
        resilience=resilience,
    )
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for label in sorted(groups):
        if not groups[label].empty:
            result.add_group(label, groups[label].box())

    def delta(a: str, b: str) -> float:
        return result.groups[a].mean - result.groups[b].mean

    try:
        sk = delta("SK Hynix 8Gb M-die", "SK Hynix 8Gb A-die")
        result.notes.append(
            f"SK Hynix 8Gb M-die minus A-die: {sk * 100:+.2f}% (paper: +8.05%)"
        )
    except KeyError:
        pass
    try:
        sams = delta("Samsung 8Gb A-die", "Samsung 8Gb D-die")
        result.notes.append(
            f"Samsung A-die minus D-die: {sams * 100:+.2f}% (paper: +11.02%)"
        )
    except KeyError:
        pass
    return result
