"""Shared sweep drivers for the table/figure reproductions.

Every figure in the paper's evaluation is some grouping of per-cell
success rates over (operation variant x fleet target x temperature).
The two drivers here — :func:`not_sweep` and :func:`logic_sweep` — run
those loops once, and each experiment module supplies only its variant
list and group-labeling function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ...dram.config import Manufacturer, ModuleSpec
from ...dram.decoder import ActivationKind
from ...rng import derive_seed
from ..metrics import WeightedSamples
from ..runner import (
    Scale,
    SweepTarget,
    find_logic_measurement,
    find_not_measurement,
    good_cell_mask,
    iter_targets,
    region_predicate,
)

__all__ = [
    "NotVariant",
    "LogicVariant",
    "GroupSamples",
    "not_sweep",
    "logic_sweep",
    "BASELINE_TEMPERATURE_C",
]

GroupSamples = Dict[str, WeightedSamples]

#: All experiments run at 50 degC unless they sweep temperature (§5.2).
BASELINE_TEMPERATURE_C = 50.0


@dataclass(frozen=True)
class NotVariant:
    """One NOT configuration: destination-row count and pattern family."""

    n_destination: int
    kind: Optional[ActivationKind] = None
    #: Optional (first_region, last_region) constraint (Fig. 9).
    regions: Optional[tuple] = None

    def default_label(self) -> str:
        return f"{self.n_destination} dst"


@dataclass(frozen=True)
class LogicVariant:
    """One logic-op configuration: base op, fan-in, operand pattern."""

    base_op: str
    n_inputs: int
    mode: str = "random"
    ones_count: Optional[int] = None
    regions: Optional[tuple] = None

    def default_label(self, op_name: str) -> str:
        return f"{op_name.upper()} n={self.n_inputs}"


NotLabelFn = Callable[[SweepTarget, NotVariant, float], Optional[str]]
LogicLabelFn = Callable[[SweepTarget, LogicVariant, float, str], Optional[str]]


def _measurement_rng(seed: int, *context: str) -> np.random.Generator:
    return np.random.default_rng(derive_seed(seed, *context))


def not_sweep(
    scale: Scale,
    seed: int,
    variants: Sequence[NotVariant],
    label_fn: Optional[NotLabelFn] = None,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    temperatures: Optional[Sequence[float]] = None,
    spec_filter: Optional[Callable[[ModuleSpec], bool]] = None,
    good_cells_only: bool = False,
) -> GroupSamples:
    """Run NOT measurements across the fleet, grouped by label.

    When ``temperatures`` is given, each variant is measured once per
    temperature; with ``good_cells_only`` the paper's footnote-8 filter
    applies — only cells above 90% success at the 50 degC baseline are
    tracked across temperatures.  A ``label_fn`` returning ``None``
    drops that (target, variant) from the sweep.
    """
    groups: GroupSamples = {}
    temps = list(temperatures) if temperatures else [BASELINE_TEMPERATURE_C]

    for target in iter_targets(scale, seed, manufacturers=manufacturers):
        if spec_filter is not None and not spec_filter(target.spec):
            continue
        for variant in variants:
            predicate = None
            if variant.regions is not None:
                predicate = region_predicate(target, *variant.regions)
            measurement = find_not_measurement(
                target,
                variant.n_destination,
                kind=variant.kind,
                predicate=predicate,
            )
            if measurement is None:
                continue

            mask = None
            if good_cells_only:
                target.infra.set_temperature(BASELINE_TEMPERATURE_C)
                baseline = measurement.run(
                    scale.trials,
                    _measurement_rng(seed, target.label(), repr(variant), "mask"),
                )
                mask = good_cell_mask(baseline)
                if not mask.any():
                    continue

            for temperature in temps:
                label = (
                    label_fn(target, variant, temperature)
                    if label_fn
                    else variant.default_label()
                )
                if label is None:
                    continue
                target.infra.set_temperature(temperature)
                result = measurement.run(
                    scale.trials,
                    _measurement_rng(
                        seed, target.label(), repr(variant), f"T={temperature}"
                    ),
                )
                rates = result.rates[mask] if mask is not None else result.rates
                groups.setdefault(label, WeightedSamples()).add(
                    rates, target.weight
                )
            target.infra.set_temperature(BASELINE_TEMPERATURE_C)
    return groups


def logic_sweep(
    scale: Scale,
    seed: int,
    variants: Sequence[LogicVariant],
    label_fn: Optional[LogicLabelFn] = None,
    temperatures: Optional[Sequence[float]] = None,
    spec_filter: Optional[Callable[[ModuleSpec], bool]] = None,
    good_cells_only: bool = False,
    trials_override: Optional[int] = None,
) -> GroupSamples:
    """Run logic-op measurements across the fleet, grouped by label.

    Each measurement yields *both* terminals (AND together with NAND, or
    OR with NOR); the label function is called once per terminal with
    the concrete operation name.  Only SK Hynix targets can run these
    (§6.3); others are skipped automatically.
    """
    groups: GroupSamples = {}
    temps = list(temperatures) if temperatures else [BASELINE_TEMPERATURE_C]
    trials = trials_override or scale.trials

    for target in iter_targets(
        scale, seed, manufacturers=[Manufacturer.SK_HYNIX]
    ):
        if spec_filter is not None and not spec_filter(target.spec):
            continue
        for variant in variants:
            predicate = None
            if variant.regions is not None:
                predicate = region_predicate(target, *variant.regions)
            measurement = find_logic_measurement(
                target, variant.base_op, variant.n_inputs, predicate=predicate
            )
            if measurement is None:
                continue

            masks = None
            if good_cells_only:
                target.infra.set_temperature(BASELINE_TEMPERATURE_C)
                baseline = measurement.run(
                    trials,
                    _measurement_rng(seed, target.label(), repr(variant), "mask"),
                    mode=variant.mode,
                    ones_count=variant.ones_count,
                )
                masks = (
                    good_cell_mask(baseline.primary),
                    good_cell_mask(baseline.complement),
                )

            for temperature in temps:
                target.infra.set_temperature(temperature)
                pair = measurement.run(
                    trials,
                    _measurement_rng(
                        seed, target.label(), repr(variant), f"T={temperature}"
                    ),
                    mode=variant.mode,
                    ones_count=variant.ones_count,
                )
                for index, result in enumerate((pair.primary, pair.complement)):
                    op_name = str(result.metadata["operation"])
                    label = (
                        label_fn(target, variant, temperature, op_name)
                        if label_fn
                        else variant.default_label(op_name)
                    )
                    if label is None:
                        continue
                    rates = result.rates
                    if masks is not None:
                        mask = masks[index]
                        if not mask.any():
                            continue
                        rates = rates[mask]
                    groups.setdefault(label, WeightedSamples()).add(
                        rates, target.weight
                    )
            target.infra.set_temperature(BASELINE_TEMPERATURE_C)
    return groups
