"""Shared sweep drivers for the table/figure reproductions.

Every figure in the paper's evaluation is some grouping of per-cell
success rates over (operation variant x fleet target x temperature).
The two drivers here — :func:`not_sweep` and :func:`logic_sweep` — run
those loops once, and each experiment module supplies only its variant
list and group-labeling function.

Both drivers route through a pluggable
:class:`~repro.characterization.parallel.SweepExecutor`: per-target
work is packaged as a picklable object (:class:`_NotSweepWork` /
:class:`_LogicSweepWork`) that a process-pool worker can apply to a
target it reconstructed locally, and the records come back tagged with
the target's canonical index so aggregation order — and therefore every
result bit — matches the serial path.  Experiment modules must
therefore pass *module-level* ``label_fn`` functions, not lambdas or
closures: the label function rides along inside the pickled work
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ...dram.config import Manufacturer, ModuleSpec
from ...dram.decoder import ActivationKind
from ...rng import derive_seed
from ..metrics import WeightedSamples
from ..parallel import SweepExecutor, TargetRecords, make_executor
from ..resilience import Resilience
from ..runner import (
    Scale,
    SweepTarget,
    TargetDescriptor,
    good_cell_mask,
    iter_descriptors,
    spec_by_name,
)

__all__ = [
    "NotVariant",
    "LogicVariant",
    "GroupSamples",
    "not_sweep",
    "logic_sweep",
    "BASELINE_TEMPERATURE_C",
]

GroupSamples = Dict[str, WeightedSamples]

#: All experiments run at 50 degC unless they sweep temperature (§5.2).
BASELINE_TEMPERATURE_C = 50.0


@dataclass(frozen=True)
class NotVariant:
    """One NOT configuration: destination-row count and pattern family."""

    n_destination: int
    kind: Optional[ActivationKind] = None
    #: Optional (first_region, last_region) constraint (Fig. 9).
    regions: Optional[tuple] = None

    def default_label(self) -> str:
        return f"{self.n_destination} dst"


@dataclass(frozen=True)
class LogicVariant:
    """One logic-op configuration: base op, fan-in, operand pattern."""

    base_op: str
    n_inputs: int
    mode: str = "random"
    ones_count: Optional[int] = None
    regions: Optional[tuple] = None

    def default_label(self, op_name: str) -> str:
        return f"{op_name.upper()} n={self.n_inputs}"


NotLabelFn = Callable[[SweepTarget, NotVariant, float], Optional[str]]
LogicLabelFn = Callable[[SweepTarget, LogicVariant, float, str], Optional[str]]

#: One result record: (group label, per-cell rates, population weight).
SweepRecord = Tuple[str, np.ndarray, int]


def _measurement_rng(seed: int, *context: str) -> np.random.Generator:
    return np.random.default_rng(derive_seed(seed, *context))


@dataclass(frozen=True)
class _NotSweepWork:
    """Per-target NOT measurement loop, picklable for pool workers."""

    seed: int
    trials: int
    variants: Tuple[NotVariant, ...]
    label_fn: Optional[NotLabelFn]
    temperatures: Tuple[float, ...]
    good_cells_only: bool
    #: Trial engine selection: execution detail, not measurement
    #: identity — ``engine_only`` keeps it out of checkpoint
    #: fingerprints so batched and serial runs resume interchangeably.
    batch_trials: int = field(default=0, metadata={"engine_only": True})
    #: Substrate backend spec (rides along as a string so pool workers
    #: resolve their own process-local instance).  Part of the sweep's
    #: identity: different backends measure different things.
    backend: str = "analog"

    def __call__(self, target: SweepTarget) -> List[SweepRecord]:
        from ...substrate.base import resolve_backend

        backend = resolve_backend(self.backend)
        records: List[SweepRecord] = []
        seed = self.seed
        for variant in self.variants:
            measurement = backend.find_not_measurement(
                target,
                variant.n_destination,
                kind=variant.kind,
                regions=variant.regions,
            )
            if measurement is None:
                continue

            mask = None
            if self.good_cells_only:
                target.infra.set_temperature(BASELINE_TEMPERATURE_C)
                baseline = measurement.run(
                    self.trials,
                    _measurement_rng(seed, target.label(), repr(variant), "mask"),
                    batch_trials=self.batch_trials,
                )
                mask = good_cell_mask(baseline)
                if not mask.any():
                    continue

            for temperature in self.temperatures:
                label = (
                    self.label_fn(target, variant, temperature)
                    if self.label_fn
                    else variant.default_label()
                )
                if label is None:
                    continue
                target.infra.set_temperature(temperature)
                result = measurement.run(
                    self.trials,
                    _measurement_rng(
                        seed, target.label(), repr(variant), f"T={temperature}"
                    ),
                    batch_trials=self.batch_trials,
                )
                rates = result.rates[mask] if mask is not None else result.rates
                records.append((label, rates, target.weight))
        target.infra.set_temperature(BASELINE_TEMPERATURE_C)
        return records


@dataclass(frozen=True)
class _LogicSweepWork:
    """Per-target logic-op measurement loop, picklable for pool workers."""

    seed: int
    trials: int
    variants: Tuple[LogicVariant, ...]
    label_fn: Optional[LogicLabelFn]
    temperatures: Tuple[float, ...]
    good_cells_only: bool
    #: See :class:`_NotSweepWork.batch_trials`.
    batch_trials: int = field(default=0, metadata={"engine_only": True})
    #: See :class:`_NotSweepWork.backend`.
    backend: str = "analog"

    def __call__(self, target: SweepTarget) -> List[SweepRecord]:
        from ...substrate.base import resolve_backend

        backend = resolve_backend(self.backend)
        records: List[SweepRecord] = []
        seed = self.seed
        for variant in self.variants:
            measurement = backend.find_logic_measurement(
                target, variant.base_op, variant.n_inputs, regions=variant.regions
            )
            if measurement is None:
                continue

            masks = None
            if self.good_cells_only:
                target.infra.set_temperature(BASELINE_TEMPERATURE_C)
                baseline = measurement.run(
                    self.trials,
                    _measurement_rng(seed, target.label(), repr(variant), "mask"),
                    mode=variant.mode,
                    ones_count=variant.ones_count,
                    batch_trials=self.batch_trials,
                )
                masks = (
                    good_cell_mask(baseline.primary),
                    good_cell_mask(baseline.complement),
                )

            for temperature in self.temperatures:
                target.infra.set_temperature(temperature)
                pair = measurement.run(
                    self.trials,
                    _measurement_rng(
                        seed, target.label(), repr(variant), f"T={temperature}"
                    ),
                    mode=variant.mode,
                    ones_count=variant.ones_count,
                    batch_trials=self.batch_trials,
                )
                for index, result in enumerate((pair.primary, pair.complement)):
                    op_name = str(result.metadata["operation"])
                    label = (
                        self.label_fn(target, variant, temperature, op_name)
                        if self.label_fn
                        else variant.default_label(op_name)
                    )
                    if label is None:
                        continue
                    rates = result.rates
                    if masks is not None:
                        mask = masks[index]
                        if not mask.any():
                            continue
                        rates = rates[mask]
                    records.append((label, rates, target.weight))
        target.infra.set_temperature(BASELINE_TEMPERATURE_C)
        return records


def _check_backend_jobs(scale: Scale, jobs: int) -> None:
    """Trace recording accumulates in one process-local event log; a
    pool worker's recording would be dropped on exit, so recording
    sweeps must run serially."""
    if jobs > 1 and scale.backend.startswith("trace-record"):
        from ...errors import ConfigurationError

        raise ConfigurationError(
            "backend 'trace-record' requires jobs=1: recordings accumulate "
            "per process and pool workers discard theirs on exit"
        )


def _select_descriptors(
    scale: Scale,
    manufacturers: Optional[Iterable[Manufacturer]],
    spec_filter: Optional[Callable[[ModuleSpec], bool]],
) -> List[TargetDescriptor]:
    """Enumerate the sweep and apply the spec filter up front.

    ``spec_filter`` runs in the parent process against the descriptor's
    spec, so experiments may pass closures for it (unlike ``label_fn``,
    it never crosses the process boundary).
    """
    descriptors = iter_descriptors(scale, manufacturers=manufacturers)
    if spec_filter is None:
        return descriptors
    specs = spec_by_name(scale)
    return [d for d in descriptors if spec_filter(specs[d.spec_name])]


def _merge_records(records: List[TargetRecords]) -> GroupSamples:
    """Aggregate per-target records in canonical sweep order."""
    groups: GroupSamples = {}
    for _index, payloads in records:
        for label, rates, weight in payloads:
            groups.setdefault(label, WeightedSamples()).add(rates, weight)
    return groups


def not_sweep(
    scale: Scale,
    seed: int,
    variants: Sequence[NotVariant],
    label_fn: Optional[NotLabelFn] = None,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    temperatures: Optional[Sequence[float]] = None,
    spec_filter: Optional[Callable[[ModuleSpec], bool]] = None,
    good_cells_only: bool = False,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    resilience: Optional[Resilience] = None,
) -> GroupSamples:
    """Run NOT measurements across the fleet, grouped by label.

    When ``temperatures`` is given, each variant is measured once per
    temperature; with ``good_cells_only`` the paper's footnote-8 filter
    applies — only cells above 90% success at the 50 degC baseline are
    tracked across temperatures.  A ``label_fn`` returning ``None``
    drops that (target, variant) from the sweep.  ``jobs`` > 1 fans the
    sweep out over a process pool (results are bit-identical to the
    serial path); an explicit ``executor`` overrides ``jobs``.
    ``resilience`` enables fault injection, retry/quarantine, and
    checkpointing; sweep health accumulates on the shared object.
    """
    temps = tuple(temperatures) if temperatures else (BASELINE_TEMPERATURE_C,)
    _check_backend_jobs(scale, jobs)
    work = _NotSweepWork(
        seed=seed,
        trials=scale.trials,
        variants=tuple(variants),
        label_fn=label_fn,
        temperatures=temps,
        good_cells_only=good_cells_only,
        batch_trials=scale.batch_trials,
        backend=scale.backend,
    )
    descriptors = _select_descriptors(scale, manufacturers, spec_filter)
    runner = make_executor(jobs, executor)
    outcome = runner.run_resilient(
        work, scale, seed, descriptors, resilience=resilience
    )
    return _merge_records(outcome.records)


def logic_sweep(
    scale: Scale,
    seed: int,
    variants: Sequence[LogicVariant],
    label_fn: Optional[LogicLabelFn] = None,
    temperatures: Optional[Sequence[float]] = None,
    spec_filter: Optional[Callable[[ModuleSpec], bool]] = None,
    good_cells_only: bool = False,
    trials_override: Optional[int] = None,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    resilience: Optional[Resilience] = None,
) -> GroupSamples:
    """Run logic-op measurements across the fleet, grouped by label.

    Each measurement yields *both* terminals (AND together with NAND, or
    OR with NOR); the label function is called once per terminal with
    the concrete operation name.  Only SK Hynix targets can run these
    (§6.3); others are skipped automatically.  ``jobs``/``executor``/
    ``resilience`` behave as in :func:`not_sweep`.
    """
    temps = tuple(temperatures) if temperatures else (BASELINE_TEMPERATURE_C,)
    _check_backend_jobs(scale, jobs)
    work = _LogicSweepWork(
        seed=seed,
        trials=trials_override or scale.trials,
        variants=tuple(variants),
        label_fn=label_fn,
        temperatures=temps,
        good_cells_only=good_cells_only,
        batch_trials=scale.batch_trials,
        backend=scale.backend,
    )
    descriptors = _select_descriptors(
        scale, [Manufacturer.SK_HYNIX], spec_filter
    )
    runner = make_executor(jobs, executor)
    outcome = runner.run_resilient(
        work, scale, seed, descriptors, resilience=resilience
    )
    return _merge_records(outcome.records)
