"""Fig. 17 — logic-op success vs. distance of the activated rows to the
sense amplifiers (Obs. 15).

One 3x3 heatmap per operation, indexed (compute-row region x reference-
row region).  Paper anchors: location-induced variation up to 23.36% for
AND, 23.70% for NAND, 10.42% for OR, 10.50% for NOR.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional

from ...dram.variation import Region
from ..resilience import Resilience
from ..results import ExperimentResult
from ..runner import DEFAULT, Scale
from .base import LogicVariant, logic_sweep

EXPERIMENT_ID = "fig17"
TITLE = "AND/NAND/OR/NOR success rate vs. distance to the sense amplifiers"

#: Fan-in aggregated into the heatmap (the paper averages all counts).
INPUT_COUNTS = (4,)
OPS = ("and", "nand", "or", "nor")


def _label_fn(target, variant, temp, op_name):
    return (
        f"{op_name.upper()} "
        f"{Region(variant.regions[1])}-{Region(variant.regions[0])}"
    )


def run(
    scale: Scale = DEFAULT,
    seed: int = 0,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> ExperimentResult:
    # The sweep's regions tuple is (first=reference, last=compute).
    variants = [
        LogicVariant(base_op, n, regions=(int(ref), int(com)))
        for base_op in ("and", "or")
        for n in INPUT_COUNTS
        for ref, com in product(Region, Region)
    ]
    groups = logic_sweep(
        scale,
        seed,
        variants,
        label_fn=_label_fn,
        trials_override=max(30, scale.trials // 2),
        jobs=jobs,
        resilience=resilience,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for op_name in OPS:
        heatmap: Dict[tuple, float] = {}
        for com, ref in product(Region, Region):
            label = f"{op_name.upper()} {com}-{ref}"
            samples = groups.get(label)
            if samples is None or samples.empty:
                continue
            result.add_group(label, samples.box())
            heatmap[(int(com), int(ref))] = samples.mean
        result.extras[f"heatmap_{op_name}"] = heatmap
        if heatmap:
            spread = max(heatmap.values()) - min(heatmap.values())
            result.extras[f"variation_{op_name}"] = spread
            result.notes.append(
                f"{op_name.upper()}: location-induced variation "
                f"{spread * 100:.2f}%"
            )
    result.notes.append(
        "paper variation anchors: AND 23.36%, NAND 23.70%, OR 10.42%, "
        "NOR 10.50% (Observation 15)"
    )
    return result
