"""Parallel sweep execution engine (process pool + deterministic merge).

Every figure reproduction walks the Table-1 fleet target by target, and
each (module, bank, subarray-pair) target is independent — the same
embarrassingly-parallel structure the paper exploits by characterizing
28 modules on DRAM Bender boards.  This module fans a sweep's target
descriptors out across worker processes and merges the per-target
records back in canonical sweep order, so a parallel run is
bit-identical to a serial one.

Determinism contract
--------------------

Three properties make serial == parallel exact, not approximate:

* **Workers rebuild, never share.**  Only picklable
  :class:`~repro.characterization.runner.TargetDescriptor` handles cross
  the process boundary.  Each worker reconstructs its modules from the
  shared root seed; every random stream in the simulator hangs off a
  :class:`~repro.rng.SeedTree` by label path, so reconstruction is
  bit-exact regardless of which process performs it.
* **Module groups never split.**  Per-bank trial-noise generators
  advance as measurements run, so the targets of one module instance
  must be processed in enumeration order on one freshly-built module.
  The chunker partitions at :attr:`TargetDescriptor.module_key`
  boundaries and keeps each group intact.
* **Records merge in canonical order.**  Workers tag every record with
  its descriptor's enumeration index; the scheduler sorts the combined
  stream by that index before aggregation, so
  :class:`~repro.characterization.metrics.WeightedSamples` receives the
  same chunks in the same order as a serial sweep.

Work stealing: module groups are packed into many small chunks (about
four per worker by default) and submitted individually; idle workers
pull the next pending chunk, so one slow target (e.g. a
region-constrained pattern search) delays only its own chunk rather
than straggling a statically-assigned shard.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .runner import Scale, SweepTarget, TargetDescriptor, materialize_targets

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "make_executor",
    "module_groups",
    "chunk_groups",
]

#: A unit of per-target work: runs measurements on one live target and
#: returns picklable result payloads (the sweep drivers use
#: ``(label, rates, weight)`` tuples).
TargetWork = Callable[[SweepTarget], List[tuple]]

#: One target's results: (descriptor index, payloads).
TargetRecords = Tuple[int, List[tuple]]


def run_target_block(
    work: TargetWork,
    scale: Scale,
    seed: int,
    descriptors: Sequence[TargetDescriptor],
) -> List[TargetRecords]:
    """Run ``work`` over a block of descriptors, in order.

    This is the single execution path shared by the serial executor and
    the pool workers: materialize targets (reusing one module per
    ``module_key`` group), apply ``work``, tag results with the
    descriptor index.  Sharing it is what makes serial/parallel
    equivalence structural rather than coincidental.
    """
    results: List[TargetRecords] = []
    targets = materialize_targets(descriptors, scale, seed)
    for descriptor, target in zip(descriptors, targets):
        results.append((descriptor.index, work(target)))
    return results


def module_groups(
    descriptors: Sequence[TargetDescriptor],
) -> List[List[TargetDescriptor]]:
    """Split descriptors into per-module groups, preserving order."""
    groups: List[List[TargetDescriptor]] = []
    for descriptor in descriptors:
        if groups and groups[-1][0].module_key == descriptor.module_key:
            groups[-1].append(descriptor)
        else:
            groups.append([descriptor])
    return groups


def chunk_groups(
    groups: Sequence[List[TargetDescriptor]],
    jobs: int,
    chunks_per_worker: int = 4,
) -> List[List[TargetDescriptor]]:
    """Pack module groups into scheduling chunks.

    Aims for about ``chunks_per_worker`` chunks per worker: small enough
    that idle workers keep stealing work from the tail of the sweep,
    large enough that module-construction overhead amortizes when there
    are many more modules than workers.  Module groups are never split.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not groups:
        return []
    target_chunks = max(1, min(len(groups), jobs * chunks_per_worker))
    per_chunk = max(1, len(groups) // target_chunks)
    chunks: List[List[TargetDescriptor]] = []
    for start in range(0, len(groups), per_chunk):
        chunk: List[TargetDescriptor] = []
        for group in groups[start : start + per_chunk]:
            chunk.extend(group)
        chunks.append(chunk)
    return chunks


class SweepExecutor:
    """Strategy interface for running per-target sweep work."""

    def run(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
    ) -> List[TargetRecords]:
        """Apply ``work`` to every descriptor's target.

        Returns one ``(descriptor index, payloads)`` entry per target,
        sorted by descriptor index — canonical sweep order.
        """
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """In-process execution, identical to the classic sweep loop."""

    def run(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
    ) -> List[TargetRecords]:
        return run_target_block(work, scale, seed, list(descriptors))


class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan target chunks out over a process pool.

    ``jobs`` workers each reconstruct their chunk's modules from the
    root seed; chunks are submitted eagerly and completed results are
    drained as they arrive, so scheduling is work-stealing at chunk
    granularity.  ``chunks_per_worker`` tunes the granularity (more
    chunks = finer stealing, more module rebuild overhead).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunks_per_worker: int = 4,
        start_method: Optional[str] = None,
    ):
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {resolved}")
        self.jobs = resolved
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method

    def _pool(self, max_workers: int) -> ProcessPoolExecutor:
        if self.start_method is None:
            return ProcessPoolExecutor(max_workers=max_workers)
        import multiprocessing

        context = multiprocessing.get_context(self.start_method)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def run(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
    ) -> List[TargetRecords]:
        chunks = chunk_groups(
            module_groups(descriptors), self.jobs, self.chunks_per_worker
        )
        if not chunks:
            return []
        if len(chunks) == 1 or self.jobs == 1:
            return run_target_block(work, scale, seed, list(descriptors))

        results: List[TargetRecords] = []
        pool = self._pool(min(self.jobs, len(chunks)))
        try:
            pending = {
                pool.submit(run_target_block, work, scale, seed, chunk)
                for chunk in chunks
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results.extend(future.result())
        except BaseException:
            # On Ctrl-C (or a worker raising) don't block on the queued
            # chunks — a default shutdown would run the sweep to
            # completion before re-raising.  Cancel what hasn't started
            # and kill the workers mid-chunk; determinism makes any
            # partial results worthless anyway.
            for future in pending:
                future.cancel()
            for process in getattr(pool, "_processes", {}).values():
                process.terminate()
            pool.shutdown(wait=False)
            raise
        else:
            pool.shutdown(wait=True)
        results.sort(key=lambda record: record[0])
        return results


def make_executor(
    jobs: Optional[int] = None, executor: Optional[SweepExecutor] = None
) -> SweepExecutor:
    """Resolve the executor for a sweep: explicit > jobs > serial."""
    if executor is not None:
        return executor
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolSweepExecutor(jobs)
