"""Parallel sweep execution engine (process pool + deterministic merge).

Every figure reproduction walks the Table-1 fleet target by target, and
each (module, bank, subarray-pair) target is independent — the same
embarrassingly-parallel structure the paper exploits by characterizing
28 modules on DRAM Bender boards.  This module fans a sweep's target
descriptors out across worker processes and merges the per-target
records back in canonical sweep order, so a parallel run is
bit-identical to a serial one.

Determinism contract
--------------------

Three properties make serial == parallel exact, not approximate:

* **Workers rebuild, never share.**  Only picklable
  :class:`~repro.characterization.runner.TargetDescriptor` handles cross
  the process boundary.  Each worker reconstructs its modules from the
  shared root seed; every random stream in the simulator hangs off a
  :class:`~repro.rng.SeedTree` by label path, so reconstruction is
  bit-exact regardless of which process performs it.
* **Module groups never split.**  Per-bank trial-noise generators
  advance as measurements run, so the targets of one module instance
  must be processed in enumeration order on one freshly-built module.
  The chunker partitions at :attr:`TargetDescriptor.module_key`
  boundaries and keeps each group intact.
* **Records merge in canonical order.**  Workers tag every record with
  its descriptor's enumeration index; the scheduler sorts the combined
  stream by that index before aggregation, so
  :class:`~repro.characterization.metrics.WeightedSamples` receives the
  same chunks in the same order as a serial sweep.

Work stealing: module groups are packed into many small chunks (about
four per worker by default) and submitted individually; idle workers
pull the next pending chunk, so one slow target (e.g. a
region-constrained pattern search) delays only its own chunk rather
than straggling a statically-assigned shard.

The batched trial engine (``Scale.batch_trials``, see
:mod:`repro.core.success`) composes with all of the above: the setting
rides inside the pickled work object, and because batched and serial
execution are bit-identical per measurement, ``--jobs N`` times
``--batch-trials k`` yields the same bits for every (N, k).

Resilience
----------

``run_resilient`` extends the contract to a hostile bench: a module
group that raises :class:`~repro.errors.TransientInfrastructureError`
(injected host timeouts, thermal setpoint dropouts, worker crashes) is
rebuilt from the seed tree and retried with exponential backoff; the
rebuild discards all partial state, so the eventual successful attempt
is bit-identical to a never-faulted run.  Groups that exhaust the retry
budget are quarantined whole (see
:class:`~repro.characterization.results.QuarantinedTarget`) and the
sweep completes degraded, with the loss documented in its
:class:`~repro.characterization.results.SweepHealth`.  A dead pool
worker breaks the pool; the scheduler drains what finished, rebuilds
the pool, and resubmits only the unfinished chunks.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ConfigurationError,
    TargetQuarantinedError,
    TransientInfrastructureError,
)
from ..faults import FaultPlan
from .resilience import (
    BlockOutcome,
    Resilience,
    RetryPolicy,
    SweepOutcome,
    SweepSession,
)
from .results import QuarantinedTarget, SweepHealth
from .runner import Scale, SweepTarget, TargetDescriptor, materialize_targets

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "make_executor",
    "module_groups",
    "chunk_groups",
    "run_target_block",
    "run_group_with_retry",
    "RETRYABLE",
]

#: A unit of per-target work: runs measurements on one live target and
#: returns picklable result payloads (the sweep drivers use
#: ``(label, rates, weight)`` tuples).
TargetWork = Callable[[SweepTarget], List[tuple]]

#: One target's results: (descriptor index, payloads).
TargetRecords = Tuple[int, List[tuple]]

#: Errors worth retrying: transient infrastructure failures only.  A
#: :class:`~repro.errors.ThermalError` from a genuinely unreachable
#: setpoint, or any programming error, must fail loudly — retrying a
#: deterministic failure can only hide it.
RETRYABLE = (TransientInfrastructureError,)


def run_target_block(
    work: TargetWork,
    scale: Scale,
    seed: int,
    descriptors: Sequence[TargetDescriptor],
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
) -> List[TargetRecords]:
    """Run ``work`` over a block of descriptors, in order.

    This is the single execution path shared by the serial executor and
    the pool workers: materialize targets (reusing one module per
    ``module_key`` group), apply ``work``, tag results with the
    descriptor index.  Sharing it is what makes serial/parallel
    equivalence structural rather than coincidental.

    With a fault plan, each module carries an injector scoped by module
    key and ``attempt``; transient errors escaping ``work`` are tagged
    with the descriptor being measured (``error.descriptor``) so the
    retry layer can attribute quarantines precisely.
    """
    results: List[TargetRecords] = []
    targets = materialize_targets(
        descriptors, scale, seed, faults=faults, attempt=attempt
    )
    for descriptor, target in zip(descriptors, targets):
        if faults is not None:
            reason = faults.target_fault(descriptor.describe(), attempt)
            if reason is not None:
                error = TransientInfrastructureError(
                    f"{descriptor.describe()}: {reason}"
                )
                error.descriptor = descriptor
                raise error
        try:
            results.append((descriptor.index, work(target)))
        except RETRYABLE as error:
            if getattr(error, "descriptor", None) is None:
                error.descriptor = descriptor
            raise
    return results


def module_groups(
    descriptors: Sequence[TargetDescriptor],
) -> List[List[TargetDescriptor]]:
    """Split descriptors into per-module groups, preserving order."""
    groups: List[List[TargetDescriptor]] = []
    for descriptor in descriptors:
        if groups and groups[-1][0].module_key == descriptor.module_key:
            groups[-1].append(descriptor)
        else:
            groups.append([descriptor])
    return groups


def chunk_groups(
    groups: Sequence[List[TargetDescriptor]],
    jobs: int,
    chunks_per_worker: int = 4,
) -> List[List[TargetDescriptor]]:
    """Pack module groups into scheduling chunks.

    Aims for about ``chunks_per_worker`` chunks per worker: small enough
    that idle workers keep stealing work from the tail of the sweep,
    large enough that module-construction overhead amortizes when there
    are many more modules than workers.  Module groups are never split.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not groups:
        return []
    target_chunks = max(1, min(len(groups), jobs * chunks_per_worker))
    per_chunk = max(1, len(groups) // target_chunks)
    chunks: List[List[TargetDescriptor]] = []
    for start in range(0, len(groups), per_chunk):
        chunk: List[TargetDescriptor] = []
        for group in groups[start : start + per_chunk]:
            chunk.extend(group)
        chunks.append(chunk)
    return chunks


def run_group_with_retry(
    work: TargetWork,
    scale: Scale,
    seed: int,
    group: Sequence[TargetDescriptor],
    faults: Optional[FaultPlan],
    retry: RetryPolicy,
) -> BlockOutcome:
    """Run one module group, retrying transient failures whole.

    A retry rebuilds the entire group from the seed tree: per-bank trial
    noise advances as measurements run, so resuming mid-group would
    diverge from a fault-free run.  Discarding and rebuilding makes the
    eventual success bit-identical instead.  On budget exhaustion the
    whole group is quarantined (the failing target named, module-mates
    marked collateral) — or, with ``retry.quarantine`` off, the error
    escalates as :class:`~repro.errors.TargetQuarantinedError`.
    """
    outcome = BlockOutcome()
    last_error: Optional[BaseException] = None
    for attempt in range(retry.max_attempts):
        if attempt:
            time.sleep(retry.delay_s(attempt))
            outcome.retries += 1
        outcome.attempts += 1
        try:
            records = run_target_block(
                work, scale, seed, list(group), faults=faults, attempt=attempt
            )
        except RETRYABLE as error:
            last_error = error
            continue
        outcome.records.extend(records)
        return outcome

    failing = getattr(last_error, "descriptor", None)
    if not retry.quarantine:
        label = failing.describe() if failing is not None else "sweep target"
        raise TargetQuarantinedError(
            f"{label} failed after {retry.max_attempts} attempt(s): {last_error}"
        ) from last_error
    for descriptor in group:
        collateral = failing is not None and descriptor.index != failing.index
        reason = (
            "module-mate of a quarantined target (module groups rerun "
            f"whole): {last_error}"
            if collateral
            else str(last_error)
        )
        outcome.quarantined.append(
            QuarantinedTarget(
                index=descriptor.index,
                label=descriptor.describe(),
                reason=reason,
                attempts=retry.max_attempts,
                collateral=collateral,
            )
        )
    return outcome


def run_block_resilient(
    work: TargetWork,
    scale: Scale,
    seed: int,
    descriptors: Sequence[TargetDescriptor],
    faults: Optional[FaultPlan],
    retry: RetryPolicy,
) -> BlockOutcome:
    """Run a block of module groups with per-group retry/quarantine."""
    outcome = BlockOutcome()
    for group in module_groups(descriptors):
        outcome.merge(run_group_with_retry(work, scale, seed, group, faults, retry))
    return outcome


def _resilient_chunk_worker(
    work: TargetWork,
    scale: Scale,
    seed: int,
    chunk: Sequence[TargetDescriptor],
    faults: Optional[FaultPlan],
    retry: RetryPolicy,
    chunk_attempt: int,
) -> BlockOutcome:
    """Pool worker entry point; may die abruptly under a fault plan."""
    if faults is not None and chunk and faults.worker_death_due(
        chunk[0].index, chunk_attempt
    ):
        # Simulated worker crash: bypass all Python cleanup, exactly like
        # an OOM kill.  The parent sees BrokenProcessPool.
        os._exit(86)
    return run_block_resilient(work, scale, seed, descriptors=chunk, faults=faults, retry=retry)


class SweepExecutor:
    """Strategy interface for running per-target sweep work."""

    def run(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
    ) -> List[TargetRecords]:
        """Apply ``work`` to every descriptor's target.

        Returns one ``(descriptor index, payloads)`` entry per target,
        sorted by descriptor index — canonical sweep order.  This is the
        fault-free entry point; it is exactly ``run_resilient`` with a
        default (no-fault, no-checkpoint) configuration.
        """
        return self.run_resilient(work, scale, seed, descriptors).records

    def run_resilient(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
        resilience: Optional[Resilience] = None,
    ) -> SweepOutcome:
        """Apply ``work`` with retry, quarantine, and checkpointing.

        Subclasses implement this; the base class provides a degraded
        fallback for legacy executors that only override :meth:`run`
        (their records are wrapped in a minimal health report, without
        retry or checkpoint support).
        """
        if type(self).run is not SweepExecutor.run:
            records = self.run(work, scale, seed, list(descriptors))
            health = SweepHealth(
                total_targets=len(descriptors),
                completed_targets=len(records),
                attempts=len(module_groups(list(descriptors))),
            )
            if resilience is not None:
                resilience.health.merge(health)
            return SweepOutcome(records=records, health=health)
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """In-process execution, identical to the classic sweep loop."""

    def run_resilient(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
        resilience: Optional[Resilience] = None,
    ) -> SweepOutcome:
        descriptors = list(descriptors)
        session = SweepSession(resilience, work, scale, seed, descriptors)
        groups = session.pending_groups(module_groups(descriptors))
        try:
            for group in groups:
                session.absorb_block(
                    run_group_with_retry(
                        work, scale, seed, group, session.faults, session.retry
                    )
                )
        except BaseException:
            # Ctrl-C (or any crash) must not lose finished module groups:
            # flush them to the checkpoint before propagating, so the
            # next --resume picks up exactly where this run stopped.
            session.flush()
            raise
        return session.finalize()


class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan target chunks out over a process pool.

    ``jobs`` workers each reconstruct their chunk's modules from the
    root seed; chunks are submitted eagerly and completed results are
    drained as they arrive, so scheduling is work-stealing at chunk
    granularity.  ``chunks_per_worker`` tunes the granularity (more
    chunks = finer stealing, more module rebuild overhead).

    A worker death breaks the whole pool (``BrokenProcessPool``); the
    scheduler keeps every result already shipped back, rebuilds the
    pool, and resubmits only the unfinished chunks, up to the retry
    budget.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunks_per_worker: int = 4,
        start_method: Optional[str] = None,
    ):
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {resolved}")
        self.jobs = resolved
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method

    def _pool(self, max_workers: int) -> ProcessPoolExecutor:
        if self.start_method is None:
            return ProcessPoolExecutor(max_workers=max_workers)
        import multiprocessing

        context = multiprocessing.get_context(self.start_method)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def run_resilient(
        self,
        work: TargetWork,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
        resilience: Optional[Resilience] = None,
    ) -> SweepOutcome:
        descriptors = list(descriptors)
        session = SweepSession(resilience, work, scale, seed, descriptors)
        groups = session.pending_groups(module_groups(descriptors))
        chunks = chunk_groups(groups, self.jobs, self.chunks_per_worker)
        if not chunks:
            return session.finalize()
        faults, retry = session.faults, session.retry

        if len(chunks) == 1 or self.jobs == 1:
            try:
                for group in groups:
                    session.absorb_block(
                        run_group_with_retry(work, scale, seed, group, faults, retry)
                    )
            except BaseException:
                session.flush()
                raise
            return session.finalize()

        restarts = 0
        pool = self._pool(min(self.jobs, len(chunks)))
        pending: Dict[Future, Tuple[List[TargetDescriptor], int]] = {}
        try:
            for chunk in chunks:
                future = pool.submit(
                    _resilient_chunk_worker, work, scale, seed, chunk,
                    faults, retry, 0,
                )
                pending[future] = (chunk, 0)
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                broken: List[Tuple[List[TargetDescriptor], int]] = []
                for future in done:
                    chunk, chunk_attempt = pending.pop(future)
                    try:
                        session.absorb_block(future.result())
                    except (BrokenExecutor, CancelledError):
                        broken.append((chunk, chunk_attempt))
                if not broken:
                    continue
                # A dead worker poisons the whole pool: every still-pending
                # future has (or will get) BrokenProcessPool.  Drain the
                # results that made it back, collect the rest for
                # resubmission on a fresh pool.
                for future, (chunk, chunk_attempt) in list(pending.items()):
                    del pending[future]
                    try:
                        session.absorb_block(future.result())
                    except (BrokenExecutor, CancelledError):
                        broken.append((chunk, chunk_attempt))
                pool.shutdown(wait=False)
                restarts += 1
                session.note_worker_restart()
                if restarts > retry.max_attempts:
                    raise TransientInfrastructureError(
                        f"worker pool died {restarts} times "
                        f"(retry budget {retry.max_attempts}); giving up"
                    )
                pool = self._pool(min(self.jobs, len(broken)))
                for chunk, chunk_attempt in broken:
                    future = pool.submit(
                        _resilient_chunk_worker, work, scale, seed, chunk,
                        faults, retry, chunk_attempt + 1,
                    )
                    pending[future] = (chunk, chunk_attempt + 1)
        except BaseException:
            # On Ctrl-C (or an unrecoverable worker error) don't block on
            # the queued chunks — a default shutdown would run the sweep
            # to completion before re-raising.  Flush what finished to
            # the checkpoint, cancel what hasn't started, and kill the
            # workers mid-chunk; determinism makes their partial results
            # worthless anyway.
            session.flush()
            for future in pending:
                future.cancel()
            for process in (getattr(pool, "_processes", None) or {}).values():
                process.terminate()
            pool.shutdown(wait=False)
            raise
        else:
            pool.shutdown(wait=True)
        return session.finalize()


def make_executor(
    jobs: Optional[int] = None, executor: Optional[SweepExecutor] = None
) -> SweepExecutor:
    """Resolve the executor for a sweep: explicit > jobs > serial."""
    if executor is not None:
        return executor
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolSweepExecutor(jobs)
