"""Resilient sweep execution: retry policy, quarantine bookkeeping, and
atomic checkpoint/resume.

A paper-scale characterization campaign (10,000 trials per cell across
hundreds of chips) runs for hours; this module makes a sweep *survive*
that horizon instead of restarting it:

* :class:`RetryPolicy` — exponential backoff with bounded attempts for
  transient infrastructure failures, and the quarantine-vs-raise choice
  once the budget is exhausted.
* :class:`Resilience` — the per-run configuration bundle (fault plan,
  retry policy, checkpoint directory, resume flag) threaded from the
  CLI down to the executors, plus the accumulated
  :class:`~repro.characterization.results.SweepHealth`.
* :class:`CheckpointStore` — an atomically-written JSON snapshot of the
  records completed so far, fingerprinted against the sweep definition
  so ``--resume`` refuses to splice incompatible runs together.
* :class:`SweepSession` — the bookkeeping shared by the serial and
  process-pool executors: which module groups are already done, when to
  checkpoint, and how to fold per-block outcomes into health metrics.

Determinism contract: a checkpoint stores exactly the per-target record
payloads (label, per-cell rates, weight); floats survive the JSON round
trip bit-exactly (``repr``-based serialization), and records merge back
in canonical descriptor order, so a resumed run is bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..atomicio import atomic_write_json
from ..errors import ConfigurationError
from ..faults import FaultPlan
from .results import QuarantinedTarget, SweepHealth
from .runner import Scale, TargetDescriptor

__all__ = [
    "RetryPolicy",
    "Resilience",
    "BlockOutcome",
    "SweepOutcome",
    "CheckpointStore",
    "SweepSession",
    "sweep_fingerprint",
    "add_resilience_arguments",
    "resilience_from_args",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried, and what exhaustion means.

    A module group that raises
    :class:`~repro.errors.TransientInfrastructureError` is rebuilt from
    its seed tree and re-run after an exponentially growing delay, up to
    ``max_attempts`` total attempts.  On exhaustion the group is
    quarantined (``quarantine=True``, the default: the sweep completes
    degraded with a provenance report) or the error escalates as
    :class:`~repro.errors.TargetQuarantinedError` (``quarantine=False``,
    fail-fast for CI).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay_s(self, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based)."""
        return min(
            self.max_backoff_s,
            self.backoff_s * self.backoff_factor ** (retry_number - 1),
        )


@dataclass
class Resilience:
    """Configuration bundle for one resilient run.

    One instance is threaded through
    :func:`~repro.characterization.experiments.run_experiment` into every
    sweep; ``health`` accumulates across the experiment's sweeps and is
    attached to the returned
    :class:`~repro.characterization.results.ExperimentResult`.  With
    ``checkpoint_dir`` set, each sweep writes an atomic JSON checkpoint
    (``<tag>-sweep<NN>.json``) as module groups complete; ``resume=True``
    loads compatible checkpoints and skips the finished groups.
    """

    faults: Optional[FaultPlan] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: Checkpoint after this many completed blocks (module groups on the
    #: serial path, scheduler chunks on the pool path).
    checkpoint_every: int = 1
    tag: str = "sweep"
    health: SweepHealth = field(default_factory=SweepHealth)
    _sweep_counter: int = field(default=0, repr=False)

    def begin_experiment(self, tag: str) -> None:
        """Reset per-experiment state (sweep numbering and health)."""
        self.tag = tag
        self._sweep_counter = 0
        self.health = SweepHealth()

    def next_checkpoint_path(self) -> Optional[str]:
        """Allocate the checkpoint path for the next sweep (or ``None``).

        Sweeps within an experiment run in a fixed order, so the ordinal
        naming is stable across runs — which is what lets a resumed
        process find the right file again.
        """
        if self.checkpoint_dir is None:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        path = os.path.join(
            self.checkpoint_dir, f"{self.tag}-sweep{self._sweep_counter:02d}.json"
        )
        self._sweep_counter += 1
        return path


#: One target's results: (descriptor index, payloads) — re-exported shape
#: from :mod:`repro.characterization.parallel`.
TargetRecords = Tuple[int, List[tuple]]


@dataclass
class BlockOutcome:
    """Result of resiliently running one block of module groups.

    Picklable: this is what pool workers ship back to the scheduler.
    """

    records: List[TargetRecords] = field(default_factory=list)
    attempts: int = 0
    retries: int = 0
    quarantined: List[QuarantinedTarget] = field(default_factory=list)

    def merge(self, other: "BlockOutcome") -> None:
        self.records.extend(other.records)
        self.attempts += other.attempts
        self.retries += other.retries
        self.quarantined.extend(other.quarantined)


@dataclass
class SweepOutcome:
    """What a resilient sweep returns: records plus health."""

    records: List[TargetRecords]
    health: SweepHealth


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------


def work_fingerprint(obj: object) -> str:
    """A process-stable token describing a work object.

    ``repr`` is not usable: function objects render with memory
    addresses.  Dataclasses fingerprint field by field, callables by
    qualified name; a work object may override the whole token with a
    ``fingerprint_token()`` method (used by tests that interrupt a sweep
    with an instrumented work object, then resume with the plain one).
    """
    token = getattr(obj, "fingerprint_token", None)
    if callable(token):
        return str(token())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields marked ``engine_only`` configure *how* the work
        # executes (e.g. the batched trial engine), never what it
        # measures — they must not split checkpoint compatibility.
        parts = ", ".join(
            f"{f.name}={work_fingerprint(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
            if not f.metadata.get("engine_only")
        )
        return f"{type(obj).__module__}.{type(obj).__qualname__}({parts})"
    if callable(obj):
        return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"
    if isinstance(obj, (list, tuple)):
        inner = ", ".join(work_fingerprint(item) for item in obj)
        return f"[{inner}]"
    return repr(obj)


def sweep_fingerprint(
    work: object,
    scale: Scale,
    seed: int,
    descriptors: Sequence[TargetDescriptor],
    faults: Optional[FaultPlan],
) -> str:
    """Identity of a sweep definition, for checkpoint compatibility.

    Two runs share a fingerprint exactly when they would produce
    bit-identical records for every target — same work, scale, seed,
    descriptor enumeration, and fault plan.  Job count and the trial
    engine (``Scale.batch_trials``) deliberately do not participate:
    serial, pooled, batched, and per-trial execution are all
    interchangeable, so a sweep checkpointed under any combination may
    resume under any other.
    """
    digest = hashlib.sha256()
    digest.update(work_fingerprint(work).encode("utf-8"))
    canonical_scale = dataclasses.replace(scale, batch_trials=0)
    digest.update(repr(canonical_scale).encode("utf-8"))
    digest.update(str(int(seed)).encode("ascii"))
    for descriptor in descriptors:
        digest.update(repr(dataclasses.astuple(descriptor)).encode("utf-8"))
    digest.update(
        faults.to_json().encode("utf-8") if faults is not None else b"no-faults"
    )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------


def _records_to_json(records: Sequence[TargetRecords]) -> List[list]:
    serialized = []
    for index, payloads in records:
        rows = []
        for label, rates, weight in payloads:
            values = np.asarray(rates, dtype=np.float64).reshape(-1)
            rows.append([str(label), [float(v) for v in values], int(weight)])
        serialized.append([int(index), rows])
    return serialized


def _records_from_json(serialized: Sequence[list]) -> List[TargetRecords]:
    records: List[TargetRecords] = []
    for index, rows in serialized:
        payloads = [
            (str(label), np.asarray(values, dtype=np.float64), int(weight))
            for label, values, weight in rows
        ]
        records.append((int(index), payloads))
    return records


class CheckpointStore:
    """Atomically-written JSON snapshot of a sweep's completed records.

    The store is keyed by :func:`sweep_fingerprint`; loading a file whose
    fingerprint differs raises
    :class:`~repro.errors.ConfigurationError` — a resumed run must never
    silently splice records from a different sweep definition.

    Record payloads must follow the sweep-driver convention
    ``(label, per-cell rates, weight)``; rates round-trip through JSON
    bit-exactly.
    """

    VERSION = 1

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(
        self,
    ) -> Optional[Tuple[List[TargetRecords], List[QuarantinedTarget], float]]:
        """Completed records, quarantine list, and checkpoint age.

        Returns ``None`` when no checkpoint exists yet.
        """
        if not self.exists():
            return None
        age_s = max(0.0, time.time() - os.path.getmtime(self.path))
        with open(self.path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"checkpoint {self.path!r} is not valid JSON ({error}); "
                    "checkpoints are written atomically, so this file did "
                    "not come from an interrupted run — delete it to start "
                    "fresh"
                ) from error
        if payload.get("version") != self.VERSION:
            raise ConfigurationError(
                f"checkpoint {self.path!r} has version "
                f"{payload.get('version')!r}, expected {self.VERSION}"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise ConfigurationError(
                f"checkpoint {self.path!r} belongs to a different sweep "
                "definition (seed, scale, fault plan, or experiment "
                "changed); refusing to resume from it"
            )
        records = _records_from_json(payload.get("records", []))
        quarantined = [
            QuarantinedTarget.from_dict(q) for q in payload.get("quarantined", [])
        ]
        return records, quarantined, age_s

    def save(
        self,
        records: Sequence[TargetRecords],
        quarantined: Sequence[QuarantinedTarget],
        health: SweepHealth,
    ) -> None:
        payload = {
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "records": _records_to_json(
                sorted(records, key=lambda record: record[0])
            ),
            "quarantined": [target.to_dict() for target in quarantined],
            "health": health.to_dict(),
        }
        atomic_write_json(self.path, payload)


# ----------------------------------------------------------------------
# per-sweep session bookkeeping
# ----------------------------------------------------------------------


class SweepSession:
    """Checkpoint/resume/health bookkeeping for one sweep execution.

    Both executors drive the same session protocol: filter the module
    groups down to the pending ones, absorb each completed
    :class:`BlockOutcome` (checkpointing periodically), ``flush()`` on
    interruption, and ``finalize()`` into a :class:`SweepOutcome` whose
    records sit in canonical descriptor order.
    """

    def __init__(
        self,
        resilience: Optional[Resilience],
        work: object,
        scale: Scale,
        seed: int,
        descriptors: Sequence[TargetDescriptor],
    ):
        self.resilience = resilience if resilience is not None else Resilience()
        self.faults = self.resilience.faults
        self.retry = self.resilience.retry
        self.health = SweepHealth(total_targets=len(descriptors))
        self.records: List[TargetRecords] = []
        self.quarantined: List[QuarantinedTarget] = []
        self._done: Set[int] = set()
        self._since_checkpoint = 0
        self.store: Optional[CheckpointStore] = None
        path = self.resilience.next_checkpoint_path()
        if path is not None:
            self.store = CheckpointStore(
                path,
                sweep_fingerprint(work, scale, seed, descriptors, self.faults),
            )
            if self.resilience.resume:
                loaded = self.store.load()
                if loaded is not None:
                    self.records, self.quarantined, age_s = loaded
                    self._done = {index for index, _ in self.records}
                    self._done.update(q.index for q in self.quarantined)
                    self.health.resumed_targets = len(self._done)
                    self.health.checkpoint_age_s = age_s

    def pending_groups(
        self, groups: Sequence[List[TargetDescriptor]]
    ) -> List[List[TargetDescriptor]]:
        """Module groups not yet covered by the loaded checkpoint.

        A group reruns whole if *any* of its targets is missing — module
        groups are the unit of bit-reproducibility, and ``absorb_block``
        deduplicates the overlap.
        """
        return [
            group
            for group in groups
            if any(d.index not in self._done for d in group)
        ]

    def absorb_block(self, outcome: BlockOutcome) -> None:
        """Fold one completed block into records, health, and checkpoint."""
        self.health.attempts += outcome.attempts
        self.health.retries += outcome.retries
        for record in outcome.records:
            if record[0] not in self._done:
                self._done.add(record[0])
                self.records.append(record)
        for target in outcome.quarantined:
            if target.index not in self._done:
                self._done.add(target.index)
                self.quarantined.append(target)
        self._since_checkpoint += 1
        if (
            self.store is not None
            and self._since_checkpoint >= self.resilience.checkpoint_every
        ):
            self.flush()

    def note_worker_restart(self) -> None:
        self.health.worker_restarts += 1

    def flush(self) -> None:
        """Write the checkpoint now (atomic; safe to call at any time)."""
        if self.store is None:
            return
        self.store.save(self.records, self.quarantined, self.health)
        self.health.checkpoints_written += 1
        self._since_checkpoint = 0

    def finalize(self) -> SweepOutcome:
        """Sort records canonically, final-flush, and fold health upward."""
        self.records.sort(key=lambda record: record[0])
        self.quarantined.sort(key=lambda target: target.index)
        self.health.completed_targets = len(self.records)
        self.health.quarantined = self.quarantined
        if self.store is not None:
            self.flush()
        self.resilience.health.merge(self.health)
        return SweepOutcome(records=self.records, health=self.health)


# ----------------------------------------------------------------------
# CLI plumbing shared by the figure CLI and the analysis report
# ----------------------------------------------------------------------


def add_resilience_arguments(parser) -> None:
    """Install the ``--faults/--checkpoint-dir/--resume/--max-attempts``
    flags on an :mod:`argparse` parser."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--faults",
        metavar="PATH",
        help="JSON fault plan to inject (see repro.faults.FaultPlan)",
    )
    group.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write an atomic JSON checkpoint per sweep into DIR as "
        "module groups complete",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="resume from compatible checkpoints in --checkpoint-dir, "
        "skipping already-completed module groups",
    )
    group.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per module group for transient failures "
        f"(default {RetryPolicy.max_attempts})",
    )


def resilience_from_args(args) -> Optional[Resilience]:
    """Build a :class:`Resilience` from parsed CLI args, or ``None``.

    Returns ``None`` when no resilience flag was used, keeping the
    default CLI path byte-for-byte identical to the pre-resilience one.
    Raises :class:`~repro.errors.ConfigurationError` for ``--resume``
    without ``--checkpoint-dir``.
    """
    if args.resume and not args.checkpoint_dir:
        raise ConfigurationError("--resume requires --checkpoint-dir")
    if (
        args.faults is None
        and args.checkpoint_dir is None
        and args.max_attempts is None
    ):
        return None
    retry = (
        RetryPolicy()
        if args.max_attempts is None
        else RetryPolicy(max_attempts=args.max_attempts)
    )
    return Resilience(
        faults=FaultPlan.load(args.faults) if args.faults else None,
        retry=retry,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
