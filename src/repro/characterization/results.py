"""Experiment result containers and text rendering.

Every table/figure reproduction returns an :class:`ExperimentResult`:
an ordered mapping from group label (the paper figure's x-axis value,
e.g. ``"8:16"`` or ``"AND n=4 @70C"``) to :class:`BoxStats`, plus
free-form extras (heatmap grids, raw tables) and human-readable notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import BoxStats

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    groups: "Dict[str, BoxStats]" = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_group(self, label: str, stats: BoxStats) -> None:
        self.groups[label] = stats

    def mean_of(self, label: str) -> float:
        return self.groups[label].mean

    def group_means(self) -> Dict[str, float]:
        return {label: stats.mean for label, stats in self.groups.items()}

    def format_table(self, percent: bool = True) -> str:
        """Render the groups as an aligned text table."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.groups:
            width = max(len(label) for label in self.groups)
            for label, stats in self.groups.items():
                lines.append(f"  {label:<{width}}  {stats.format_percent()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def format_heatmap(
        self, key: str = "heatmap", axis_labels: Optional[List[str]] = None
    ) -> str:
        """Render an extras 3x3 heatmap (Figs. 9 and 17) as text."""
        grid = self.extras.get(key)
        if grid is None:
            raise KeyError(f"no extras entry {key!r}")
        labels = axis_labels or ["Close", "Middle", "Far"]
        header = "          " + "".join(f"{label:>9}" for label in labels)
        lines = [f"== {self.experiment_id}: {key} (rows=first axis) ==", header]
        for i, row_label in enumerate(labels):
            cells = []
            for j in range(len(labels)):
                value = grid.get((i, j))
                cells.append(f"{value * 100:8.1f}%" if value is not None else "      --")
            lines.append(f"{row_label:>9} " + "".join(cells))
        return "\n".join(lines)
