"""Experiment result containers and text rendering.

Every table/figure reproduction returns an :class:`ExperimentResult`:
an ordered mapping from group label (the paper figure's x-axis value,
e.g. ``"8:16"`` or ``"AND n=4 @70C"``) to :class:`BoxStats`, plus
free-form extras (heatmap grids, raw tables) and human-readable notes.

Resilient sweeps additionally attach a :class:`SweepHealth`: how many
attempts and retries the sweep needed, which targets were quarantined
(and why), and what was resumed from a checkpoint — the structured
degradation report that makes a partial result trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import BoxStats

__all__ = ["ExperimentResult", "QuarantinedTarget", "SweepHealth"]


@dataclass(frozen=True)
class QuarantinedTarget:
    """One sweep target excluded after exhausting its retry budget.

    ``collateral`` marks targets that were healthy themselves but share
    a module instance with a quarantined target: per-bank trial-noise
    generators advance as measurements run, so a module group is only
    bit-reproducible when processed whole — a bad target therefore takes
    its module-mates out of the sweep with it, and the report says so.
    """

    index: int
    label: str
    reason: str
    attempts: int
    collateral: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "reason": self.reason,
            "attempts": self.attempts,
            "collateral": self.collateral,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QuarantinedTarget":
        return cls(
            index=int(payload["index"]),
            label=str(payload["label"]),
            reason=str(payload["reason"]),
            attempts=int(payload["attempts"]),
            collateral=bool(payload.get("collateral", False)),
        )


@dataclass
class SweepHealth:
    """Per-sweep reliability metrics (accumulates across an experiment).

    ``attempts`` counts module-group executions including retries;
    ``retries`` counts only the re-executions.  ``resumed_targets`` is
    how many targets were loaded from a checkpoint instead of measured,
    and ``checkpoint_age_s`` the age of that checkpoint at load time.
    """

    total_targets: int = 0
    completed_targets: int = 0
    attempts: int = 0
    retries: int = 0
    resumed_targets: int = 0
    checkpoints_written: int = 0
    worker_restarts: int = 0
    checkpoint_age_s: Optional[float] = None
    quarantined: List[QuarantinedTarget] = field(default_factory=list)

    @property
    def quarantined_count(self) -> int:
        return len(self.quarantined)

    @property
    def degraded(self) -> bool:
        """Whether the sweep completed with less than the full fleet."""
        return bool(self.quarantined)

    def merge(self, other: "SweepHealth") -> None:
        """Fold another sweep's health into this one."""
        self.total_targets += other.total_targets
        self.completed_targets += other.completed_targets
        self.attempts += other.attempts
        self.retries += other.retries
        self.resumed_targets += other.resumed_targets
        self.checkpoints_written += other.checkpoints_written
        self.worker_restarts += other.worker_restarts
        if other.checkpoint_age_s is not None:
            self.checkpoint_age_s = max(
                self.checkpoint_age_s or 0.0, other.checkpoint_age_s
            )
        self.quarantined.extend(other.quarantined)

    def summary_lines(self) -> List[str]:
        """Human-readable degradation report."""
        lines = [
            f"targets: {self.completed_targets}/{self.total_targets} completed"
            + (f", {self.resumed_targets} resumed from checkpoint"
               if self.resumed_targets else "")
            + (f", {self.quarantined_count} quarantined"
               if self.quarantined else ""),
            f"attempts: {self.attempts} ({self.retries} retries"
            + (f", {self.worker_restarts} worker restarts"
               if self.worker_restarts else "")
            + ")",
        ]
        if self.checkpoints_written or self.checkpoint_age_s is not None:
            age = (
                f", resumed checkpoint was {self.checkpoint_age_s:.1f}s old"
                if self.checkpoint_age_s is not None
                else ""
            )
            lines.append(f"checkpoints written: {self.checkpoints_written}{age}")
        for target in self.quarantined:
            lines.append(
                f"quarantined {target.label} after {target.attempts} "
                f"attempt(s): {target.reason}"
            )
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_targets": self.total_targets,
            "completed_targets": self.completed_targets,
            "attempts": self.attempts,
            "retries": self.retries,
            "resumed_targets": self.resumed_targets,
            "checkpoints_written": self.checkpoints_written,
            "worker_restarts": self.worker_restarts,
            "checkpoint_age_s": self.checkpoint_age_s,
            "quarantined": [target.to_dict() for target in self.quarantined],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepHealth":
        health = cls(
            total_targets=int(payload.get("total_targets", 0)),
            completed_targets=int(payload.get("completed_targets", 0)),
            attempts=int(payload.get("attempts", 0)),
            retries=int(payload.get("retries", 0)),
            resumed_targets=int(payload.get("resumed_targets", 0)),
            checkpoints_written=int(payload.get("checkpoints_written", 0)),
            worker_restarts=int(payload.get("worker_restarts", 0)),
        )
        if payload.get("checkpoint_age_s") is not None:
            health.checkpoint_age_s = float(payload["checkpoint_age_s"])
        health.quarantined = [
            QuarantinedTarget.from_dict(q) for q in payload.get("quarantined", [])
        ]
        return health


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    groups: "Dict[str, BoxStats]" = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Reliability metrics, attached when the run used a
    #: :class:`~repro.characterization.resilience.Resilience` config.
    health: Optional[SweepHealth] = None

    def add_group(self, label: str, stats: BoxStats) -> None:
        self.groups[label] = stats

    def mean_of(self, label: str) -> float:
        return self.groups[label].mean

    def group_means(self) -> Dict[str, float]:
        return {label: stats.mean for label, stats in self.groups.items()}

    def format_table(self, percent: bool = True) -> str:
        """Render the groups as an aligned text table."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.groups:
            width = max(len(label) for label in self.groups)
            for label, stats in self.groups.items():
                lines.append(f"  {label:<{width}}  {stats.format_percent()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def format_health(self) -> str:
        """Render the degradation report, or ``""`` when none attached."""
        if self.health is None:
            return ""
        lines = [f"== {self.experiment_id}: sweep health =="]
        lines.extend(f"  {line}" for line in self.health.summary_lines())
        return "\n".join(lines)

    def format_heatmap(
        self, key: str = "heatmap", axis_labels: Optional[List[str]] = None
    ) -> str:
        """Render an extras 3x3 heatmap (Figs. 9 and 17) as text."""
        grid = self.extras.get(key)
        if grid is None:
            raise KeyError(f"no extras entry {key!r}")
        labels = axis_labels or ["Close", "Middle", "Far"]
        header = "          " + "".join(f"{label:>9}" for label in labels)
        lines = [f"== {self.experiment_id}: {key} (rows=first axis) ==", header]
        for i, row_label in enumerate(labels):
            cells = []
            for j in range(len(labels)):
                value = grid.get((i, j))
                cells.append(f"{value * 100:8.1f}%" if value is not None else "      --")
            lines.append(f"{row_label:>9} " + "".join(cells))
        return "\n".join(lines)
