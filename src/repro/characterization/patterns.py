"""Named data patterns used by the characterization (§5.2, §6.2).

The paper initializes rows with two independent random patterns (RAND1
and RAND2), the fixed all-1s and all-0s patterns, and — for the
data-pattern-dependence study — per-row all-1s/all-0s assignments.
Checkerboards are included for coupling-stress tests beyond the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "all_ones",
    "all_zeros",
    "checkerboard",
    "random_pattern",
    "rand1_rand2",
]


def all_ones(width: int) -> np.ndarray:
    """The all-1s row pattern."""
    return np.ones(width, dtype=np.uint8)


def all_zeros(width: int) -> np.ndarray:
    """The all-0s row pattern."""
    return np.zeros(width, dtype=np.uint8)


def checkerboard(width: int, phase: int = 0) -> np.ndarray:
    """Alternating 0/1 columns; ``phase=1`` inverts it."""
    if phase not in (0, 1):
        raise ValueError(f"phase must be 0 or 1, got {phase}")
    return ((np.arange(width) + phase) % 2).astype(np.uint8)


def random_pattern(rng: np.random.Generator, width: int) -> np.ndarray:
    """A uniform random row pattern."""
    return rng.integers(0, 2, width, dtype=np.uint8)


def rand1_rand2(
    rng: np.random.Generator, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's RAND1/RAND2 pair: two independent random patterns."""
    return random_pattern(rng, width), random_pattern(rng, width)
