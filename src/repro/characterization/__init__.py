"""The paper's evaluation: fleet construction and per-figure experiments.

* :mod:`repro.characterization.fleet` — the Table-1 chip population
* :mod:`repro.characterization.metrics` — box statistics over cells
* :mod:`repro.characterization.runner` — sweep scales and target iteration
* :mod:`repro.characterization.experiments` — one module per table/figure
"""

from .experiments import REGISTRY, TITLES, run_experiment
from .fleet import all_specs, iter_modules, micron_specs, specs_for, table1_specs
from .metrics import BoxStats, WeightedSamples
from .parallel import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutor,
    make_executor,
)
from .resilience import Resilience, RetryPolicy, SweepOutcome
from .results import ExperimentResult, QuarantinedTarget, SweepHealth
from .runner import (
    DEFAULT,
    FULL,
    SMOKE,
    Scale,
    SweepTarget,
    TargetDescriptor,
    find_logic_measurement,
    find_not_measurement,
    good_cell_mask,
    iter_descriptors,
    iter_targets,
    materialize_targets,
    region_predicate,
)

__all__ = [
    "BoxStats",
    "DEFAULT",
    "ExperimentResult",
    "FULL",
    "ProcessPoolSweepExecutor",
    "QuarantinedTarget",
    "REGISTRY",
    "Resilience",
    "RetryPolicy",
    "SMOKE",
    "Scale",
    "SerialExecutor",
    "SweepExecutor",
    "SweepHealth",
    "SweepOutcome",
    "SweepTarget",
    "TITLES",
    "TargetDescriptor",
    "WeightedSamples",
    "all_specs",
    "find_logic_measurement",
    "find_not_measurement",
    "good_cell_mask",
    "iter_descriptors",
    "iter_modules",
    "iter_targets",
    "make_executor",
    "materialize_targets",
    "micron_specs",
    "region_predicate",
    "run_experiment",
    "specs_for",
    "table1_specs",
]
