"""The tested-chip population: Table 1 plus the non-working extras.

The paper tests 280 chips across 28 modules and focuses its analysis on
the 256 chips / 22 modules (SK Hynix + Samsung) where at least the NOT
operation works (§3.2).  This module encodes that population as
:class:`~repro.dram.config.ModuleSpec` values and instantiates simulated
modules from it.

Per Observation 2 and footnote 12, capability flags vary per module
type: some SK Hynix dies support both N:N and N:2N activation (up to 48
simultaneous rows), some only N:N (up to 32), and one 8Gb M-die module
tops out at 8:8.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..dram.config import (
    ActivationSupport,
    ChipConfig,
    ChipGeometry,
    Manufacturer,
    ModuleSpec,
)
from ..dram.module import Module
from ..rng import SeedTree

__all__ = [
    "table1_specs",
    "micron_specs",
    "all_specs",
    "specs_for",
    "iter_modules",
]


def _hynix(
    density: int,
    die: str,
    io: int,
    speed: int,
    modules: int,
    chips: int,
    date: Optional[str],
    n2n: bool,
    max_n: int = 16,
    geometry: Optional[ChipGeometry] = None,
) -> ModuleSpec:
    chip = ChipConfig(
        manufacturer=Manufacturer.SK_HYNIX,
        density_gb=density,
        die_revision=die,
        io_width=io,
        speed_rate_mts=speed,
        activation_support=ActivationSupport.SIMULTANEOUS,
        supports_n_to_2n=n2n,
        max_simultaneous_n=max_n,
        geometry=geometry or ChipGeometry(),
    )
    name = f"hynix-{density}gb-{die.lower()}-x{io}-{speed}"
    return ModuleSpec(
        name=name,
        chip=chip,
        chips_per_module=chips,
        module_count=modules,
        manufacture_date=date,
    )


def _samsung(
    density: int,
    die: str,
    speed: int,
    modules: int,
    date: str,
    geometry: Optional[ChipGeometry] = None,
) -> ModuleSpec:
    chip = ChipConfig(
        manufacturer=Manufacturer.SAMSUNG,
        density_gb=density,
        die_revision=die,
        io_width=8,
        speed_rate_mts=speed,
        activation_support=ActivationSupport.SEQUENTIAL_ONLY,
        supports_n_to_2n=False,
        max_simultaneous_n=1,
        geometry=geometry or ChipGeometry(),
    )
    name = f"samsung-{density}gb-{die.lower()}-x8-{speed}"
    return ModuleSpec(
        name=name,
        chip=chip,
        chips_per_module=8,
        module_count=modules,
        manufacture_date=date,
    )


def table1_specs(geometry: Optional[ChipGeometry] = None) -> List[ModuleSpec]:
    """The 22 modules / 256 chips of the paper's Table 1."""
    return [
        _hynix(4, "M", 8, 2666, 9, 8, None, n2n=True, geometry=geometry),
        _hynix(4, "A", 8, 2133, 5, 8, None, n2n=False, geometry=geometry),
        _hynix(8, "A", 8, 2666, 1, 16, None, n2n=True, geometry=geometry),
        _hynix(4, "A", 4, 2400, 1, 32, "18-14", n2n=False, geometry=geometry),
        _hynix(8, "A", 4, 2400, 1, 32, "16-49", n2n=True, geometry=geometry),
        _hynix(8, "M", 4, 2666, 1, 32, "16-22", n2n=False, max_n=8, geometry=geometry),
        _samsung(4, "F", 2666, 1, "21-02", geometry=geometry),
        _samsung(8, "D", 2133, 2, "21-10", geometry=geometry),
        _samsung(8, "A", 3200, 1, "22-12", geometry=geometry),
    ]


def micron_specs(geometry: Optional[ChipGeometry] = None) -> List[ModuleSpec]:
    """The 6 Micron modules (24 chips) where no operation works (§3.2)."""
    specs = []
    for density, die, speed, modules in ((4, "B", 2666, 2), (8, "B", 2400, 2), (8, "E", 2666, 2)):
        chip = ChipConfig(
            manufacturer=Manufacturer.MICRON,
            density_gb=density,
            die_revision=die,
            io_width=8,
            speed_rate_mts=speed,
            activation_support=ActivationSupport.NONE,
            supports_n_to_2n=False,
            geometry=geometry or ChipGeometry(),
        )
        specs.append(
            ModuleSpec(
                name=f"micron-{density}gb-{die.lower()}-x8-{speed}",
                chip=chip,
                chips_per_module=4,
                module_count=modules,
            )
        )
    return specs


def all_specs(geometry: Optional[ChipGeometry] = None) -> List[ModuleSpec]:
    """All 28 modules / 280 chips the paper tested."""
    return table1_specs(geometry) + micron_specs(geometry)


def specs_for(
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    geometry: Optional[ChipGeometry] = None,
    include_micron: bool = False,
) -> List[ModuleSpec]:
    """Table-1 specs filtered by manufacturer."""
    specs = all_specs(geometry) if include_micron else table1_specs(geometry)
    if manufacturers is None:
        return specs
    wanted = set(manufacturers)
    return [spec for spec in specs if spec.chip.manufacturer in wanted]


def iter_modules(
    specs: Iterable[ModuleSpec],
    modules_per_spec: int,
    chips_per_module: int,
    seed: int,
) -> Iterator[Tuple[ModuleSpec, Module]]:
    """Instantiate modules for a sweep, releasing state between them.

    ``modules_per_spec``/``chips_per_module`` subsample the real
    population (the aggregation code re-weights by each spec's true
    module count).  The caller must finish with one module before
    advancing the iterator: state is released on advance.
    """
    tree = SeedTree(seed)
    for spec in specs:
        count = min(modules_per_spec, spec.module_count)
        for module_index in range(count):
            module = Module.from_spec(
                spec,
                module_index=module_index,
                seed_tree=tree,
                chip_count=min(chips_per_module, spec.chips_per_module),
            )
            try:
                yield spec, module
            finally:
                module.release_state()
