"""Sweep machinery shared by all table/figure reproductions.

A *sweep* iterates the (sub-sampled) Table-1 fleet, yielding
:class:`SweepTarget` handles — one per (module instance, bank, subarray
pair) — and builds measurements on them.  :class:`Scale` bounds the
sweep so the same experiment code runs as a seconds-long benchmark or a
paper-scale overnight job.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..bender.infrastructure import TestingInfrastructure
from ..core.addressing import find_pattern_pair
from ..core.success import (
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    SuccessResult,
)
from ..dram.config import ActivationSupport, ChipGeometry, Manufacturer, ModuleSpec
from ..dram.decoder import ActivationKind, ActivationPattern
from ..dram.module import Module
from ..errors import ReverseEngineeringError
from ..rng import SeedTree, derive_seed
from .fleet import specs_for

__all__ = [
    "Scale",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "SweepTarget",
    "iter_targets",
    "find_not_measurement",
    "find_logic_measurement",
    "region_predicate",
    "good_cell_mask",
]


@dataclass(frozen=True)
class Scale:
    """How much of the paper-scale experiment a sweep actually runs."""

    name: str
    modules_per_spec: int
    chips_per_module: int
    banks_per_module: int
    pairs_per_bank: int
    trials: int
    geometry: ChipGeometry

    def with_trials(self, trials: int) -> "Scale":
        return replace(self, trials=trials)


#: Minimal scale for unit tests: one tiny module per spec.
SMOKE = Scale(
    name="smoke",
    modules_per_spec=1,
    chips_per_module=1,
    banks_per_module=1,
    pairs_per_bank=1,
    trials=40,
    geometry=ChipGeometry(
        banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
    ),
)

#: Benchmark scale: minutes for the full figure set.
DEFAULT = Scale(
    name="default",
    modules_per_spec=1,
    chips_per_module=2,
    banks_per_module=1,
    pairs_per_bank=2,
    trials=150,
    geometry=ChipGeometry(
        banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
    ),
)

#: Closer to the paper's sweep (all 16 banks / 4 pairs / 10k trials is
#: still larger; this is the overnight setting).
FULL = Scale(
    name="full",
    modules_per_spec=2,
    chips_per_module=4,
    banks_per_module=2,
    pairs_per_bank=2,
    trials=600,
    geometry=ChipGeometry(
        banks=4, subarrays_per_bank=8, rows_per_subarray=640, columns=128
    ),
)


@dataclass
class SweepTarget:
    """One (module instance, bank, neighboring subarray pair) to measure."""

    spec: ModuleSpec
    module: Module
    infra: TestingInfrastructure
    bank: int
    subarray_pair: Tuple[int, int]
    #: Population weight: how many real Table-1 modules this instance
    #: stands for.
    weight: int

    @property
    def manufacturer(self) -> Manufacturer:
        return self.spec.chip.manufacturer

    @property
    def supports_simultaneous(self) -> bool:
        return (
            self.spec.chip.activation_support is ActivationSupport.SIMULTANEOUS
        )

    def label(self) -> str:
        return (
            f"{self.spec.name}#{self.module.name} "
            f"bank{self.bank} pair{self.subarray_pair}"
        )

    def pair_seed(self, *context: str) -> int:
        """A stable seed for address-pair discovery on this target."""
        return derive_seed(
            0, self.spec.name, f"bank-{self.bank}", str(self.subarray_pair), *context
        ) % (1 << 31)


def iter_targets(
    scale: Scale,
    seed: int = 0,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    include_micron: bool = False,
) -> Iterator[SweepTarget]:
    """Iterate sweep targets over the (sub-sampled) fleet.

    Module state is released when the iterator advances past a module,
    so peak memory stays at one module's worth of banks.
    """
    specs = specs_for(
        manufacturers, geometry=scale.geometry, include_micron=include_micron
    )
    tree = SeedTree(seed)
    pairs = _spread_pairs(scale)
    for spec in specs:
        instantiated = min(scale.modules_per_spec, spec.module_count)
        weight = max(1, round(spec.module_count / instantiated))
        for module_index in range(instantiated):
            module = Module.from_spec(
                spec,
                module_index=module_index,
                seed_tree=tree,
                chip_count=min(scale.chips_per_module, spec.chips_per_module),
            )
            infra = TestingInfrastructure(module)
            try:
                for bank in range(scale.banks_per_module):
                    for pair in pairs:
                        yield SweepTarget(
                            spec=spec,
                            module=module,
                            infra=infra,
                            bank=bank,
                            subarray_pair=pair,
                            weight=weight,
                        )
            finally:
                module.release_state()


def _spread_pairs(scale: Scale) -> List[Tuple[int, int]]:
    """Non-overlapping neighboring pairs, spread across the bank."""
    available = [
        (s, s + 1) for s in range(0, scale.geometry.subarrays_per_bank - 1, 2)
    ]
    return available[: scale.pairs_per_bank]


# ----------------------------------------------------------------------
# measurement construction
# ----------------------------------------------------------------------

PatternPredicate = Callable[[ActivationPattern, int, int], bool]


def find_not_measurement(
    target: SweepTarget,
    n_destination: int,
    kind: Optional[ActivationKind] = None,
    predicate: Optional[PatternPredicate] = None,
    seed_context: str = "",
) -> Optional[NotSuccessMeasurement]:
    """Build a NOT measurement with ``n_destination`` destination rows.

    Returns ``None`` when the target chip cannot produce the requested
    pattern (Micron chips, Samsung with more than one destination row,
    N-capped dies, N:2N on N:N-only modules) — the paper's figures have
    exactly these gaps.
    """
    chip = target.spec.chip
    support = chip.activation_support
    if support is ActivationSupport.NONE:
        return None

    if kind is None:
        if support is ActivationSupport.SEQUENTIAL_ONLY:
            if n_destination != 1:
                return None
            kind, n = ActivationKind.SEQUENTIAL, 1
        elif n_destination in (1, 2, 4, 8, 16):
            kind, n = ActivationKind.N_TO_N, n_destination
        elif n_destination == 32:
            kind, n = ActivationKind.N_TO_2N, 16
        else:
            raise ValueError(f"unsupported destination-row count {n_destination}")
    else:
        n = n_destination if kind is not ActivationKind.N_TO_2N else n_destination // 2

    if kind is ActivationKind.N_TO_2N and not chip.supports_n_to_2n:
        return None
    if n > chip.max_simultaneous_n:
        return None

    try:
        src_row, dst_row = find_pattern_pair(
            target.module.decoder,
            chip.geometry,
            target.bank,
            target.subarray_pair[0],
            target.subarray_pair[1],
            n,
            kind,
            seed=target.pair_seed("not", str(n_destination), str(kind), seed_context),
            predicate=predicate,
            max_tries=60_000,
        )
    except ReverseEngineeringError:
        return None
    return NotSuccessMeasurement(target.infra.host, target.bank, src_row, dst_row)


def find_logic_measurement(
    target: SweepTarget,
    base_op: str,
    n_inputs: int,
    predicate: Optional[PatternPredicate] = None,
    seed_context: str = "",
) -> Optional[LogicSuccessMeasurement]:
    """Build an N-input logic measurement, or ``None`` if unsupported."""
    chip = target.spec.chip
    if chip.activation_support is not ActivationSupport.SIMULTANEOUS:
        return None
    if n_inputs > chip.max_simultaneous_n or n_inputs < 2:
        return None
    try:
        ref_row, com_row = find_pattern_pair(
            target.module.decoder,
            chip.geometry,
            target.bank,
            target.subarray_pair[0],
            target.subarray_pair[1],
            n_inputs,
            ActivationKind.N_TO_N,
            # The pair seed deliberately excludes base_op: AND/NAND and
            # OR/NOR comparisons (Obs. 12/13) must run on the *same*
            # physical rows, or design-induced variation confounds them.
            seed=target.pair_seed("logic", str(n_inputs), seed_context),
            predicate=predicate,
            max_tries=60_000,
        )
    except ReverseEngineeringError:
        return None
    return LogicSuccessMeasurement(
        target.infra.host, target.bank, ref_row, com_row, base_op=base_op
    )


def region_predicate(
    target: SweepTarget, first_region: int, last_region: int
) -> PatternPredicate:
    """Predicate selecting patterns whose activated-row sets fall in the
    requested Close/Middle/Far regions (Figs. 9 and 17)."""
    bank = target.module.chips[0].bank(target.bank)

    def predicate(pattern: ActivationPattern, row_first: int, row_last: int) -> bool:
        if not pattern.rows_first or not pattern.rows_last:
            return False
        regions = bank.pattern_regions(pattern)
        return regions == (first_region, last_region)

    return predicate


def good_cell_mask(result: SuccessResult, threshold: float = 0.9) -> np.ndarray:
    """Cells with success rate above ``threshold`` — the paper restricts
    its temperature and logic-op sweeps to such cells (footnote 8)."""
    return result.rates >= threshold
