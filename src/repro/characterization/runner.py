"""Sweep machinery shared by all table/figure reproductions.

A *sweep* iterates the (sub-sampled) Table-1 fleet, yielding
:class:`SweepTarget` handles — one per (module instance, bank, subarray
pair) — and builds measurements on them.  :class:`Scale` bounds the
sweep so the same experiment code runs as a seconds-long benchmark or a
paper-scale overnight job.

The sweep order is defined once, by :func:`iter_descriptors`, in terms
of lightweight picklable :class:`TargetDescriptor` handles.  The serial
path (:func:`iter_targets`) and the process-pool path
(:mod:`repro.characterization.parallel`) both materialize live
:class:`SweepTarget` objects from the same descriptor stream, so the two
execution modes measure bit-identical fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..bender.infrastructure import TestingInfrastructure
from ..core.addressing import find_pattern_pair
from ..core.success import (
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    SuccessResult,
)
from ..dram.config import ActivationSupport, ChipGeometry, Manufacturer, ModuleSpec
from ..dram.decoder import ActivationKind, ActivationPattern
from ..dram.module import Module
from ..errors import ConfigurationError, ReverseEngineeringError
from ..rng import SeedTree, derive_seed
from .fleet import all_specs, specs_for

__all__ = [
    "Scale",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "SweepTarget",
    "TargetDescriptor",
    "iter_descriptors",
    "iter_targets",
    "materialize_targets",
    "spec_by_name",
    "find_not_measurement",
    "find_logic_measurement",
    "region_predicate",
    "good_cell_mask",
]


@dataclass(frozen=True)
class Scale:
    """How much of the paper-scale experiment a sweep actually runs.

    ``batch_trials`` selects the trial execution engine for every
    measurement in the sweep: ``0`` (the default) runs whole trial
    blocks as one batched NumPy evaluation, ``1`` recovers the serial
    per-trial path, and larger values cap the batch block size.  All
    settings produce bit-identical results — the knob only trades
    memory for speed.

    ``backend`` selects the substrate engine serving every measurement
    (a :mod:`repro.substrate` specification string).  Unlike
    ``batch_trials`` it is part of the sweep's *identity*: a surrogate
    sweep measures a fitted table, not the analog model, so checkpoints
    from different backends never splice.  The default, ``"analog"``,
    is bit-identical to the pre-substrate code paths.
    """

    name: str
    modules_per_spec: int
    chips_per_module: int
    banks_per_module: int
    pairs_per_bank: int
    trials: int
    geometry: ChipGeometry
    batch_trials: int = 0
    backend: str = "analog"

    def with_trials(self, trials: int) -> "Scale":
        return replace(self, trials=trials)

    def with_batch_trials(self, batch_trials: int) -> "Scale":
        if batch_trials < 0:
            raise ValueError(
                f"batch_trials must be >= 0, got {batch_trials}"
            )
        return replace(self, batch_trials=batch_trials)

    def with_backend(self, backend: str) -> "Scale":
        """This scale with measurements served by ``backend`` (a
        :func:`repro.substrate.resolve_backend` specification string)."""
        if not backend:
            raise ValueError("backend spec must be a non-empty string")
        return replace(self, backend=backend)


#: Minimal scale for unit tests: one tiny module per spec.
SMOKE = Scale(
    name="smoke",
    modules_per_spec=1,
    chips_per_module=1,
    banks_per_module=1,
    pairs_per_bank=1,
    trials=40,
    geometry=ChipGeometry(
        banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
    ),
)

#: Benchmark scale: minutes for the full figure set.
DEFAULT = Scale(
    name="default",
    modules_per_spec=1,
    chips_per_module=2,
    banks_per_module=1,
    pairs_per_bank=2,
    trials=150,
    geometry=ChipGeometry(
        banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
    ),
)

#: Closer to the paper's sweep (all 16 banks / 4 pairs / 10k trials is
#: still larger; this is the overnight setting).
FULL = Scale(
    name="full",
    modules_per_spec=2,
    chips_per_module=4,
    banks_per_module=2,
    pairs_per_bank=2,
    trials=600,
    geometry=ChipGeometry(
        banks=4, subarrays_per_bank=8, rows_per_subarray=640, columns=128
    ),
)


@dataclass
class SweepTarget:
    """One (module instance, bank, neighboring subarray pair) to measure."""

    spec: ModuleSpec
    module: Module
    infra: TestingInfrastructure
    bank: int
    subarray_pair: Tuple[int, int]
    #: Population weight: how many real Table-1 modules this instance
    #: stands for.
    weight: int

    @property
    def manufacturer(self) -> Manufacturer:
        return self.spec.chip.manufacturer

    @property
    def supports_simultaneous(self) -> bool:
        return (
            self.spec.chip.activation_support is ActivationSupport.SIMULTANEOUS
        )

    def label(self) -> str:
        return (
            f"{self.spec.name}#{self.module.name} "
            f"bank{self.bank} pair{self.subarray_pair}"
        )

    def pair_seed(self, *context: str) -> int:
        """A stable seed for address-pair discovery on this target."""
        return derive_seed(
            0, self.spec.name, f"bank-{self.bank}", str(self.subarray_pair), *context
        ) % (1 << 31)


@dataclass(frozen=True)
class TargetDescriptor:
    """A picklable handle naming one sweep target without live state.

    Descriptors carry exactly the coordinates a worker process needs to
    reconstruct the corresponding :class:`SweepTarget` from the shared
    root seed: the spec (by name), the module instance, and the
    (bank, subarray-pair) coordinates within it.  ``index`` is the
    target's position in the canonical sweep enumeration and is the sort
    key used to merge parallel results back in deterministic order.
    """

    index: int
    spec_name: str
    module_index: int
    chip_count: int
    bank: int
    subarray_pair: Tuple[int, int]
    weight: int

    @property
    def module_key(self) -> Tuple[str, int]:
        """Targets sharing this key live on the same module instance.

        Per-bank trial-noise generators advance as measurements run, so
        all targets of one module must be processed in enumeration order
        on one freshly-built module instance for results to be
        bit-identical across execution strategies.  Schedulers must
        never split a ``module_key`` group across workers.
        """
        return (self.spec_name, self.module_index)

    def describe(self) -> str:
        """Stable human-readable label, usable before materialization.

        This is the label fault plans match ``broken_targets`` /
        ``flaky_targets`` substrings against, and the one quarantine
        reports cite.
        """
        return (
            f"{self.spec_name}[{self.module_index}] "
            f"bank{self.bank} pair{self.subarray_pair}"
        )


def iter_descriptors(
    scale: Scale,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    include_micron: bool = False,
) -> List[TargetDescriptor]:
    """The canonical sweep enumeration as picklable descriptors."""
    specs = specs_for(
        manufacturers, geometry=scale.geometry, include_micron=include_micron
    )
    pairs = _spread_pairs(scale)
    descriptors: List[TargetDescriptor] = []
    index = 0
    for spec in specs:
        instantiated = min(scale.modules_per_spec, spec.module_count)
        weight = max(1, round(spec.module_count / instantiated))
        chip_count = min(scale.chips_per_module, spec.chips_per_module)
        for module_index in range(instantiated):
            for bank in range(scale.banks_per_module):
                for pair in pairs:
                    descriptors.append(
                        TargetDescriptor(
                            index=index,
                            spec_name=spec.name,
                            module_index=module_index,
                            chip_count=chip_count,
                            bank=bank,
                            subarray_pair=pair,
                            weight=weight,
                        )
                    )
                    index += 1
    return descriptors


def spec_by_name(scale: Scale) -> Dict[str, ModuleSpec]:
    """Spec lookup for descriptor materialization (all 28 module types)."""
    return {spec.name: spec for spec in all_specs(geometry=scale.geometry)}


def materialize_targets(
    descriptors: Sequence[TargetDescriptor],
    scale: Scale,
    seed: int = 0,
    faults=None,
    attempt: int = 0,
) -> Iterator[SweepTarget]:
    """Reconstruct live :class:`SweepTarget` objects from descriptors.

    Consecutive descriptors sharing a :attr:`TargetDescriptor.module_key`
    reuse one module instance (and its testing infrastructure), exactly
    like the serial sweep; the module's state is released when the
    iterator advances past its last descriptor.  Because every random
    stream hangs off ``SeedTree(seed)`` by label path, the reconstructed
    module is bit-identical no matter which process builds it.

    ``faults`` (a :class:`~repro.faults.FaultPlan`) attaches a
    fault injector to each module's testing infrastructure, scoped by
    module key and retry ``attempt``.  Fault scheduling hashes its own
    seed namespace, so a ``None`` plan and an all-zero plan build
    bit-identical fleets.
    """
    specs = spec_by_name(scale)
    tree = SeedTree(seed)
    pending = list(descriptors)
    position = 0
    while position < len(pending):
        descriptor = pending[position]
        try:
            spec = specs[descriptor.spec_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown module spec {descriptor.spec_name!r} in descriptor"
            ) from None
        module = Module.from_spec(
            spec,
            module_index=descriptor.module_index,
            seed_tree=tree,
            chip_count=descriptor.chip_count,
        )
        injector = None
        if faults is not None and faults.bench_active:
            injector = faults.injector(
                descriptor.spec_name,
                f"module-{descriptor.module_index}",
                attempt=attempt,
            )
        infra = TestingInfrastructure(module, fault_injector=injector)
        try:
            while (
                position < len(pending)
                and pending[position].module_key == descriptor.module_key
            ):
                current = pending[position]
                yield SweepTarget(
                    spec=spec,
                    module=module,
                    infra=infra,
                    bank=current.bank,
                    subarray_pair=current.subarray_pair,
                    weight=current.weight,
                )
                position += 1
        finally:
            module.release_state()


def iter_targets(
    scale: Scale,
    seed: int = 0,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    include_micron: bool = False,
) -> Iterator[SweepTarget]:
    """Iterate sweep targets over the (sub-sampled) fleet.

    Module state is released when the iterator advances past a module,
    so peak memory stays at one module's worth of banks.
    """
    descriptors = iter_descriptors(
        scale, manufacturers=manufacturers, include_micron=include_micron
    )
    return materialize_targets(descriptors, scale, seed)


def _spread_pairs(scale: Scale) -> List[Tuple[int, int]]:
    """Non-overlapping neighboring pairs, spread across the bank."""
    available = [
        (s, s + 1) for s in range(0, scale.geometry.subarrays_per_bank - 1, 2)
    ]
    return available[: scale.pairs_per_bank]


# ----------------------------------------------------------------------
# measurement construction
# ----------------------------------------------------------------------

PatternPredicate = Callable[[ActivationPattern, int, int], bool]


def find_not_measurement(
    target: SweepTarget,
    n_destination: int,
    kind: Optional[ActivationKind] = None,
    predicate: Optional[PatternPredicate] = None,
    seed_context: str = "",
) -> Optional[NotSuccessMeasurement]:
    """Build a NOT measurement with ``n_destination`` destination rows.

    Returns ``None`` when the target chip cannot produce the requested
    pattern (Micron chips, Samsung with more than one destination row,
    N-capped dies, N:2N on N:N-only modules) — the paper's figures have
    exactly these gaps.
    """
    chip = target.spec.chip
    support = chip.activation_support
    if support is ActivationSupport.NONE:
        return None

    if kind is None:
        if support is ActivationSupport.SEQUENTIAL_ONLY:
            if n_destination != 1:
                return None
            kind, n = ActivationKind.SEQUENTIAL, 1
        elif n_destination in (1, 2, 4, 8, 16):
            kind, n = ActivationKind.N_TO_N, n_destination
        elif n_destination == 32:
            kind, n = ActivationKind.N_TO_2N, 16
        else:
            raise ValueError(f"unsupported destination-row count {n_destination}")
    else:
        n = n_destination if kind is not ActivationKind.N_TO_2N else n_destination // 2

    if kind is ActivationKind.N_TO_2N and not chip.supports_n_to_2n:
        return None
    if n > chip.max_simultaneous_n:
        return None

    try:
        src_row, dst_row = find_pattern_pair(
            target.module.decoder,
            chip.geometry,
            target.bank,
            target.subarray_pair[0],
            target.subarray_pair[1],
            n,
            kind,
            seed=target.pair_seed("not", str(n_destination), str(kind), seed_context),
            predicate=predicate,
            max_tries=60_000,
        )
    except ReverseEngineeringError:
        return None
    return NotSuccessMeasurement(target.infra.host, target.bank, src_row, dst_row)


def find_logic_measurement(
    target: SweepTarget,
    base_op: str,
    n_inputs: int,
    predicate: Optional[PatternPredicate] = None,
    seed_context: str = "",
) -> Optional[LogicSuccessMeasurement]:
    """Build an N-input logic measurement, or ``None`` if unsupported."""
    chip = target.spec.chip
    if chip.activation_support is not ActivationSupport.SIMULTANEOUS:
        return None
    if n_inputs > chip.max_simultaneous_n or n_inputs < 2:
        return None
    try:
        ref_row, com_row = find_pattern_pair(
            target.module.decoder,
            chip.geometry,
            target.bank,
            target.subarray_pair[0],
            target.subarray_pair[1],
            n_inputs,
            ActivationKind.N_TO_N,
            # The pair seed deliberately excludes base_op: AND/NAND and
            # OR/NOR comparisons (Obs. 12/13) must run on the *same*
            # physical rows, or design-induced variation confounds them.
            seed=target.pair_seed("logic", str(n_inputs), seed_context),
            predicate=predicate,
            max_tries=60_000,
        )
    except ReverseEngineeringError:
        return None
    return LogicSuccessMeasurement(
        target.infra.host, target.bank, ref_row, com_row, base_op=base_op
    )


def region_predicate(
    target: SweepTarget, first_region: int, last_region: int
) -> PatternPredicate:
    """Predicate selecting patterns whose activated-row sets fall in the
    requested Close/Middle/Far regions (Figs. 9 and 17).

    The bank is resolved lazily at call time: capturing the bank object
    eagerly would pin a stale instance once the target's module releases
    and lazily re-instantiates its state (as happens when targets are
    reconstructed inside pool workers).
    """

    def predicate(pattern: ActivationPattern, row_first: int, row_last: int) -> bool:
        if not pattern.rows_first or not pattern.rows_last:
            return False
        bank = target.module.chips[0].bank(target.bank)
        return bank.pattern_regions(pattern) == (first_region, last_region)

    return predicate


def good_cell_mask(result: SuccessResult, threshold: float = 0.9) -> np.ndarray:
    """Cells with success rate above ``threshold`` — the paper restricts
    its temperature and logic-op sweeps to such cells (footnote 8)."""
    return result.rates >= threshold
