"""Run one table/figure reproduction from the command line.

Usage::

    python -m repro.characterization fig15 --scale default --seed 0
    python -m repro.characterization --list

Resilience flags: ``--faults PLAN.json`` injects bench failures,
``--checkpoint-dir DIR`` writes atomic per-sweep checkpoints, and
``--resume`` continues an interrupted run from them (bit-identical to an
uninterrupted run on surviving targets, serial or ``--jobs N``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..analysis.boxplot import render_boxes
from ..analysis.compare import compare_experiment
from .experiments import REGISTRY, TITLES, run_experiment
from .resilience import add_resilience_arguments, resilience_from_args
from .runner import DEFAULT, FULL, SMOKE

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def _backend_spec(parser: argparse.ArgumentParser, args: argparse.Namespace) -> str:
    """Combine the backend flags into a substrate specification string."""
    if args.backend == "surrogate":
        if not args.surrogate_table:
            parser.error("--backend surrogate requires --surrogate-table")
        return f"surrogate:{args.surrogate_table}"
    if args.backend in ("trace-record", "trace-replay"):
        if not args.trace:
            parser.error(f"--backend {args.backend} requires --trace")
        return f"{args.backend}:{args.trace}"
    if args.surrogate_table or args.trace:
        parser.error(
            "--surrogate-table/--trace only apply to the surrogate and "
            "trace backends"
        )
    return "analog"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.characterization", description=__doc__
    )
    parser.add_argument("experiment", nargs="?", help="experiment id, e.g. fig15")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="default")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial; results "
        "are bit-identical at any job count)",
    )
    parser.add_argument(
        "--batch-trials",
        type=int,
        default=0,
        help="trial execution engine: 0 (default) batches whole trial "
        "blocks as one vectorized evaluation, 1 runs the serial "
        "per-trial path, k>1 caps the batch block size; results are "
        "bit-identical at any setting",
    )
    parser.add_argument(
        "--backend",
        choices=("analog", "surrogate", "trace-record", "trace-replay"),
        default="analog",
        help="substrate engine serving the measurements: 'analog' (the "
        "default, bit-identical to historical runs), 'surrogate' (a "
        "fitted table, needs --surrogate-table), or trace "
        "record/replay (need --trace)",
    )
    parser.add_argument(
        "--surrogate-table",
        default=None,
        metavar="PATH",
        help="fitted table for --backend surrogate "
        "(python -m repro.substrate fit)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace file to write (--backend trace-record) or serve "
        "(--backend trace-replay)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    add_resilience_arguments(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.batch_trials < 0:
        parser.error(f"--batch-trials must be >= 0, got {args.batch_trials}")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    backend_spec = _backend_spec(parser, args)

    if args.list or not args.experiment:
        for experiment_id in sorted(REGISTRY):
            print(f"{experiment_id:>8}  {TITLES[experiment_id]}")
        return 0

    # staticcheck: ignore[DET203] progress timer for the console, not a result
    start = time.time()
    result = run_experiment(
        args.experiment,
        scale=_SCALES[args.scale]
        .with_batch_trials(args.batch_trials)
        .with_backend(backend_spec),
        seed=args.seed,
        jobs=args.jobs,
        resilience=resilience_from_args(args),
    )
    if backend_spec.startswith("trace-record"):
        from ..substrate import resolve_backend

        resolve_backend(backend_spec).finalize()
        print(f"[trace recorded to {args.trace}]")
    print(result.format_table())
    health_text = result.format_health()
    if health_text:
        print()
        print(health_text)
    if result.groups:
        print()
        print(render_boxes(result.groups))
    for key in sorted(result.extras):
        if key.startswith("heatmap"):
            print()
            print(result.format_heatmap(key=key))
    if "table" in result.extras:
        print()
        print(result.extras["table"])
    rows = compare_experiment(result)
    if rows:
        print("\npaper-vs-measured:")
        for row in rows:
            measured = (
                "n/a"
                if row.measured_value is None
                else f"{row.measured_value * 100:7.2f}%"
            )
            print(
                f"  {row.metric:<45} paper {row.paper_value * 100:7.2f}%  "
                f"measured {measured}"
            )
    elapsed = time.time() - start  # staticcheck: ignore[DET203]
    print(f"\n[{args.experiment} at scale {args.scale}: {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
