"""End-to-end Processing-using-DRAM runtime (PiDRAM/SIMDRAM framing).

* :mod:`repro.system.runtime` — vector handles, subarray-aware
  allocation, in-DRAM data movement, and Boolean computation without
  manual row management.
"""

from .runtime import (
    JobResult,
    PudRuntime,
    RuntimeStats,
    TenantStats,
    VectorHandle,
)

__all__ = [
    "JobResult",
    "PudRuntime",
    "RuntimeStats",
    "TenantStats",
    "VectorHandle",
]
