"""An end-to-end Processing-using-DRAM runtime.

The raw operations (:mod:`repro.core`) require the caller to know which
rows an address pair activates.  Real PuD frameworks (PiDRAM [42],
SIMDRAM [32]) hide that behind a runtime: applications allocate vectors,
the runtime places them in operation-compatible rows and moves data —
*inside DRAM* — to wherever the next operation needs it.

:class:`PudRuntime` implements that for one neighboring subarray pair:

* **Placement** — at construction it reverse-engineers (via the decoder
  lookup, i.e. the §4 characterization result) one N:N operation block
  per fan-in *per side*, plus NOT address pairs in both directions, and
  reserves their rows.  Every other row of the pair becomes an
  allocatable vector slot.
* **Handles** — :meth:`store` returns a :class:`VectorHandle`; vectors
  live in DRAM until :meth:`load` copies them out.
* **In-DRAM movement** — operands reach an operation block by RowClone
  (same-subarray copy).  Crossing to the *other* subarray is special:
  the shared sense amplifier's terminals are complementary, so any
  crossing operation (NOT, NAND, NOR) inverts.  A short induction shows
  the consequence: values storable on a vector's home side are exactly
  the *monotone* functions of the stored data, and the other side holds
  their complements.  A polarity-preserving cross-subarray move — and
  therefore any non-monotone function such as XOR — cannot be computed
  by the neighboring-subarray operation set alone; the memory
  controller must re-stage a result as a fresh operand (a row read plus
  a row write), exactly as PiDRAM-style end-to-end systems do.  The
  runtime performs that staging automatically and counts it.
* **Accounting** — every activation-level primitive and every
  controller staging transfer is counted, so applications can see what
  their expression really cost.
* **Jobs** — :meth:`PudRuntime.submit_job` is the service-level entry
  point: it places operands, runs the operation, *verifies* the result
  against the ideal Boolean output, and on a verification failure
  quarantines the operation block and fails over to another (same side
  first, then across the pair) before giving up.
* **Reliability-aware placement** — when constructed with a
  :mod:`repro.substrate` backend that can estimate success
  probabilities (the surrogate), block selection prefers the block with
  the highest estimate and skips blocks below ``min_block_success``;
  with the default analog backend (no estimates) selection keeps the
  historical smallest-sufficient-fan-in policy, bit-identically.
* **Bounded-error execution** — ``submit_job(..., error_bound=...)``
  runs *without* an oracle: the runtime picks a
  :class:`~repro.reliability.schemes.MitigationScheme` (from a tuned
  :class:`~repro.reliability.policy.PolicyTable` or on the fly from
  backend estimates), then encodes, votes, and retries transparently.
  Voting is a controller-side decide — the runtime reads the replicated
  output-terminal rows, takes per-lane majorities, and re-stages the
  decided bits as a fresh vector (one counted host transfer), exactly
  like the monotone-closure staging above.  When no non-quarantined
  block has a scheme meeting the bound, the job raises a typed
  :class:`~repro.errors.ReliabilityUnsatisfiableError` instead of
  silently degrading.

All computation happens on the *shared columns* of the subarray pair:
a vector holds ``lane_count`` bits, one per shared sense amplifier.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..bender.host import DramBenderHost
from ..core.addressing import find_pattern_pair
from ..core.layout import bank_rows, module_shared_columns
from ..core.logic import LogicOperation, ideal_output
from ..core.not_op import NotOperation
from ..core.rowclone import rowclone
from ..dram.decoder import ActivationKind
from ..errors import (
    IsolationError,
    ReliabilityError,
    ReliabilityUnsatisfiableError,
    ReproError,
    ReverseEngineeringError,
)
from ..reliability.policy import PolicyTable
from ..reliability.schemes import MitigationScheme
from ..reliability.tuner import DEFAULT_P_SLACK, TuneGrid, select_scheme
from ..staticcheck.diagnostics import RULES, Diagnostic, format_diagnostics

if TYPE_CHECKING:
    from ..substrate.base import SubstrateBackend

__all__ = [
    "PudRuntime",
    "VectorHandle",
    "RuntimeStats",
    "TenantStats",
    "JobResult",
    "ISOLATION_MODES",
    "quarantine_clamp_diagnostic",
]

_FANINS = (2, 4, 8, 16)

#: Admission-gate modes for :meth:`PudRuntime.submit_job`.
ISOLATION_MODES = ("warn", "error", "off")


def quarantine_clamp_diagnostic(
    side: int, requested: int, clamped: int
) -> Diagnostic:
    """The structured CC411 diagnostic for a clamped quarantine request.

    :meth:`PudRuntime.quarantine_block` emits this when asked to
    quarantine a fan-in larger than any block on the side — the clamp
    still quarantines the largest block, but the mismatch usually means
    the caller's model of the placement has drifted.
    """
    rule = RULES["CC411"]
    return Diagnostic(
        rule="CC411",
        severity=rule.severity,
        message=(
            f"quarantine_block: no fan-in-{requested} block on side "
            f"{side}; clamping to the largest available ({clamped})"
        ),
        hint=rule.hint,
        program=f"quarantine_block(side={side}, n={requested})",
    )


@dataclass
class TenantStats:
    """Per-tenant slice of the runtime's accounting.

    Jobs name their tenant via ``submit_job(..., tenant=...)``; every
    primitive the job issues is charged here as well as to the global
    :class:`RuntimeStats`, so a multi-tenant service can attribute
    reliability overhead (votes, retries) to the workload that paid it.
    """

    jobs: int = 0
    encoded_jobs: int = 0
    logic_ops: int = 0
    votes_cast: int = 0
    op_retries: int = 0
    host_transfers: int = 0
    isolation_refusals: int = 0
    isolation_warnings: int = 0

    def __str__(self) -> str:
        text = (
            f"{self.jobs} jobs ({self.encoded_jobs} encoded), "
            f"{self.logic_ops} logic ops, {self.votes_cast} votes, "
            f"{self.op_retries} retries, {self.host_transfers} host "
            "stagings"
        )
        if self.isolation_refusals or self.isolation_warnings:
            text += (
                f"; isolation: {self.isolation_refusals} refusals, "
                f"{self.isolation_warnings} warnings"
            )
        return text


@dataclass
class RuntimeStats:
    """Counts of the primitives the runtime issued.

    ``host_transfers`` counts controller stagings (row read + write):
    the cost of computing beyond the in-DRAM monotone closure.  The
    reliability counters attribute mitigation overhead: ``votes_cast``
    is total voted executions, ``op_retries`` is extra detect-retry
    executions beyond the first attempt, ``encoded_jobs`` counts
    bounded-error job submissions, and ``mitigation_fallbacks`` counts
    blocks skipped because no scheme met the bound there.
    """

    logic_ops: int = 0
    not_ops: int = 0
    rowclones: int = 0
    host_transfers: int = 0
    jobs_submitted: int = 0
    verify_failures: int = 0
    failovers: int = 0
    votes_cast: int = 0
    op_retries: int = 0
    encoded_jobs: int = 0
    mitigation_fallbacks: int = 0
    #: Jobs the admission gate refused (``verify_isolation="error"``).
    isolation_refusals: int = 0
    #: Jobs admitted with findings (``verify_isolation="warn"``).
    isolation_warnings: int = 0
    #: Oversized quarantine requests clamped to the largest block (CC411).
    quarantine_clamps: int = 0
    per_tenant: Dict[str, TenantStats] = field(default_factory=dict)

    @property
    def total_programs(self) -> int:
        return self.logic_ops + self.not_ops + self.rowclones

    def tenant(self, name: str) -> TenantStats:
        """The (auto-created) accounting slice for one tenant."""
        return self.per_tenant.setdefault(name, TenantStats())

    def __str__(self) -> str:
        text = (
            f"{self.logic_ops} logic ops, {self.not_ops} NOTs, "
            f"{self.rowclones} RowClones, {self.host_transfers} host "
            "stagings"
        )
        if self.encoded_jobs or self.votes_cast or self.op_retries:
            text += (
                f"; reliability: {self.encoded_jobs} encoded jobs, "
                f"{self.votes_cast} votes, {self.op_retries} retries, "
                f"{self.mitigation_fallbacks} fallbacks"
            )
        return text

    def describe_tenants(self) -> List[str]:
        """One accounting line per tenant, sorted by name."""
        return [
            f"{name}: {stats}"
            for name, stats in sorted(self.per_tenant.items())
        ]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one :meth:`PudRuntime.submit_job`."""

    #: The per-lane output bits (oracle-verified on the legacy path,
    #: mitigation-decided on the bounded-error path).
    output: np.ndarray
    op: str
    #: The (side, fan-in) operation block that produced the result.
    block: Tuple[int, int]
    #: Execution attempts, counting the successful one.
    attempts: int
    #: Blocks quarantined by this job's verification failures.
    quarantined: Tuple[Tuple[int, int], ...]
    #: Mitigation scheme label on the bounded-error path (``None`` on
    #: the legacy oracle-verified path).
    scheme: Optional[str] = None
    #: Voted executions the bounded-error path ran (0 on legacy path).
    votes: int = 0


@dataclass(frozen=True)
class VectorHandle:
    """An allocated bit vector living in DRAM.

    ``side`` is 0 or 1: which subarray of the runtime's pair holds it.
    Handles are immutable tokens; operations return fresh handles.
    """

    row: int
    side: int
    generation: int = field(compare=True, default=0)


class PudRuntime:
    """Vector storage plus in-DRAM Boolean computation, end to end."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int = 0,
        subarray_pair: Tuple[int, int] = (0, 1),
        seed: int = 0,
        backend: object = None,
        min_block_success: float = 0.0,
        policy: Union[PolicyTable, str, None] = None,
        verify_isolation: str = "warn",
        allocations: Optional[Mapping[str, Iterable[Tuple[int, int]]]] = None,
    ) -> None:
        self.host = host
        self.bank = bank
        self.subarray_pair = subarray_pair
        self.stats = RuntimeStats()
        self._generation = 0
        self._backend: Optional["SubstrateBackend"] = None
        if backend is not None:
            from ..substrate.base import resolve_backend

            self._backend = resolve_backend(backend)
        self._policy: Optional[PolicyTable] = (
            PolicyTable.load(policy) if isinstance(policy, str) else policy
        )
        self.min_block_success = float(min_block_success)
        self._quarantined: Set[Tuple[int, int]] = set()
        if verify_isolation not in ISOLATION_MODES:
            raise ReproError(
                f"verify_isolation must be one of {ISOLATION_MODES}, "
                f"got {verify_isolation!r}"
            )
        self.verify_isolation = verify_isolation
        #: tenant -> owned (bank, subarray) regions; ``None`` disables
        #: the tenancy rules (CC404/CC407) at admission.
        self.allocations: Optional[Dict[str, FrozenSet[Tuple[int, int]]]] = (
            {
                name: frozenset(regions)
                for name, regions in sorted(allocations.items())
            }
            if allocations is not None
            else None
        )

        module = host.module
        geometry = module.config.geometry
        self.shared_columns = module_shared_columns(module, *subarray_pair)

        # -- reserve operation blocks per side ---------------------------
        reserved: Tuple[Set[int], Set[int]] = (set(), set())
        self._logic: Dict[Tuple[int, int], LogicOperation] = {}
        for compute_side in (0, 1):
            reference_side = 1 - compute_side
            for n in _FANINS:
                try:
                    ref_row, com_row = find_pattern_pair(
                        module.decoder,
                        geometry,
                        bank,
                        subarray_pair[reference_side],
                        subarray_pair[compute_side],
                        n,
                        ActivationKind.N_TO_N,
                        seed=seed + 101 * n + compute_side,
                    )
                except ReverseEngineeringError:
                    continue
                operation = LogicOperation(host, bank, ref_row, com_row, op="and")
                self._logic[(compute_side, n)] = operation
                pattern = operation.pattern
                reserved[reference_side].update(pattern.rows_first)
                reserved[compute_side].update(pattern.rows_last)

        self._not: Dict[int, NotOperation] = {}
        for src_side in (0, 1):
            src_row, dst_row = find_pattern_pair(
                module.decoder,
                geometry,
                bank,
                subarray_pair[src_side],
                subarray_pair[1 - src_side],
                1,
                ActivationKind.N_TO_N,
                seed=seed + 7 + src_side,
            )
            operation = NotOperation(host, bank, src_row, dst_row)
            pattern = operation.expected_pattern()
            reserved[src_side].update(pattern.rows_first)
            reserved[1 - src_side].update(pattern.rows_last)
            self._not[src_side] = operation

        if not self._logic:
            raise ReproError(
                "this chip supports no N:N logic blocks; the runtime "
                "needs at least one (see §7 Limitation 1)"
            )

        # -- build the free-row pools ------------------------------------
        rows = geometry.rows_per_subarray
        self._free: List[List[int]] = []
        self._live: Set[VectorHandle] = set()
        for side in (0, 1):
            base_subarray = subarray_pair[side]
            pool = [
                geometry.bank_row(base_subarray, local)
                for local in range(rows)
                if local not in reserved[side]
            ]
            self._free.append(pool)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    @property
    def lane_count(self) -> int:
        """Bits per vector (one per shared sense amplifier)."""
        return int(self.shared_columns.size)

    def free_slots(self, side: Optional[int] = None) -> int:
        if side is None:
            return len(self._free[0]) + len(self._free[1])
        return len(self._free[side])

    def _allocate(self, side: int) -> VectorHandle:
        if not self._free[side]:
            raise ReproError(
                f"out of vector slots on side {side}; free() some handles"
            )
        self._generation += 1
        handle = VectorHandle(
            row=self._free[side].pop(), side=side, generation=self._generation
        )
        self._live.add(handle)
        return handle

    def _check(self, handle: VectorHandle) -> None:
        if handle not in self._live:
            raise ReproError(f"handle {handle} is not live (double free?)")

    def store(self, bits: np.ndarray, side: int = 1) -> VectorHandle:
        """Allocate a vector slot and write ``bits`` into it."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.lane_count,):
            raise ValueError(
                f"expected {self.lane_count} lanes, got shape {bits.shape}"
            )
        handle = self._allocate(side)
        row_bits = np.zeros(self.host.module.row_bits, dtype=np.uint8)
        row_bits[self.shared_columns] = bits
        self.host.fill_row(self.bank, handle.row, row_bits)
        return handle

    def load(self, handle: VectorHandle) -> np.ndarray:
        """Copy a vector out of DRAM."""
        self._check(handle)
        bits = self.host.peek_row(self.bank, handle.row)
        return bits[self.shared_columns]

    def free(self, handle: VectorHandle) -> None:
        """Release a vector slot back to its side's pool."""
        self._check(handle)
        self._live.remove(handle)
        self._free[handle.side].append(handle.row)

    # ------------------------------------------------------------------
    # in-DRAM movement
    # ------------------------------------------------------------------

    def _clone(self, src_row: int, dst_row: int) -> None:
        rowclone(self.host, self.bank, src_row, dst_row)
        self.stats.rowclones += 1

    def not_(
        self,
        handle: VectorHandle,
        scheme: Optional[MitigationScheme] = None,
    ) -> VectorHandle:
        """In-DRAM NOT: the result lands on the *other* side.

        With a :class:`~repro.reliability.schemes.MitigationScheme`,
        the runtime votes per lane across the destination-row copies
        and across ``scheme.votes`` repeated executions, then re-stages
        the decided bits (one counted host transfer).  NOT has no
        complement terminal, so retry schemes are rejected.
        """
        self._check(handle)
        operation = self._not[handle.side]
        if scheme is not None and not scheme.applicable_to("not"):
            raise ReliabilityError(
                f"scheme {scheme.label!r} uses detect-retry, which NOT "
                "cannot support (no complement terminal, §6.1.3)"
            )
        # Move the operand into the NOT source row (same subarray).
        if handle.row != operation.src_row:
            self._clone(handle.row, operation.src_row)
        if scheme is None or scheme.is_uncoded:
            operation.execute()
            self.stats.not_ops += 1
            result_row = operation.destination_rows()[0]
            out = self._allocate(1 - handle.side)
            self._clone(result_row, out.row)
            return out

        destinations = operation.destination_rows()
        scheme = scheme.capped_to_rows(len(destinations))
        tally = np.zeros(self.lane_count, dtype=np.int64)
        for _vote in range(scheme.votes):
            operation.execute()
            self.stats.not_ops += 1
            self.stats.votes_cast += 1
            tally += self._read_vote(destinations[: scheme.row_copies])
        decided = (tally * 2 > scheme.votes).astype(np.uint8)
        self.stats.host_transfers += 1
        return self.store(decided, side=1 - handle.side)

    def move(self, handle: VectorHandle, side: int) -> VectorHandle:
        """Polarity-preserving move to ``side``.

        Crossing subarrays in-DRAM necessarily inverts (the shared sense
        amplifier's terminals are complementary) — and no sequence of
        the neighboring-subarray operations can undo that on the target
        side (see the module docstring's monotone-closure argument).
        The runtime therefore stages the value through the memory
        controller: one row read plus one row write.
        """
        self._check(handle)
        if handle.side == side:
            return handle
        bits = self.load(handle)
        self.stats.host_transfers += 1
        return self.store(bits, side=side)

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------

    def block_estimate(self, n: int, op: str = "and") -> Optional[float]:
        """Estimated per-cell success probability of a fan-in-``n``
        ``op`` block at the current temperature, or ``None`` when the
        backend cannot estimate without measuring (the analog model)."""
        if self._backend is None:
            return None
        return self._backend.probability(
            op, n, temperature_c=float(self.host.module.temperature_c)
        )

    def quarantine_block(self, side: int, n: int) -> None:
        """Exclude an operation block from placement (failed hardware).

        A fan-in larger than any block on ``side`` is clamped to the
        largest available one (with a warning) — callers quarantining
        "the biggest block" must not silently miss; a fan-in that is
        not a block at all is still rejected.
        """
        if (side, n) not in self._logic:
            available = sorted(m for s, m in self._logic if s == side)
            if available and n > available[-1]:
                diagnostic = quarantine_clamp_diagnostic(
                    side, requested=n, clamped=available[-1]
                )
                self.stats.quarantine_clamps += 1
                warnings.warn(diagnostic.format(), stacklevel=2)
                n = available[-1]
            else:
                raise ReproError(f"no operation block (side={side}, n={n})")
        self._quarantined.add((side, n))

    def quarantined_blocks(self) -> Set[Tuple[int, int]]:
        return set(self._quarantined)

    def _block_for(self, side: int, count: int) -> Tuple[LogicOperation, int]:
        """The operation block serving a ``count``-operand op on ``side``.

        Quarantined blocks are always skipped.  When the backend serves
        probability estimates, the block with the best estimate (ties to
        the smallest fan-in) wins and blocks estimated below
        ``min_block_success`` are skipped; otherwise the historical
        policy — smallest sufficient fan-in — applies unchanged.
        """
        candidates: List[Tuple[int, Optional[float]]] = []
        for n in _FANINS:
            if n < count or (side, n) not in self._logic:
                continue
            if (side, n) in self._quarantined:
                continue
            estimate = self.block_estimate(n)
            if estimate is not None and estimate < self.min_block_success:
                continue
            candidates.append((n, estimate))
        if not candidates:
            raise ReproError(
                f"no operation block with fan-in >= {count} on side {side} "
                "(Limitation 2 caps fan-in at 16; quarantine and "
                "min_block_success further narrow the pool)"
            )
        if any(estimate is not None for _n, estimate in candidates):
            best = max(
                candidates,
                key=lambda item: (
                    item[1] if item[1] is not None else -1.0,
                    -item[0],
                ),
            )
            return self._logic[(side, best[0])], best[0]
        return self._logic[(side, candidates[0][0])], candidates[0][0]

    def _execute_block(
        self,
        op: str,
        handles: Sequence[VectorHandle],
        operation: LogicOperation,
    ) -> LogicOperation:
        """Stage operands into a block and run one ``op`` activation."""
        base = LogicOperation(
            self.host,
            self.bank,
            operation.ref_row,
            operation.com_row,
            op=op,
        )
        base.prepare_reference()
        identity = 1 if op in ("and", "nand") else 0
        pad = np.full(self.host.module.row_bits, identity, dtype=np.uint8)
        for index, compute_row in enumerate(base.compute_rows):
            if index < len(handles):
                self._clone(handles[index].row, compute_row)
            else:
                self.host.fill_row(self.bank, compute_row, pad)
        base.execute()
        self.stats.logic_ops += 1
        return base

    def _logic_apply(
        self,
        op: str,
        handles: Sequence[VectorHandle],
        block: Optional[Tuple[LogicOperation, int]] = None,
    ) -> VectorHandle:
        for handle in handles:
            self._check(handle)
        side = handles[0].side
        if any(h.side != side for h in handles):
            raise ReproError("operands must be on one side; use move()")

        operation, n = block if block is not None else self._block_for(
            side, len(handles)
        )
        base = self._execute_block(op, handles, operation)

        # The result sits in every row of the output terminal; clone the
        # first one into a fresh slot on the result's side.
        result_rows = (
            base.compute_rows if op in ("and", "or") else base.reference_rows
        )
        result_side = side if op in ("and", "or") else 1 - side
        out = self._allocate(result_side)
        self._clone(result_rows[0], out.row)
        return out

    # ------------------------------------------------------------------
    # mitigated (bounded-error) computation
    # ------------------------------------------------------------------

    def _read_vote(self, rows: Sequence[int]) -> np.ndarray:
        """Per-lane majority over the shared columns of ``rows``."""
        tally = np.zeros(self.lane_count, dtype=np.int64)
        for row in rows:
            bits = self.host.peek_row(self.bank, row)
            tally += bits[self.shared_columns]
        return (tally * 2 > len(rows)).astype(np.uint8)

    def _mitigated_logic_apply(
        self,
        op: str,
        handles: Sequence[VectorHandle],
        scheme: MitigationScheme,
        block: Tuple[LogicOperation, int],
        tenant: Optional[TenantStats] = None,
    ) -> VectorHandle:
        """Run ``op`` under ``scheme``: row-copy vote within each
        activation, complement-consistency retry around it, time vote
        outermost; the decided bits are re-staged through the
        controller (one counted host transfer)."""
        for handle in handles:
            self._check(handle)
        side = handles[0].side
        if any(h.side != side for h in handles):
            raise ReproError("operands must be on one side; use move()")
        operation, n = block
        scheme = scheme.capped_to_rows(n)

        tally = np.zeros(self.lane_count, dtype=np.int64)
        for _vote in range(scheme.votes):
            accepted = np.zeros(self.lane_count, dtype=bool)
            value = np.zeros(self.lane_count, dtype=np.uint8)
            for attempt in range(scheme.max_attempts):
                if attempt > 0:
                    self.stats.op_retries += 1
                    if tenant is not None:
                        tenant.op_retries += 1
                base = self._execute_block(op, handles, operation)
                if tenant is not None:
                    tenant.logic_ops += 1
                primary_rows = (
                    base.compute_rows
                    if op in ("and", "or")
                    else base.reference_rows
                )
                primary = self._read_vote(primary_rows[: scheme.row_copies])
                if scheme.max_attempts > 1:
                    complement_rows = (
                        base.reference_rows
                        if op in ("and", "or")
                        else base.compute_rows
                    )
                    complement = self._read_vote(
                        complement_rows[: scheme.row_copies]
                    )
                    consistent = primary == 1 - complement
                else:
                    consistent = np.ones(self.lane_count, dtype=bool)
                settle = ~accepted & (
                    consistent
                    if attempt < scheme.max_attempts - 1
                    else np.ones(self.lane_count, dtype=bool)
                )
                value[settle] = primary[settle]
                accepted |= settle
                if bool(accepted.all()):
                    break
            tally += value
            self.stats.votes_cast += 1
            if tenant is not None:
                tenant.votes_cast += 1

        decided = (tally * 2 > scheme.votes).astype(np.uint8)
        result_side = side if op in ("and", "or") else 1 - side
        self.stats.host_transfers += 1
        if tenant is not None:
            tenant.host_transfers += 1
        return self.store(decided, side=result_side)

    def _scheme_for_block(
        self, op: str, n: int, error_bound: float
    ) -> MitigationScheme:
        """The mitigation scheme serving (``op``, fan-in ``n``) at
        ``error_bound``, from the policy table first, else selected on
        the fly from a backend estimate.

        Raises :class:`~repro.errors.ReliabilityUnsatisfiableError`
        when the cell cannot meet the bound and
        :class:`~repro.errors.ReliabilityError` when the runtime has no
        way to bound the error at all (no policy, no estimates).
        """
        temperature = float(self.host.module.temperature_c)
        if self._policy is not None:
            try:
                entry = self._policy.scheme_for(
                    op, n, temperature_c=temperature
                )
                if entry.error_bound <= error_bound:
                    return entry.scheme
            except ReliabilityUnsatisfiableError:
                raise
            except ReliabilityError:
                pass  # untuned cell: fall through to the backend
        estimate = self.block_estimate(n, op=op)
        if estimate is None:
            if self._policy is not None:
                raise ReliabilityError(
                    f"policy table has no entry for {op!r} n={n} at a "
                    f"bound <= {error_bound:.1e} and the backend serves "
                    "no estimates; re-tune with this cell in the grid"
                )
            raise ReliabilityError(
                "bounded-error jobs need a policy table or a backend "
                "that serves probability estimates (the surrogate); "
                "construct PudRuntime(policy=...) or (backend=...)"
            )
        engineered = min(max(estimate - DEFAULT_P_SLACK, 0.0), 1.0)
        scheme, _error, _cost = select_scheme(
            op, n, engineered, error_bound, TuneGrid()
        )
        return scheme

    def and_(self, *handles: VectorHandle) -> VectorHandle:
        return self._logic_apply("and", self._colocate(handles))

    def or_(self, *handles: VectorHandle) -> VectorHandle:
        return self._logic_apply("or", self._colocate(handles))

    def nand(self, *handles: VectorHandle) -> VectorHandle:
        return self._logic_apply("nand", self._colocate(handles))

    def nor(self, *handles: VectorHandle) -> VectorHandle:
        return self._logic_apply("nor", self._colocate(handles))

    def xor(self, a: VectorHandle, b: VectorHandle) -> VectorHandle:
        """XOR = AND(OR(a, b), NAND(a, b)), all in DRAM."""
        a, b = self._colocate((a, b))
        either = self.or_(a, b)
        not_both = self.nand(a, b)
        not_both = self.move(not_both, either.side)
        result = self.and_(either, not_both)
        self.free(either)
        self.free(not_both)
        return result

    # ------------------------------------------------------------------
    # verified job submission
    # ------------------------------------------------------------------

    def submit_job(
        self,
        op: str,
        operands: Sequence[np.ndarray],
        side: int = 1,
        max_failovers: int = 4,
        error_bound: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> JobResult:
        """Run ``op`` over ``operands`` end to end.

        **Legacy (oracle-verified) path** — with ``error_bound=None``
        the job stores its operands, executes on the best eligible
        operation block, and verifies the loaded result against the
        ideal Boolean output.  A verification failure quarantines the
        block and *fails over*: first to another block on the same side,
        then — re-staging the operands through the controller — to the
        other side of the pair.  After ``max_failovers`` failovers (so
        ``max_failovers + 1`` failed attempts), or when no eligible
        block remains, the job raises
        :class:`~repro.errors.ReproError` with the blocks it consumed.

        **Bounded-error path** — with ``error_bound`` set the job runs
        *without* an oracle: the runtime picks the mitigation scheme
        serving the block's (op, fan-in) cell at the bound (tuned
        policy table first, on-the-fly selection from backend estimates
        otherwise), encodes, votes, and retries transparently.  Blocks
        whose cell cannot meet the bound are skipped
        (``stats.mitigation_fallbacks``); when no non-quarantined block
        on either side can, the job raises
        :class:`~repro.errors.ReliabilityUnsatisfiableError` instead of
        silently degrading.

        ``tenant`` attributes the job's primitives to a named
        per-tenant accounting slice (``stats.per_tenant``).

        Temporary vector slots are always released, success or failure.
        """
        if op not in ("and", "or", "nand", "nor"):
            raise ReproError(f"submit_job supports and/or/nand/nor, got {op!r}")
        if side not in (0, 1):
            raise ReproError(f"side must be 0 or 1, got {side}")
        arrays = [np.asarray(bits, dtype=np.uint8) for bits in operands]
        if len(arrays) < 2:
            raise ReproError("logic operations need at least 2 operands")
        self._admit(op, len(arrays), tenant)
        base_op = "and" if op in ("and", "nand") else "or"
        expected = ideal_output(base_op, arrays)
        if op in ("nand", "nor"):
            expected = 1 - expected

        self.stats.jobs_submitted += 1
        tenant_stats = self.stats.tenant(tenant) if tenant else None
        if tenant_stats is not None:
            tenant_stats.jobs += 1
        if error_bound is not None:
            return self._submit_bounded(
                op, arrays, side, float(error_bound), tenant_stats
            )
        handles = [self.store(bits, side=side) for bits in arrays]
        newly_quarantined: List[Tuple[int, int]] = []
        attempts = 0
        current_side = side
        sides_left = [1 - side]
        try:
            while True:
                try:
                    block = self._block_for(current_side, len(handles))
                except ReproError:
                    if not sides_left:
                        raise ReproError(
                            f"job {op!r} failed: no eligible operation "
                            f"block left after {attempts} attempt(s); "
                            f"quarantined {newly_quarantined or 'none'}"
                        ) from None
                    current_side = sides_left.pop()
                    handles = [self.move(h, current_side) for h in handles]
                    continue
                attempts += 1
                out = self._logic_apply(op, handles, block=block)
                got = self.load(out)
                self.free(out)
                if np.array_equal(got, expected):
                    return JobResult(
                        output=got,
                        op=op,
                        block=(current_side, block[1]),
                        attempts=attempts,
                        quarantined=tuple(newly_quarantined),
                    )
                self.stats.verify_failures += 1
                self.quarantine_block(current_side, block[1])
                newly_quarantined.append((current_side, block[1]))
                if attempts > max_failovers:
                    raise ReproError(
                        f"job {op!r} failed verification on "
                        f"{attempts} block(s); quarantined "
                        f"{newly_quarantined}"
                    )
                self.stats.failovers += 1
        finally:
            for handle in handles:
                self.free(handle)

    # ------------------------------------------------------------------
    # admission gate (verify_isolation)
    # ------------------------------------------------------------------

    def _isolation_diagnostics(
        self, op: str, operand_count: int, tenant: Optional[str]
    ) -> List[Diagnostic]:
        """Static pre-admission findings for one job; touches nothing.

        A logic operation always spans *both* subarrays of the pair
        (the reference terminal lives on the other side), so a tenant
        must own both ``(bank, subarray)`` regions of the pair — there
        is no per-subarray tenancy inside one runtime.
        """
        findings: List[Diagnostic] = []

        def emit(rule_id: str, message: str) -> None:
            rule = RULES[rule_id]
            findings.append(
                Diagnostic(
                    rule=rule_id,
                    severity=rule.severity,
                    message=message,
                    hint=rule.hint,
                    program=f"submit_job({op!r}, tenant={tenant!r})",
                )
            )

        if self.allocations is not None:
            if tenant is None or tenant not in self.allocations:
                emit(
                    "CC407",
                    f"job {op!r} names tenant {tenant!r} but the runtime's "
                    f"allocation map grants regions to "
                    f"{sorted(self.allocations)} only",
                )
            else:
                owned = self.allocations[tenant]
                pair_regions = sorted(
                    (self.bank, subarray) for subarray in self.subarray_pair
                )
                missing = [r for r in pair_regions if r not in owned]
                if missing:
                    emit(
                        "CC404",
                        f"job {op!r} (tenant {tenant!r}) runs on the "
                        f"subarray pair {pair_regions} but the tenant's "
                        f"allocation {sorted(owned)} does not cover "
                        f"{missing}: a logic op always spans both "
                        "terminals of the pair",
                    )
        eligible = [
            (block_side, n)
            for block_side in (0, 1)
            for n in _FANINS
            if n >= operand_count and (block_side, n) in self._logic
        ]
        quarantined = [b for b in eligible if b in self._quarantined]
        if eligible and len(quarantined) == len(eligible):
            emit(
                "CC405",
                f"every operation block with fan-in >= {operand_count} "
                f"({sorted(eligible)}) is quarantined: the job could only "
                "run on failed hardware",
            )
        return findings

    def _admit(
        self, op: str, operand_count: int, tenant: Optional[str]
    ) -> None:
        """The ``verify_isolation`` gate; runs before any state change."""
        if self.verify_isolation == "off":
            return
        findings = self._isolation_diagnostics(op, operand_count, tenant)
        if not findings:
            return
        if self.verify_isolation == "error":
            self.stats.isolation_refusals += 1
            if tenant:
                self.stats.tenant(tenant).isolation_refusals += 1
            raise IsolationError(
                f"isolation gate refused job {op!r} (tenant {tenant!r}): "
                + "; ".join(d.message for d in findings),
                findings,
            )
        self.stats.isolation_warnings += 1
        if tenant:
            self.stats.tenant(tenant).isolation_warnings += 1
        warnings.warn(format_diagnostics(findings), stacklevel=3)

    def _submit_bounded(
        self,
        op: str,
        arrays: List[np.ndarray],
        side: int,
        error_bound: float,
        tenant_stats: Optional[TenantStats],
    ) -> JobResult:
        """The bounded-error job path (see :meth:`submit_job`)."""
        self.stats.encoded_jobs += 1
        if tenant_stats is not None:
            tenant_stats.encoded_jobs += 1
        count = len(arrays)
        candidates: List[Tuple[int, int]] = [
            (block_side, n)
            for block_side in (side, 1 - side)
            for n in _FANINS
            if n >= count
            and (block_side, n) in self._logic
            and (block_side, n) not in self._quarantined
        ]
        if not candidates:
            raise ReproError(
                f"no operation block with fan-in >= {count} on either "
                "side (Limitation 2 caps fan-in at 16; quarantine "
                "further narrows the pool)"
            )
        handles = [self.store(bits, side=side) for bits in arrays]
        current_side = side
        best_error: Optional[float] = None
        try:
            for block_side, n in candidates:
                try:
                    scheme = self._scheme_for_block(op, n, error_bound)
                except ReliabilityUnsatisfiableError as error:
                    if error.best_error is not None and (
                        best_error is None or error.best_error < best_error
                    ):
                        best_error = error.best_error
                    self.stats.mitigation_fallbacks += 1
                    continue
                if block_side != current_side:
                    handles = [
                        self.move(handle, block_side) for handle in handles
                    ]
                    current_side = block_side
                scheme = scheme.capped_to_rows(n)
                out = self._mitigated_logic_apply(
                    op,
                    handles,
                    scheme,
                    (self._logic[(block_side, n)], n),
                    tenant=tenant_stats,
                )
                got = self.load(out)
                self.free(out)
                return JobResult(
                    output=got,
                    op=op,
                    block=(block_side, n),
                    attempts=1,
                    quarantined=(),
                    scheme=scheme.label,
                    votes=scheme.votes,
                )
            raise ReliabilityUnsatisfiableError(
                f"job {op!r} (fan-in {count}): no non-quarantined block "
                f"on either side has a scheme meeting {error_bound:.1e}"
                + (
                    f" (best residual {best_error:.2e})"
                    if best_error is not None
                    else ""
                ),
                operation=op,
                fan_in=count,
                error_bound=error_bound,
                best_error=best_error,
            )
        finally:
            for handle in handles:
                self.free(handle)

    def _colocate(
        self, handles: Sequence[VectorHandle]
    ) -> List[VectorHandle]:
        """Move operands onto one side (majority side wins)."""
        if len(handles) < 2:
            raise ReproError("logic operations need at least 2 operands")
        sides = [h.side for h in handles]
        target = max(set(sides), key=sides.count)
        moved = []
        for handle in handles:
            if handle.side == target:
                moved.append(handle)
            else:
                moved.append(self.move(handle, target))
        return moved
