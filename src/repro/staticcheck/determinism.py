"""AST determinism linter over the ``repro`` source tree.

Flags the three bug classes that break the bit-identical replay and
checkpoint/resume guarantees:

``DET201``/``DET202``
    Global RNG state — stdlib ``random.*`` or numpy's legacy global
    functions (``np.random.rand`` etc.) and *seedless*
    ``default_rng()``.  All randomness must flow from seeded
    generators derived via :mod:`repro.rng`.

``DET203``
    Wall-clock reads (``time.time``, ``datetime.now``, ...) outside
    the explicitly exempt modules (thermal pacing and retry backoff,
    where real time is the point and never reaches results).

``DET204``
    Write-mode builtin ``open`` — result files must go through
    :mod:`repro.atomicio` so a SIGKILL mid-write can never leave a
    torn artifact.

``DET205``
    Unordered iteration over per-tenant/per-target mappings in
    scheduling-adjacent code — ``for tenant in allocations.items():``
    without ``sorted(...)`` makes admission order (and therefore
    schedules, conflict graphs, and quarantine decisions) depend on
    dict insertion history.

Findings can be silenced in place with a pragma comment on the same
or the preceding line::

    start = time.time()  # staticcheck: ignore[DET203] progress log only
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import RULES, Diagnostic

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "EXEMPT_WALL_CLOCK",
    "EXEMPT_NONATOMIC",
]

#: Modules (posix path suffixes) where wall-clock reads are legitimate:
#: thermal pacing and retry/backoff logic, whose timing never reaches
#: result artifacts.
EXEMPT_WALL_CLOCK: Tuple[str, ...] = (
    "bender/thermal.py",
    "characterization/resilience.py",
)

#: Modules allowed to call builtin open in write mode (the atomic-write
#: implementation itself).
EXEMPT_NONATOMIC: Tuple[str, ...] = ("atomicio.py",)

#: ``# staticcheck: ignore[FC107]`` / ``ignore[DET203, DET204]`` / ``ignore[*]``
_PRAGMA_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]+)\]")

#: numpy.random module-level functions backed by hidden global state.
_NUMPY_GLOBAL_FNS: FrozenSet[str] = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "random_integers",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
        "beta",
        "gamma",
        "lognormal",
        "laplace",
        "triangular",
        "multinomial",
        "multivariate_normal",
        "dirichlet",
        "hypergeometric",
        "negative_binomial",
        "pareto",
        "power",
        "rayleigh",
        "wald",
        "weibull",
        "zipf",
        "chisquare",
        "f",
        "gumbel",
        "logistic",
        "vonmises",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_t",
    }
)

#: numpy.random constructors that are deterministic *iff* seeded.
_NUMPY_SEEDABLE: FrozenSet[str] = frozenset(
    {"default_rng", "SeedSequence", "PCG64", "PCG64DXSM", "Philox", "MT19937",
     "SFC64", "RandomState"}
)

#: Receiver-name fragments that mark a mapping as scheduling-adjacent:
#: iterating one unsorted makes schedules depend on insertion order.
_SCHEDULING_NAME_FRAGMENTS: Tuple[str, ...] = (
    "tenant",
    "alloc",
    "placement",
    "schedul",
    "quarantin",
    "target",
)

#: Mapping views whose iteration order is insertion history.
_MAPPING_VIEWS: FrozenSet[str] = frozenset({"items", "keys", "values"})

#: Wall-clock reads.  Monotonic/perf counters are allowed: they only
#: measure durations and cannot leak calendar time into results.
_WALL_CLOCK_FNS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class _ImportTracker(ast.NodeVisitor):
    """Resolve local names to fully-qualified module/attribute paths."""

    def __init__(self) -> None:
        #: local name -> dotted origin ("np" -> "numpy",
        #: "randint" -> "random.randint")
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports stay inside repro: never stdlib/numpy
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(
        self,
        filename: str,
        aliases: Dict[str, str],
        wall_clock_exempt: bool,
        nonatomic_exempt: bool,
    ) -> None:
        self.filename = filename
        self.aliases = aliases
        self.wall_clock_exempt = wall_clock_exempt
        self.nonatomic_exempt = nonatomic_exempt
        self.findings: List[Diagnostic] = []
        self._shadowed: Set[str] = set()

    # -- name resolution -------------------------------------------------

    def _qualified(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of an expression, or None if not import-rooted."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self._shadowed:
            return None
        origin = self.aliases.get(root)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = RULES[rule_id]
        self.findings.append(
            Diagnostic(
                rule=rule_id,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
                file=self.filename,
                line=getattr(node, "lineno", None),
            )
        )

    # -- scope tracking (cheap): local assignments shadow imports --------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        args = getattr(node, "args", None)
        added: List[str] = []
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.arg not in self._shadowed:
                    self._shadowed.add(arg.arg)
                    added.append(arg.arg)
        self.generic_visit(node)
        for name in added:
            self._shadowed.discard(name)

    # -- the rules -------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_unordered_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_unordered_iteration(self, iter_expr: ast.expr) -> None:
        """DET205: ``for ... in tenants.items():`` without sorted().

        Only direct ``.items()``/``.keys()``/``.values()`` receivers
        whose name marks them scheduling-adjacent are flagged — the
        views are unambiguously mappings, so there is no false positive
        on lists, and wrapping the view in ``sorted(...)`` changes the
        iter expression to a ``sorted`` call, which naturally passes.
        """
        if not (
            isinstance(iter_expr, ast.Call)
            and not iter_expr.args
            and not iter_expr.keywords
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in _MAPPING_VIEWS
        ):
            return
        receiver = iter_expr.func.value
        if isinstance(receiver, ast.Name):
            leaf = receiver.id
        elif isinstance(receiver, ast.Attribute):
            leaf = receiver.attr
        else:
            return
        lowered = leaf.lower()
        if not any(frag in lowered for frag in _SCHEDULING_NAME_FRAGMENTS):
            return
        self._emit(
            "DET205",
            iter_expr,
            f"iteration over `{leaf}.{iter_expr.func.attr}()` follows dict "
            "insertion order in scheduling-adjacent code",
        )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self._qualified(node.func)
        if qualified is not None:
            self._check_random(qualified, node)
            self._check_wall_clock(qualified, node)
        self._check_open(node)
        self.generic_visit(node)

    def _check_random(self, qualified: str, node: ast.Call) -> None:
        if qualified == "random" or qualified.startswith("random."):
            self._emit(
                "DET201",
                node,
                f"call to stdlib global RNG `{qualified}`",
            )
            return
        if not qualified.startswith("numpy.random."):
            return
        leaf = qualified.rsplit(".", 1)[1]
        if leaf in _NUMPY_GLOBAL_FNS:
            self._emit(
                "DET202",
                node,
                f"call to numpy global-state RNG `{qualified}`",
            )
        elif leaf in _NUMPY_SEEDABLE and not node.args and not node.keywords:
            self._emit(
                "DET202",
                node,
                f"seedless `{qualified}()` draws OS entropy",
            )

    def _check_wall_clock(self, qualified: str, node: ast.Call) -> None:
        if self.wall_clock_exempt:
            return
        if qualified in _WALL_CLOCK_FNS:
            self._emit(
                "DET203",
                node,
                f"wall-clock read `{qualified}` in a non-exempt module",
            )

    def _check_open(self, node: ast.Call) -> None:
        if self.nonatomic_exempt:
            return
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "open"):
            return
        if func.id in self._shadowed or func.id in self.aliases:
            return
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return  # default "r": reads are fine
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return  # dynamic mode: cannot prove a write
        if any(flag in mode.value for flag in ("w", "a", "x", "+")):
            self._emit(
                "DET204",
                node,
                f"builtin open(..., {mode.value!r}) writes a file directly",
            )


def _pragma_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            pragmas[lineno] = ids
    return pragmas


def _suppressed(diag: Diagnostic, pragmas: Dict[int, FrozenSet[str]]) -> bool:
    if diag.line is None:
        return False
    for lineno in (diag.line, diag.line - 1):
        ids = pragmas.get(lineno)
        if ids and ("*" in ids or diag.rule in ids):
            return True
    return False


def _module_exempt(filename: str, suffixes: Sequence[str]) -> bool:
    posix = filename.replace(os.sep, "/")
    return any(posix.endswith(suffix) for suffix in suffixes)


def lint_source(
    source: str, filename: str = "<string>", suppress: Iterable[str] = ()
) -> List[Diagnostic]:
    """Lint one module's source text; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise ValueError(f"{filename}: cannot lint, syntax error: {exc}") from exc
    tracker = _ImportTracker()
    tracker.visit(tree)
    visitor = _DeterminismVisitor(
        filename=filename,
        aliases=tracker.aliases,
        wall_clock_exempt=_module_exempt(filename, EXEMPT_WALL_CLOCK),
        nonatomic_exempt=_module_exempt(filename, EXEMPT_NONATOMIC),
    )
    visitor.visit(tree)
    pragmas = _pragma_lines(source)
    drop = frozenset(suppress)
    return [
        diag
        for diag in visitor.findings
        if diag.rule not in drop and not _suppressed(diag, pragmas)
    ]


def lint_file(path: str, suppress: Iterable[str] = ()) -> List[Diagnostic]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, filename=path, suppress=suppress)


def lint_paths(
    paths: Iterable[str], suppress: Iterable[str] = ()
) -> List[Diagnostic]:
    """Lint files and (recursively) directories of ``.py`` files."""
    findings: List[Diagnostic] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        findings.extend(
                            lint_file(os.path.join(dirpath, name), suppress)
                        )
        else:
            findings.extend(lint_file(path, suppress))
    return findings
