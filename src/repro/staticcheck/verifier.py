"""Static verifier for DRAM Bender test programs.

Walks a :class:`~repro.bender.program.TestProgram` against a *static
mirror* of the bank state machine in :mod:`repro.dram.bank` — per-bank
open/pending-precharge state, the sharing/latched sense phase, and the
decoder-predicted multi-row activation sets — and classifies every
``ACT → PRE → ACT`` gap as nominal or as one of the paper's intentional
violations (NOT regime, logic-op regime, RowClone, Frac).  Anything
that is neither nominal nor a recognized idiom becomes a
:class:`~repro.staticcheck.diagnostics.Diagnostic`.

The verifier is *session-aware*: a :class:`SessionState` carries bank
state and the set of Frac-initialized (VDD/2) rows across programs, so
``frac_program`` followed by ``logic_program`` verifies clean while a
logic operation with no Frac'd reference in the session warns (FC106).

The analysis models the *engaged* glitch path (the decoder pattern with
the addressed rows merged in); per-trial non-engagement is a runtime
random draw the static layer deliberately ignores.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..bender.commands import Command, Opcode
from ..bender.program import TestProgram
from ..dram.bank import SENSE_LATENCY_NS
from ..dram.config import ActivationSupport, ChipGeometry
from ..dram.timing import TimingParameters
from ..errors import AddressError
from .diagnostics import RULES, Diagnostic, Severity

__all__ = [
    "GapClassification",
    "ProgramReport",
    "SessionState",
    "ProgramVerifier",
    "VerifierObserver",
    "verify_program",
]

_EPS = 1e-9

#: Signature of the per-program ``emit`` closure the handlers receive:
#: ``emit(rule_id, command_index, message, severity=None)``.
_Emit = Callable[..., None]

#: Idioms a glitch or a completed activation episode can classify as.
IDIOMS = (
    "nominal",
    "frac",
    "not",
    "rowclone",
    "logic",
    "isolated",
    "ignored",
)

#: Intents a program may declare (TestProgram(intent=...)).
KNOWN_INTENTS = ("not", "rowclone", "logic", "frac", "nominal")


@dataclass(frozen=True)
class GapClassification:
    """Classification of one activation episode.

    ``first_gap_ns`` is the ACT→PRE spacing of the episode (``None`` if
    no PRE was issued), ``second_gap_ns`` the PRE→ACT spacing of the
    glitch (``None`` for episodes closed by a completed precharge).
    """

    bank: int
    idiom: str
    command_index: int
    first_gap_ns: Optional[float]
    second_gap_ns: Optional[float]
    violates_t_ras: bool
    violates_t_rp: bool

    def describe(self) -> str:
        gaps = []
        if self.first_gap_ns is not None:
            mark = "!" if self.violates_t_ras else ""
            gaps.append(f"act->pre {self.first_gap_ns:.2f}ns{mark}")
        if self.second_gap_ns is not None:
            mark = "!" if self.violates_t_rp else ""
            gaps.append(f"pre->act {self.second_gap_ns:.2f}ns{mark}")
        detail = f" ({', '.join(gaps)})" if gaps else ""
        return f"bank {self.bank} cmd {self.command_index}: {self.idiom}{detail}"


@dataclass(frozen=True)
class ProgramReport:
    """Outcome of verifying one program."""

    program: str
    diagnostics: Tuple[Diagnostic, ...]
    classifications: Tuple[GapClassification, ...]

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == Severity.WARNING)

    def format(self) -> str:
        lines = [f"# verify {self.program or '<anonymous>'}"]
        lines += [c.describe() for c in self.classifications]
        lines += [d.format() for d in self.diagnostics]
        return "\n".join(lines)


@dataclass
class _OpenModel:
    """Static mirror of :class:`repro.dram.bank._OpenState`."""

    rows: Dict[int, Tuple[int, ...]]
    first_subarray: int
    first_row: int
    first_act_ns: float
    last_act_ns: float
    act_index: int
    phase: str = "sharing"
    nominal: bool = True
    pending_pre_ns: Optional[float] = None
    pending_pre_index: Optional[int] = None
    glitched: bool = False


@dataclass
class _BankModel:
    open: Optional[_OpenModel] = None


class VerifierObserver:
    """Hook points for layers that ride on the verifier's state machine.

    The semantic evaluator (:mod:`repro.staticcheck.semantics`) mirrors
    cell *values* on top of the verifier's cell *topology* by subscribing
    to these events.  Row dictionaries map subarray index to local row
    indices, exactly like :class:`_OpenModel.rows`.  The default
    implementation of every hook is a no-op, so observers override only
    what they need.
    """

    def on_fresh_activation(self, bank: int, row: int, index: int) -> None:
        """A single-row activation opened ``bank`` (phase: sharing)."""

    def on_resolve(
        self,
        bank: int,
        rows: Dict[int, Tuple[int, ...]],
        glitched: bool,
        first_subarray: int,
        index: int,
    ) -> None:
        """Sense amplifiers resolved the sharing phase over ``rows``."""

    def on_latched_drive(
        self, bank: int, new_rows: Dict[int, Tuple[int, ...]],
        first_subarray: int, index: int,
    ) -> None:
        """Latched amplifiers drive newly joined rows (NOT/RowClone)."""

    def on_frac(
        self, bank: int, rows: Dict[int, Tuple[int, ...]], index: Optional[int]
    ) -> None:
        """A completed precharge pulled the still-sharing ``rows`` to VDD/2."""

    def on_close(self, bank: int) -> None:
        """A latched episode closed nominally (values restored intact)."""

    def on_abort(self, bank: int) -> None:
        """The open episode aborted (isolated-subarray second ACT)."""

    def on_write(self, bank: int, row: int, data: object, index: int) -> None:
        """A WR overdrives the open rows of ``row``'s subarray pair."""

    def on_read(self, bank: int, row: int, index: int, label: str) -> None:
        """A RD returns ``row``'s resolved value."""

    def on_refresh(self, bank: int, index: int) -> None:
        """A REF re-amplified every cell of ``bank`` to a full rail."""


class SessionState:
    """Verifier state carried across programs of one executor session."""

    def __init__(self) -> None:
        self.now_ns: float = 0.0
        self.banks: Dict[int, _BankModel] = {}
        #: Rows currently holding a Frac (VDD/2) value: (bank, bank_row).
        self.frac_rows: Set[Tuple[int, int]] = set()

    def clone(self) -> "SessionState":
        """A deep copy, so a refused program leaves the state untouched."""
        other = SessionState()
        other.now_ns = self.now_ns
        other.banks = copy.deepcopy(self.banks)
        other.frac_rows = set(self.frac_rows)
        return other


class ProgramVerifier:
    """Static analyzer over :class:`TestProgram` command sequences.

    ``decoder`` (optional) predicts multi-row activation sets exactly
    like the device model; without one the verifier falls back to the
    addressed rows only.  ``suppress`` drops the listed rule ids —
    useful for deliberately-broken fault-injection programs.
    """

    def __init__(
        self,
        geometry: Optional[ChipGeometry] = None,
        decoder: Optional[object] = None,
        activation_support: ActivationSupport = ActivationSupport.SIMULTANEOUS,
        suppress: Iterable[str] = (),
    ) -> None:
        self.geometry = geometry if geometry is not None else ChipGeometry()
        self.decoder = decoder
        self.support = activation_support
        self.suppress: FrozenSet[str] = frozenset(suppress)
        unknown = sorted(self.suppress - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule ids in suppress: {unknown}")
        #: Optional :class:`VerifierObserver` receiving state-machine
        #: events while a program is verified (the semantic evaluator).
        self.observer: Optional[VerifierObserver] = None

    @classmethod
    def for_module(
        cls, module: object, suppress: Iterable[str] = ()
    ) -> "ProgramVerifier":
        """A verifier matching a :class:`repro.dram.module.Module`."""
        config = module.config  # type: ignore[attr-defined]
        return cls(
            geometry=config.geometry,
            decoder=getattr(module, "decoder", None),
            activation_support=config.activation_support,
            suppress=suppress,
        )

    def new_session(self) -> SessionState:
        return SessionState()

    # ------------------------------------------------------------------

    def verify_session(
        self, programs: Sequence[TestProgram]
    ) -> List[ProgramReport]:
        """Verify programs in order, threading one session state."""
        state = self.new_session()
        return [self.verify_program(p, state=state) for p in programs]

    def verify_program(
        self, program: TestProgram, state: Optional[SessionState] = None
    ) -> ProgramReport:
        """Verify one program; mutates ``state`` (fresh one if omitted)."""
        if state is None:
            state = self.new_session()
        timing = program.timing
        diags: List[Diagnostic] = []
        idioms: List[GapClassification] = []
        touched: Set[int] = set()
        t = state.now_ns
        name = program.name
        skip_glitch_rules = self.support is ActivationSupport.NONE
        ignored = getattr(program, "ignored_rules", frozenset())

        def emit(
            rule_id: str,
            index: Optional[int],
            message: str,
            severity: Optional[Severity] = None,
        ) -> None:
            if rule_id in self.suppress:
                return
            if rule_id in ignored or "*" in ignored:
                return
            rule = RULES[rule_id]
            diags.append(
                Diagnostic(
                    rule=rule_id,
                    severity=severity if severity is not None else rule.severity,
                    message=message,
                    hint=rule.hint,
                    program=name,
                    command_index=index,
                )
            )

        for index, cmd in enumerate(program):
            self._check_quantization(cmd, index, timing, emit)
            if not self._check_addresses(cmd, index, emit):
                t += cmd.wait_cycles * timing.t_ck
                continue
            if cmd.opcode is Opcode.NOP:
                t += cmd.wait_cycles * timing.t_ck
                continue

            bankm = state.banks.setdefault(cmd.bank, _BankModel())
            touched.add(cmd.bank)
            self._advance(state, cmd.bank, bankm, t)

            if cmd.opcode is Opcode.ACT:
                self._on_act(state, bankm, cmd, index, t, timing, emit, idioms)
            elif cmd.opcode is Opcode.PRE:
                self._on_pre(bankm, cmd, index, t, timing, emit)
            elif cmd.opcode in (Opcode.WR, Opcode.RD):
                self._on_column_access(
                    state, bankm, cmd, index, t, timing, emit, idioms
                )
            elif cmd.opcode is Opcode.REF:
                self._on_ref(state, bankm, cmd, index, emit)

            t += cmd.wait_cycles * timing.t_ck

        # End-of-program settle: mirror the executor, which gives every
        # touched bank t_rc to complete a trailing PRE.
        settle_at = t + timing.t_rc
        last_index = max(len(program) - 1, 0)
        for bank in sorted(touched):
            bankm = state.banks[bank]
            self._advance(state, bank, bankm, settle_at)
            if bankm.open is not None and self._pre_due(
                bankm.open, timing, settle_at
            ):
                self._complete_precharge(state, bank, bankm, timing, idioms)
            if bankm.open is not None and not skip_glitch_rules:
                emit(
                    "FC112",
                    bankm.open.act_index,
                    f"bank {bank} is left open at end of program "
                    "(no pending PRE to complete)",
                )
        state.now_ns = settle_at

        self._check_intent(program, idioms, last_index, emit)
        return ProgramReport(
            program=name,
            diagnostics=tuple(diags),
            classifications=tuple(idioms),
        )

    # -- per-command checks ---------------------------------------------

    def _check_quantization(
        self, cmd: Command, index: int, timing: TimingParameters, emit: _Emit
    ) -> None:
        requested = cmd.requested_wait_ns
        if requested is not None and requested < timing.t_ck - _EPS:
            actual = cmd.wait_cycles * timing.t_ck
            emit(
                "FC107",
                index,
                f"wait_ns={requested:g} is below one bus cycle "
                f"(t_ck={timing.t_ck:g}ns) and was silently quantized up to "
                f"{cmd.wait_cycles} cycle(s) = {actual:g}ns",
            )

    def _check_addresses(self, cmd: Command, index: int, emit: _Emit) -> bool:
        """Range-check bank/row; returns False if the command is skipped."""
        geometry = self.geometry
        ok = True
        if not 0 <= cmd.bank < geometry.banks:
            emit(
                "FC109",
                index,
                f"bank {cmd.bank} out of range for a chip with "
                f"{geometry.banks} banks",
            )
            ok = False
        if cmd.row is not None and not 0 <= cmd.row < geometry.rows_per_bank:
            emit(
                "FC109",
                index,
                f"row {cmd.row} out of range for a bank with "
                f"{geometry.rows_per_bank} rows",
            )
            ok = False
        if cmd.opcode in (Opcode.PRE, Opcode.REF, Opcode.NOP) and cmd.row is not None:
            # Unreachable through Command.__post_init__; kept as defense
            # against hand-built command records.
            emit(
                "FC110",
                index,
                f"{cmd.opcode.value} carries row {cmd.row} but ignores row "
                "addressing",
            )
        return ok

    # -- bank-model transitions (mirror repro.dram.bank.Bank) -----------

    def _pre_due(
        self, open_: _OpenModel, timing: TimingParameters, time_ns: float
    ) -> bool:
        return (
            open_.pending_pre_ns is not None
            and time_ns - open_.pending_pre_ns >= timing.t_rp - _EPS
        )

    def _advance(
        self, state: SessionState, bank: int, bankm: _BankModel, time_ns: float
    ) -> None:
        """Resolve the sharing phase if SENSE_LATENCY_NS elapsed."""
        open_ = bankm.open
        if open_ is None or open_.phase != "sharing":
            return
        horizon = time_ns
        if open_.pending_pre_ns is not None:
            horizon = min(horizon, open_.pending_pre_ns)
        if horizon - open_.last_act_ns >= SENSE_LATENCY_NS:
            self._resolve(state, bank, open_)

    def _resolve(self, state: SessionState, bank: int, open_: _OpenModel) -> None:
        """Sense amplifiers resolve: cells snap to rails, Frac consumed."""
        open_.phase = "latched"
        if self.observer is not None:
            self.observer.on_resolve(
                bank,
                dict(open_.rows),
                open_.glitched,
                open_.first_subarray,
                open_.act_index,
            )
        for row in self._open_bank_rows(open_):
            state.frac_rows.discard((bank, row))

    def _complete_precharge(
        self,
        state: SessionState,
        bank: int,
        bankm: _BankModel,
        timing: TimingParameters,
        idioms: List[GapClassification],
    ) -> None:
        open_ = bankm.open
        assert open_ is not None
        if open_.phase == "sharing":
            # Interrupted activation + completed precharge: the equalizer
            # pulls the still-connected cells to VDD/2 — the Frac idiom.
            if self.observer is not None:
                self.observer.on_frac(
                    bank, dict(open_.rows), open_.pending_pre_index
                )
            for row in self._open_bank_rows(open_):
                state.frac_rows.add((bank, row))
            if not open_.glitched:
                first_gap = (
                    None
                    if open_.pending_pre_ns is None
                    else open_.pending_pre_ns - open_.last_act_ns
                )
                idioms.append(
                    GapClassification(
                        bank=bank,
                        idiom="frac",
                        command_index=open_.pending_pre_index
                        if open_.pending_pre_index is not None
                        else open_.act_index,
                        first_gap_ns=first_gap,
                        second_gap_ns=None,
                        violates_t_ras=True,
                        violates_t_rp=False,
                    )
                )
        else:
            if self.observer is not None:
                self.observer.on_close(bank)
            for row in self._open_bank_rows(open_):
                state.frac_rows.discard((bank, row))
            if not open_.glitched:
                first_gap = (
                    None
                    if open_.pending_pre_ns is None
                    else open_.pending_pre_ns - open_.last_act_ns
                )
                idioms.append(
                    GapClassification(
                        bank=bank,
                        idiom="nominal",
                        command_index=open_.pending_pre_index
                        if open_.pending_pre_index is not None
                        else open_.act_index,
                        first_gap_ns=first_gap,
                        second_gap_ns=None,
                        violates_t_ras=(
                            first_gap is not None
                            and first_gap < timing.t_ras - _EPS
                        ),
                        violates_t_rp=False,
                    )
                )
        bankm.open = None

    def _open_bank_rows(self, open_: _OpenModel) -> List[int]:
        geometry = self.geometry
        rows: List[int] = []
        for subarray, locals_ in open_.rows.items():
            for local in locals_:
                rows.append(geometry.bank_row(subarray, local))
        return rows

    def _begin_activation(
        self, bank: int, bankm: _BankModel, row: int, index: int, time_ns: float
    ) -> None:
        geometry = self.geometry
        subarray = geometry.subarray_of_row(row)
        local = geometry.local_row(row)
        bankm.open = _OpenModel(
            rows={subarray: (local,)},
            first_subarray=subarray,
            first_row=row,
            first_act_ns=time_ns,
            last_act_ns=time_ns,
            act_index=index,
        )
        if self.observer is not None:
            self.observer.on_fresh_activation(bank, row, index)

    # -- opcode handlers -------------------------------------------------

    def _on_act(
        self,
        state: SessionState,
        bankm: _BankModel,
        cmd: Command,
        index: int,
        t: float,
        timing: TimingParameters,
        emit: _Emit,
        idioms: List[GapClassification],
    ) -> None:
        open_ = bankm.open
        assert cmd.row is not None
        if open_ is None:
            self._begin_activation(cmd.bank, bankm, cmd.row, index, t)
            return
        if open_.pending_pre_ns is None:
            if self.support is ActivationSupport.NONE:
                idioms.append(
                    GapClassification(
                        bank=cmd.bank,
                        idiom="ignored",
                        command_index=index,
                        first_gap_ns=None,
                        second_gap_ns=None,
                        violates_t_ras=False,
                        violates_t_rp=False,
                    )
                )
                return
            emit(
                "FC101",
                index,
                f"ACT to row {cmd.row} while bank {cmd.bank} is open with no "
                "pending PRE (raises CommandSequenceError at runtime)",
            )
            return
        if self._pre_due(open_, timing, t):
            self._complete_precharge(state, cmd.bank, bankm, timing, idioms)
            self._begin_activation(cmd.bank, bankm, cmd.row, index, t)
            return
        self._glitch(state, bankm, cmd, index, t, timing, emit, idioms)

    def _glitch(
        self,
        state: SessionState,
        bankm: _BankModel,
        cmd: Command,
        index: int,
        t: float,
        timing: TimingParameters,
        emit: _Emit,
        idioms: List[GapClassification],
    ) -> None:
        """Second ACT while a violated PRE is pending: the multi-row glitch."""
        open_ = bankm.open
        assert open_ is not None and cmd.row is not None
        geometry = self.geometry
        bank = cmd.bank
        first_gap = (
            open_.pending_pre_ns - open_.last_act_ns
            if open_.pending_pre_ns is not None
            else None
        )
        second_gap = t - open_.pending_pre_ns if open_.pending_pre_ns is not None else None

        if self.support is ActivationSupport.NONE:
            # Micron-style policy: the violating ACT is silently dropped.
            open_.pending_pre_ns = None
            open_.pending_pre_index = None
            idioms.append(
                GapClassification(
                    bank=bank,
                    idiom="ignored",
                    command_index=index,
                    first_gap_ns=first_gap,
                    second_gap_ns=second_gap,
                    violates_t_ras=False,
                    violates_t_rp=False,
                )
            )
            return

        sub_first = open_.first_subarray
        sub_last = geometry.subarray_of_row(cmd.row)
        diff = abs(sub_last - sub_first)

        if diff > 1:
            emit(
                "FC104",
                index,
                f"double activation pairs rows {open_.first_row} (subarray "
                f"{sub_first}) and {cmd.row} (subarray {sub_last}): the "
                "subarrays share no sense-amplifier stripe, so the second "
                "activation proceeds independently and the operation cannot "
                "work",
            )
            idioms.append(
                GapClassification(
                    bank=bank,
                    idiom="isolated",
                    command_index=index,
                    first_gap_ns=first_gap,
                    second_gap_ns=second_gap,
                    violates_t_ras=open_.phase == "sharing",
                    violates_t_rp=True,
                )
            )
            # Mirror Bank._abort_to_fresh: only the last ACT takes effect.
            bankm.open = None
            if self.observer is not None:
                self.observer.on_abort(bank)
            self._begin_activation(bank, bankm, cmd.row, index, t)
            return

        open_.pending_pre_ns = None
        open_.pending_pre_index = None

        if (
            self.support is ActivationSupport.SEQUENTIAL_ONLY
            and open_.phase == "sharing"
        ):
            # Sequential-only chips finish the first activation before
            # honoring the second: the charge-sharing regime is
            # unreachable (Samsung, §6.3).
            self._resolve(state, bank, open_)

        regime = "latched" if open_.phase == "latched" else "sharing"
        if regime == "latched":
            idiom = "rowclone" if diff == 0 else "not"
        else:
            idiom = "logic"

        pattern_rows = self._pattern_rows(bank, open_.first_row, cmd.row, diff)
        before = {sub: set(locals_) for sub, locals_ in open_.rows.items()}
        reference_rows = self._merge_rows(open_, pattern_rows)
        open_.last_act_ns = t
        open_.nominal = False
        open_.glitched = True

        if idiom in ("not", "rowclone") and self.observer is not None:
            new_rows = {
                sub: tuple(sorted(set(locals_) - before.get(sub, set())))
                for sub, locals_ in open_.rows.items()
            }
            new_rows = {sub: locs for sub, locs in new_rows.items() if locs}
            self.observer.on_latched_drive(
                bank, new_rows, open_.first_subarray, index
            )

        if idiom == "logic":
            if diff == 0:
                emit(
                    "FC105",
                    index,
                    f"charge-sharing activation of rows {open_.first_row} and "
                    f"{cmd.row} keeps reference and compute operands in one "
                    f"subarray ({sub_first}); AND/OR across subarrays is "
                    "impossible here",
                )
            frac_hits = {
                row for row in reference_rows if (bank, row) in state.frac_rows
            }
            if not frac_hits:
                emit(
                    "FC106",
                    index,
                    "charge-sharing operation but no row of the reference "
                    f"operand set {sorted(reference_rows)} was Frac-initialized "
                    "(VDD/2) in this session",
                )

        idioms.append(
            GapClassification(
                bank=bank,
                idiom=idiom,
                command_index=index,
                first_gap_ns=first_gap,
                second_gap_ns=second_gap,
                violates_t_ras=(
                    first_gap is not None and first_gap < timing.t_ras - _EPS
                ),
                violates_t_rp=(
                    second_gap is not None and second_gap < timing.t_rp - _EPS
                ),
            )
        )

    def _pattern_rows(
        self, bank: int, row_first: int, row_last: int, diff: int
    ) -> Dict[int, Tuple[int, ...]]:
        """Decoder-predicted activated local rows per subarray."""
        geometry = self.geometry
        rows: Dict[int, Set[int]] = {}

        def add(subarray: int, locals_: Iterable[int]) -> None:
            rows.setdefault(subarray, set()).update(locals_)

        # The addressed rows always count: even a non-engaging draw keeps
        # the last row open, and the engaged path includes both.
        add(geometry.subarray_of_row(row_first), (geometry.local_row(row_first),))
        add(geometry.subarray_of_row(row_last), (geometry.local_row(row_last),))

        decoder = self.decoder
        if decoder is not None:
            try:
                if diff == 0:
                    pattern = decoder.same_subarray_pattern(  # type: ignore[attr-defined]
                        bank, row_first, row_last
                    )
                else:
                    pattern = decoder.neighboring_pattern(  # type: ignore[attr-defined]
                        bank, row_first, row_last
                    )
            except AddressError:
                pattern = None
            if pattern is not None:
                add(pattern.subarray_first, pattern.rows_first)
                add(pattern.subarray_last, pattern.rows_last)
        return {sub: tuple(sorted(locals_)) for sub, locals_ in rows.items()}

    def _merge_rows(
        self,
        open_: _OpenModel,
        pattern_rows: Dict[int, Tuple[int, ...]],
    ) -> Set[int]:
        """Merge glitch rows into the open set; returns the reference-side
        bank rows (first subarray side, or the whole set in-subarray)."""
        geometry = self.geometry
        merged: Dict[int, Tuple[int, ...]] = dict(open_.rows)
        for subarray, locals_ in pattern_rows.items():
            existing = set(merged.get(subarray, ()))
            merged[subarray] = tuple(sorted(existing | set(locals_)))
        open_.rows = merged

        # The reference operand side is the first-activated subarray
        # (same-subarray ops: the whole merged set lives there anyway).
        reference_sub = open_.first_subarray
        return {
            geometry.bank_row(reference_sub, local)
            for local in merged.get(reference_sub, ())
        }

    def _on_pre(
        self,
        bankm: _BankModel,
        cmd: Command,
        index: int,
        t: float,
        timing: TimingParameters,
        emit: _Emit,
    ) -> None:
        open_ = bankm.open
        if open_ is None:
            emit(
                "FC108",
                index,
                f"PRE to bank {cmd.bank} which is already precharged "
                "(no effect)",
            )
            return
        if (
            self.support is ActivationSupport.NONE
            and t - open_.first_act_ns < timing.t_ras - _EPS
        ):
            # Micron-style policy: a PRE that greatly violates tRAS is
            # ignored; the activation simply continues.
            return
        if open_.pending_pre_ns is not None:
            emit(
                "FC108",
                index,
                f"PRE to bank {cmd.bank} while a PRE is already pending "
                "(the earlier one is superseded)",
            )
        open_.pending_pre_ns = t
        open_.pending_pre_index = index

    def _on_column_access(
        self,
        state: SessionState,
        bankm: _BankModel,
        cmd: Command,
        index: int,
        t: float,
        timing: TimingParameters,
        emit: _Emit,
        idioms: List[GapClassification],
    ) -> None:
        assert cmd.row is not None
        verb = cmd.opcode.value
        if bankm.open is not None and self._pre_due(bankm.open, timing, t):
            self._complete_precharge(state, cmd.bank, bankm, timing, idioms)
        open_ = bankm.open
        if open_ is None:
            emit(
                "FC102",
                index,
                f"{verb} to row {cmd.row} of bank {cmd.bank}, which is "
                "precharged (raises CommandSequenceError at runtime)",
            )
            return
        if open_.phase == "sharing":
            self._resolve(state, cmd.bank, open_)
        geometry = self.geometry
        subarray = geometry.subarray_of_row(cmd.row)
        local = geometry.local_row(cmd.row)
        if local not in open_.rows.get(subarray, ()):
            if self.support is ActivationSupport.NONE:
                return
            active = sorted(self._open_bank_rows(open_))
            emit(
                "FC103",
                index,
                f"{verb} to row {cmd.row}, which is not among the activated "
                f"rows {active}",
            )
            return
        if t - open_.last_act_ns < timing.t_rcd - _EPS:
            emit(
                "FC111",
                index,
                f"{verb} issued {t - open_.last_act_ns:.2f}ns after the "
                f"activation, sooner than tRCD={timing.t_rcd:g}ns",
            )
        if cmd.opcode is Opcode.WR:
            # A write overdrives the activated rows: any Frac value on
            # this subarray pair is gone.
            for sub in (subarray,):
                for loc in open_.rows.get(sub, ()):
                    state.frac_rows.discard((cmd.bank, geometry.bank_row(sub, loc)))
            if self.observer is not None:
                self.observer.on_write(cmd.bank, cmd.row, cmd.data, index)
        elif self.observer is not None:
            self.observer.on_read(cmd.bank, cmd.row, index, cmd.label)

    def _on_ref(
        self,
        state: SessionState,
        bankm: _BankModel,
        cmd: Command,
        index: int,
        emit: _Emit,
    ) -> None:
        if bankm.open is not None:
            emit(
                "FC102",
                index,
                f"REF issued to bank {cmd.bank} while it is still open "
                "(a pending PRE only completes at the next ACT/WR/RD or "
                "end-of-program settle; raises CommandSequenceError at "
                "runtime)",
            )
            return
        # Refresh re-amplifies every cell to a full rail: Frac'd VDD/2
        # values are destroyed (see Bank.refresh).
        state.frac_rows = {
            (bank, row) for bank, row in state.frac_rows if bank != cmd.bank
        }
        if self.observer is not None:
            self.observer.on_refresh(cmd.bank, index)

    # -- program-level intent --------------------------------------------

    def _check_intent(
        self,
        program: TestProgram,
        idioms: Sequence[GapClassification],
        last_index: int,
        emit: _Emit,
    ) -> None:
        intent = getattr(program, "intent", None)
        if intent is None or self.support is ActivationSupport.NONE:
            return
        observed = {c.idiom for c in idioms}
        satisfied = {
            "not": "not" in observed,
            "rowclone": "rowclone" in observed,
            "logic": "logic" in observed,
            "frac": "frac" in observed,
            "nominal": observed <= {"nominal"},
        }[intent]
        if satisfied:
            return
        severity: Optional[Severity] = None
        extra = ""
        if (
            intent == "logic"
            and self.support is ActivationSupport.SEQUENTIAL_ONLY
            and "not" in observed
        ):
            # Chip limitation (§7), not a program bug: sequential-only
            # chips resolve the first activation before the second joins.
            severity = Severity.WARNING
            extra = (
                "; the chip is sequential-only, so charge sharing never "
                "engages and the sequence degrades to the NOT regime (§7)"
            )
        glitch_index = next(
            (c.command_index for c in idioms if c.idiom not in ("nominal",)),
            last_index,
        )
        shown = sorted(observed) if observed else ["nominal"]
        emit(
            "FC113",
            glitch_index,
            f"program declares intent {intent!r} but its timing/topology "
            f"produce {shown}{extra}",
            severity=severity,
        )


def verify_program(
    program: TestProgram,
    module: Optional[object] = None,
    state: Optional[SessionState] = None,
    suppress: Iterable[str] = (),
) -> ProgramReport:
    """Convenience wrapper: verify one program against a module's topology."""
    if module is not None:
        verifier = ProgramVerifier.for_module(module, suppress=suppress)
    else:
        verifier = ProgramVerifier(suppress=suppress)
    return verifier.verify_program(program, state=state)
