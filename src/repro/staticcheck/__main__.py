"""Standalone static-check CLI.

Default run — verify every shipped :mod:`repro.core.sequences`
constructor against a module spec (all four DDR4 speed grades, input
counts 2/4/8/16) and lint the installed ``repro`` package for
determinism bugs::

    python -m repro.staticcheck                  # default spec
    python -m repro.staticcheck samsung-8gb-d-x8-2133

Other modes::

    python -m repro.staticcheck --list-rules     # the rule catalogue
    python -m repro.staticcheck --lint src/      # lint specific paths
    python -m repro.staticcheck --demo fc104     # run a documented bad case
    python -m repro.staticcheck --demo all       # self-test all bad cases

Exit status: 0 clean (warnings allowed), 1 when error-severity
diagnostics were found — in ``--demo CASE`` mode, 1 when the case's rule
fired (the expected outcome) and 2 when it did not.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional, TextIO

from ..bender.program import TestProgram
from ..characterization.fleet import all_specs
from ..core.addressing import find_pattern_pair
from ..core.sequences import (
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from ..dram.config import ModuleSpec
from ..dram.decoder import ActivationKind
from ..dram.module import Module
from ..dram.timing import timing_for_speed
from ..errors import ReverseEngineeringError
from ..rng import SeedTree
from .badcases import BADCASES, run_case
from .determinism import lint_paths
from .diagnostics import RULES, Diagnostic, format_diagnostics, has_errors
from .verifier import ProgramVerifier

DEFAULT_SPEC = "hynix-4gb-m-x8-2666"
SPEED_GRADES = (2133, 2400, 2666, 3200)
INPUT_COUNTS = (2, 4, 8, 16)


def _resolve_spec(name: str) -> ModuleSpec:
    specs = {spec.name: spec for spec in all_specs()}
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(sorted(specs))
        raise SystemExit(f"unknown module spec {name!r}; known specs: {known}")


def verify_shipped_sequences(
    spec: ModuleSpec, verbose: bool = False, out: TextIO = sys.stdout
) -> List[Diagnostic]:
    """Verify every sequences constructor at every speed grade.

    For each input count N a (R_F, R_L) pair with an N:N activation
    pattern is looked up via the module's decoder model, exactly as the
    experiments do; the Frac sequence runs before each logic sequence so
    the session carries the VDD/2 reference the paper requires.
    """
    diagnostics: List[Diagnostic] = []
    geometry = spec.chip.geometry
    for speed in SPEED_GRADES:
        config = replace(spec.chip, speed_rate_mts=speed)
        module = Module(config, chip_count=1, seed_tree=SeedTree(0))
        timing = timing_for_speed(speed)
        verifier = ProgramVerifier.for_module(module)
        state = verifier.new_session()
        programs: List[TestProgram] = []
        bank = 0
        for n in INPUT_COUNTS:
            if n > config.max_simultaneous_n:
                out.write(
                    f"[staticcheck] {spec.name}@{speed}: skipping N={n} "
                    f"(chip tops out at {config.max_simultaneous_n})\n"
                )
                continue
            try:
                ref_row, com_row = find_pattern_pair(
                    module.decoder, geometry, bank, 0, 1, n,
                    kind=ActivationKind.N_TO_N, seed=n,
                )
                src_row, dst_row = find_pattern_pair(
                    module.decoder, geometry, bank, 2, 3, n,
                    kind=ActivationKind.N_TO_N, seed=100 + n,
                )
            except ReverseEngineeringError as exc:
                out.write(
                    f"[staticcheck] {spec.name}@{speed}: no N={n} pattern "
                    f"pair ({exc})\n"
                )
                continue
            programs.append(frac_program(timing, bank, ref_row))
            programs.append(logic_program(timing, bank, ref_row, com_row))
            programs.append(not_program(timing, bank, src_row, dst_row))
        # Every support level can express the NOT shape (sequential
        # chips degrade to exactly this, §7), so verify it with a plain
        # neighboring pair independent of the N:N pattern search.
        programs.append(
            not_program(
                timing, bank,
                geometry.bank_row(5, 3), geometry.bank_row(6, 8),
            )
        )
        programs.append(
            rowclone_program(
                timing, bank,
                geometry.bank_row(4, 10), geometry.bank_row(4, 40),
            )
        )
        programs.append(nominal_activation_program(timing, bank, 5))
        for program in programs:
            report = verifier.verify_program(program, state=state)
            diagnostics.extend(report.diagnostics)
            if verbose:
                out.write(report.format() + "\n")
    return diagnostics


def _default_lint_target() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _run_demo(name: str, out: TextIO) -> int:
    if name == "all":
        failures: List[str] = []
        for case_name in sorted(BADCASES):
            case, diagnostics = run_case(case_name)
            fired = case.fires(diagnostics)
            status = "fires" if fired else "MISSED"
            out.write(f"[demo] {case_name}: {case.rule} {status}\n")
            if not fired:
                failures.append(case_name)
        if failures:
            out.write(f"[demo] missed cases: {', '.join(failures)}\n")
            return 2
        out.write(f"[demo] all {len(BADCASES)} documented bad cases fire\n")
        return 0
    if name not in BADCASES:
        known = ", ".join(sorted(BADCASES))
        raise SystemExit(f"unknown demo case {name!r}; known cases: {known}")
    case, diagnostics = run_case(name)
    out.write(f"# demo case {case.name}: {case.description}\n")
    if diagnostics:
        out.write(format_diagnostics(diagnostics) + "\n")
    if case.fires(diagnostics):
        out.write(f"[demo] rule {case.rule} fired as documented\n")
        return 1
    out.write(f"[demo] expected rule {case.rule} did NOT fire\n")
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "spec", nargs="?", default=DEFAULT_SPEC,
        help=f"module spec to verify sequences against (default {DEFAULT_SPEC})",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--demo", metavar="CASE",
        help="run a documented bad case ('all' for the full self-test)",
    )
    parser.add_argument(
        "--lint", nargs="+", metavar="PATH",
        help="lint these files/directories instead of the installed repro "
        "package (skips sequence verification)",
    )
    parser.add_argument(
        "--no-lint", action="store_true",
        help="skip the determinism lint in the default run",
    )
    parser.add_argument(
        "--no-sequences", action="store_true",
        help="skip sequence verification in the default run",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-program gap classifications",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        for rule in RULES.values():
            out.write(
                f"{rule.id}  {rule.severity}  {rule.title}: {rule.summary}\n"
            )
        return 0

    if args.demo:
        return _run_demo(args.demo, out)

    diagnostics: List[Diagnostic] = []
    if args.lint:
        diagnostics.extend(lint_paths(args.lint))
    else:
        if not args.no_sequences:
            spec = _resolve_spec(args.spec)
            diagnostics.extend(
                verify_shipped_sequences(spec, verbose=args.verbose, out=out)
            )
        if not args.no_lint:
            diagnostics.extend(lint_paths([_default_lint_target()]))

    if diagnostics:
        out.write(format_diagnostics(diagnostics) + "\n")
    errors = [d for d in diagnostics if has_errors([d])]
    warnings = len(diagnostics) - len(errors)
    out.write(
        f"[staticcheck] {len(errors)} error(s), {warnings} warning(s)\n"
    )
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
