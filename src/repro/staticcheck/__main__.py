"""Standalone static-check CLI.

Default run — verify every shipped :mod:`repro.core.sequences`
constructor against a module spec (all four DDR4 speed grades, input
counts 2/4/8/16) and lint the installed ``repro`` package for
determinism bugs::

    python -m repro.staticcheck                  # default spec
    python -m repro.staticcheck samsung-8gb-d-x8-2133

Other modes::

    python -m repro.staticcheck --list-rules     # the rule catalogue
    python -m repro.staticcheck --lint src/      # lint specific paths
    python -m repro.staticcheck --demo fc104     # run a documented bad case
    python -m repro.staticcheck --demo all       # self-test all bad cases
    python -m repro.staticcheck --semantics      # symbolic truth-table proofs
    python -m repro.staticcheck --prove '~(a & b) | c'   # prove one expression
    python -m repro.staticcheck --schedule PLAN.json     # multi-tenant races
    python -m repro.staticcheck --schedule PLAN.json --explain

``--semantics`` proves every shipped sequences flow (AND/NAND/OR/NOR ×
N, NOT, RowClone) symbolically against its expected truth table at every
speed grade, proves the compiler lowering catalogue, and prints the
static worst-case sense-margin report.  ``--prove`` compiles one
expression (``~ & ^ |`` syntax), prints the machine-checked truth table
the schedule computes, and the per-step margin feasibility.

``--schedule`` reads a PLAN.json describing (tenant, program, placement)
jobs plus the allocation/quarantine maps and runs the CC401–CC410
concurrency analysis against the spec's geometry and decoder; the
conflict graph (edges + greedy waves) prints alongside, and
``--explain`` adds the happens-before trace under each finding.

Exit status: 0 clean (warnings allowed), 1 when error-severity
diagnostics were found — in ``--demo CASE`` mode, 1 when the case's rule
fired (the expected outcome) and 2 when it did not.  ``--schedule``
exits 0 when the schedule is admitted, 1 when it is refused.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional, TextIO

from ..bender.program import TestProgram
from ..characterization.fleet import all_specs
from ..core.addressing import find_pattern_pair
from ..core.sequences import (
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from ..dram.config import ModuleSpec
from ..dram.decoder import ActivationKind
from ..dram.module import Module
from ..dram.timing import timing_for_speed
from ..errors import ReverseEngineeringError
from ..rng import SeedTree
from ..core.layout import bank_rows
from ..dram.analog import worst_case_sense_margin
from ..dram.calibration import DieCalibration
from .badcases import BADCASES, run_case
from .determinism import lint_paths
from .diagnostics import RULES, Diagnostic, format_diagnostics, has_errors
from .semantics import (
    CONST0,
    CONST1,
    HALF,
    SemanticAnalyzer,
    prove_value,
    sym_and,
    sym_not,
    sym_or,
    sym_var,
)
from .verifier import ProgramVerifier

DEFAULT_SPEC = "hynix-4gb-m-x8-2666"
SPEED_GRADES = (2133, 2400, 2666, 3200)
INPUT_COUNTS = (2, 4, 8, 16)


def _resolve_spec(name: str) -> ModuleSpec:
    specs = {spec.name: spec for spec in all_specs()}
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(sorted(specs))
        raise SystemExit(f"unknown module spec {name!r}; known specs: {known}")


def verify_shipped_sequences(
    spec: ModuleSpec, verbose: bool = False, out: TextIO = sys.stdout
) -> List[Diagnostic]:
    """Verify every sequences constructor at every speed grade.

    For each input count N a (R_F, R_L) pair with an N:N activation
    pattern is looked up via the module's decoder model, exactly as the
    experiments do; the Frac sequence runs before each logic sequence so
    the session carries the VDD/2 reference the paper requires.
    """
    diagnostics: List[Diagnostic] = []
    geometry = spec.chip.geometry
    for speed in SPEED_GRADES:
        config = replace(spec.chip, speed_rate_mts=speed)
        module = Module(config, chip_count=1, seed_tree=SeedTree(0))
        timing = timing_for_speed(speed)
        verifier = ProgramVerifier.for_module(module)
        state = verifier.new_session()
        programs: List[TestProgram] = []
        bank = 0
        for n in INPUT_COUNTS:
            if n > config.max_simultaneous_n:
                out.write(
                    f"[staticcheck] {spec.name}@{speed}: skipping N={n} "
                    f"(chip tops out at {config.max_simultaneous_n})\n"
                )
                continue
            try:
                ref_row, com_row = find_pattern_pair(
                    module.decoder, geometry, bank, 0, 1, n,
                    kind=ActivationKind.N_TO_N, seed=n,
                )
                src_row, dst_row = find_pattern_pair(
                    module.decoder, geometry, bank, 2, 3, n,
                    kind=ActivationKind.N_TO_N, seed=100 + n,
                )
            except ReverseEngineeringError as exc:
                out.write(
                    f"[staticcheck] {spec.name}@{speed}: no N={n} pattern "
                    f"pair ({exc})\n"
                )
                continue
            programs.append(frac_program(timing, bank, ref_row))
            programs.append(logic_program(timing, bank, ref_row, com_row))
            programs.append(not_program(timing, bank, src_row, dst_row))
        # Every support level can express the NOT shape (sequential
        # chips degrade to exactly this, §7), so verify it with a plain
        # neighboring pair independent of the N:N pattern search.
        programs.append(
            not_program(
                timing, bank,
                geometry.bank_row(5, 3), geometry.bank_row(6, 8),
            )
        )
        programs.append(
            rowclone_program(
                timing, bank,
                geometry.bank_row(4, 10), geometry.bank_row(4, 40),
            )
        )
        programs.append(nominal_activation_program(timing, bank, 5))
        for program in programs:
            report = verifier.verify_program(program, state=state)
            diagnostics.extend(report.diagnostics)
            if verbose:
                out.write(report.format() + "\n")
    return diagnostics


def prove_shipped_semantics(
    spec: ModuleSpec, verbose: bool = False, out: TextIO = sys.stdout
) -> List[Diagnostic]:
    """Symbolically prove every shipped flow's truth table.

    For each speed grade and input count the AND/OR families are proved
    on the compute terminal and NAND/NOR on the reference terminal, NOT
    and RowClone on their destination rows; the static worst-case sense
    margin of every charge-sharing episode is printed alongside.
    """
    diagnostics: List[Diagnostic] = []
    geometry = spec.chip.geometry
    for speed in SPEED_GRADES:
        config = replace(spec.chip, speed_rate_mts=speed)
        module = Module(config, chip_count=1, seed_tree=SeedTree(0))
        timing = timing_for_speed(speed)
        analyzer = SemanticAnalyzer.for_module(module)
        bank = 0
        for n in INPUT_COUNTS:
            if n > config.max_simultaneous_n:
                continue
            try:
                ref_row, com_row = find_pattern_pair(
                    module.decoder, geometry, bank, 0, 1, n,
                    kind=ActivationKind.N_TO_N, seed=n,
                )
            except ReverseEngineeringError:
                continue
            pattern = module.decoder.neighboring_pattern(bank, ref_row, com_row)
            ref_rows = bank_rows(
                geometry, pattern.subarray_first, pattern.rows_first
            )
            com_rows = bank_rows(
                geometry, pattern.subarray_last, pattern.rows_last
            )
            inputs = [sym_var(f"x{i}") for i in range(n)]
            for family, const, combine in (
                ("and", CONST1, sym_and),
                ("or", CONST0, sym_or),
            ):
                session = analyzer.new_session()
                for row in ref_rows[:-1]:
                    session.set_value(bank, row, const)
                session.set_value(bank, ref_rows[-1], HALF)
                for value, row in zip(inputs, com_rows):
                    session.set_value(bank, row, value)
                report = analyzer.analyze_program(
                    logic_program(timing, bank, ref_row, com_row), session
                )
                diagnostics.extend(report.diagnostics)
                expected = combine(*inputs)
                complement = sym_not(expected)
                where = f"{spec.name}@{speed} {family.upper()} N={n}"
                for row in com_rows:
                    diagnostics.extend(
                        prove_value(
                            session.value_of(bank, row), expected,
                            f"{where} compute row {row}",
                            program=f"logic-{ref_row}->{com_row}",
                        )
                    )
                for row in ref_rows:
                    diagnostics.extend(
                        prove_value(
                            session.value_of(bank, row), complement,
                            f"{where} reference row {row}",
                            program=f"logic-{ref_row}->{com_row}",
                        )
                    )
                for episode in report.episodes:
                    if episode.margin is not None:
                        out.write(
                            f"[semantics] {spec.name}@{speed}: "
                            f"{episode.margin.describe()}\n"
                        )
                if verbose:
                    proved = session.value_of(bank, com_rows[0])
                    out.write(f"[semantics] {where}: {proved.describe()}\n")
        # NOT across a neighboring pair (all N source rows hold x), and
        # RowClone within one subarray.
        try:
            src_row, dst_row = find_pattern_pair(
                module.decoder, geometry, bank, 2, 3, 2,
                kind=ActivationKind.N_TO_N, seed=102,
            )
        except ReverseEngineeringError:
            src_row = geometry.bank_row(2, 3)
            dst_row = geometry.bank_row(3, 8)
        pattern = module.decoder.neighboring_pattern(bank, src_row, dst_row)
        session = analyzer.new_session()
        for row in bank_rows(geometry, pattern.subarray_first, pattern.rows_first):
            session.set_value(bank, row, sym_var("x"))
        report = analyzer.analyze_program(
            not_program(timing, bank, src_row, dst_row), session
        )
        diagnostics.extend(report.diagnostics)
        for row in bank_rows(geometry, pattern.subarray_last, pattern.rows_last):
            diagnostics.extend(
                prove_value(
                    session.value_of(bank, row), sym_not(sym_var("x")),
                    f"{spec.name}@{speed} NOT destination row {row}",
                    program=f"not-{src_row}->{dst_row}",
                )
            )
        session = analyzer.new_session()
        clone_src = geometry.bank_row(4, 10)
        clone_dst = geometry.bank_row(4, 40)
        session.set_value(bank, clone_src, sym_var("y"))
        report = analyzer.analyze_program(
            rowclone_program(timing, bank, clone_src, clone_dst), session
        )
        diagnostics.extend(report.diagnostics)
        diagnostics.extend(
            prove_value(
                session.value_of(bank, clone_dst), sym_var("y"),
                f"{spec.name}@{speed} RowClone destination row {clone_dst}",
                program=f"rowclone-{clone_src}->{clone_dst}",
            )
        )
    return diagnostics


#: The compiler lowering catalogue ``--semantics`` proves: every
#: optimization path gets at least one representative expression.
def _compiler_catalogue():
    from ..core.compiler import And, Not, Or, Xor, v

    shared = And(v("a"), v("b"))
    return (
        ("fan-in fusion", And(And(v("a"), v("b")), And(v("c"), v("d")))),
        ("complement fusion NAND", Not(And(v("a"), v("b"), v("c")))),
        ("complement fusion NOR", Not(Or(v("a"), v("b"), v("c")))),
        ("double negation", Not(Not(Or(v("a"), v("b"))))),
        ("xor desugar", Xor(v("a"), v("b"))),
        ("shared subexpression", Or(shared, Xor(shared, v("c")))),
        ("wide regroup", And(*[v(f"x{i}") for i in range(20)])),
    )


def prove_compiler_catalogue(out: TextIO = sys.stdout) -> List[Diagnostic]:
    """Round-trip the compiler lowering catalogue through its proof."""
    from ..errors import ProgramVerificationError
    from ..core.compiler import compile_expression

    diagnostics: List[Diagnostic] = []
    for label, expr in _compiler_catalogue():
        try:
            program = compile_expression(expr)
        except ProgramVerificationError as exc:
            out.write(f"[semantics] compiler {label}: PROOF FAILED\n")
            diagnostics.extend(exc.diagnostics)
            continue
        proved = (
            program.proof.describe()
            if program.proof is not None
            else "sampled-equivalence (beyond the 16-variable cap)"
        )
        out.write(f"[semantics] compiler {label}: {proved}\n")
    return diagnostics


def _run_prove(text: str, out: TextIO) -> int:
    from ..errors import ProgramVerificationError, ReproError
    from ..core.compiler import compile_expression, parse_expression

    try:
        expr = parse_expression(text)
        program = compile_expression(expr)
    except ProgramVerificationError as exc:
        out.write(f"[prove] equivalence proof FAILED:\n{exc}\n")
        return 1
    except ReproError as exc:
        raise SystemExit(f"cannot parse expression: {exc}")
    counts = ", ".join(
        f"{op}×{count}" for op, count in sorted(program.op_counts.items())
    )
    out.write(f"# {text}\n")
    out.write(f"schedule: {counts or 'no in-DRAM ops (bare variable)'}\n")
    if program.proof is not None:
        out.write("proved truth table:\n")
        out.write(program.proof.format_table() + "\n")
    else:
        out.write(
            "proved by sampled equivalence (beyond the 16-variable "
            "exhaustive cap)\n"
        )
    calibration = DieCalibration()
    reported = set()
    for step in program.steps:
        n = len(step.inputs)
        if step.op == "not" or n < 2 or (step.op, n) in reported:
            continue
        reported.add((step.op, n))
        bound = worst_case_sense_margin(step.op, n, calibration)
        out.write(f"margin: {bound.describe()}\n")
    return 0


def _default_lint_target() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _run_schedule(
    path: str, spec_name: str, explain: bool, out: TextIO
) -> int:
    """Analyze a PLAN.json schedule against the spec's topology."""
    import json

    from ..errors import ReproError
    from .concurrency import ScheduleAnalyzer, schedule_from_plan

    try:
        with open(path, encoding="utf-8") as handle:
            plan = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read schedule plan {path!r}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"schedule plan {path!r} is not valid JSON: {exc}")
    if not isinstance(plan, dict):
        raise SystemExit(f"schedule plan {path!r} must be a JSON object")
    spec = _resolve_spec(str(plan.get("spec", spec_name)))
    config = spec.chip
    if "speed" in plan:
        config = replace(config, speed_rate_mts=int(plan["speed"]))
    module = Module(config, chip_count=1, seed_tree=SeedTree(0))
    timing = timing_for_speed(config.speed_rate_mts)
    try:
        schedule = schedule_from_plan(plan, timing)
        report = ScheduleAnalyzer.for_module(module).check_schedule(schedule)
    except ReproError as exc:
        raise SystemExit(f"schedule plan {path!r}: {exc}")
    out.write(report.format(explain=explain) + "\n")
    graph = report.conflicts
    if graph.edges:
        for a, b, rules in graph.edges:
            out.write(f"[conflict] {a} x {b}: {', '.join(rules)}\n")
    else:
        out.write("[conflict] no conflicting job pairs\n")
    waves = graph.waves()
    for index, wave in enumerate(waves):
        out.write(f"[wave {index}] {', '.join(wave)}\n")
    return 0 if report.admitted else 1


def _run_demo(name: str, out: TextIO) -> int:
    if name == "all":
        failures: List[str] = []
        for case_name in sorted(BADCASES):
            case, diagnostics = run_case(case_name)
            fired = case.fires(diagnostics)
            status = "fires" if fired else "MISSED"
            out.write(f"[demo] {case_name}: {case.rule} {status}\n")
            if not fired:
                failures.append(case_name)
        if failures:
            out.write(f"[demo] missed cases: {', '.join(failures)}\n")
            return 2
        out.write(f"[demo] all {len(BADCASES)} documented bad cases fire\n")
        return 0
    if name not in BADCASES:
        known = ", ".join(sorted(BADCASES))
        raise SystemExit(f"unknown demo case {name!r}; known cases: {known}")
    case, diagnostics = run_case(name)
    out.write(f"# demo case {case.name}: {case.description}\n")
    if diagnostics:
        out.write(format_diagnostics(diagnostics) + "\n")
    if case.fires(diagnostics):
        out.write(f"[demo] rule {case.rule} fired as documented\n")
        return 1
    out.write(f"[demo] expected rule {case.rule} did NOT fire\n")
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "spec", nargs="?", default=DEFAULT_SPEC,
        help=f"module spec to verify sequences against (default {DEFAULT_SPEC})",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--demo", metavar="CASE",
        help="run a documented bad case ('all' for the full self-test)",
    )
    parser.add_argument(
        "--semantics", action="store_true",
        help="prove every shipped flow and the compiler catalogue "
        "symbolically (replaces the default run)",
    )
    parser.add_argument(
        "--prove", metavar="EXPR",
        help="compile one expression (~ & ^ | syntax) and print the "
        "machine-checked truth table and margin report",
    )
    parser.add_argument(
        "--schedule", metavar="PLAN.json",
        help="analyze a multi-tenant schedule plan for concurrency races "
        "and isolation violations (exit 1 when refused)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="with --schedule: print the happens-before trace under each "
        "finding",
    )
    parser.add_argument(
        "--lint", nargs="+", metavar="PATH",
        help="lint these files/directories instead of the installed repro "
        "package (skips sequence verification)",
    )
    parser.add_argument(
        "--no-lint", action="store_true",
        help="skip the determinism lint in the default run",
    )
    parser.add_argument(
        "--no-sequences", action="store_true",
        help="skip sequence verification in the default run",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-program gap classifications",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        for rule in RULES.values():
            out.write(
                f"{rule.id}  {rule.severity}  {rule.title}: {rule.summary}\n"
            )
        return 0

    if args.demo:
        return _run_demo(args.demo, out)

    if args.prove:
        return _run_prove(args.prove, out)

    if args.schedule:
        return _run_schedule(args.schedule, args.spec, args.explain, out)

    diagnostics: List[Diagnostic] = []
    if args.lint:
        diagnostics.extend(lint_paths(args.lint))
    elif args.semantics:
        spec = _resolve_spec(args.spec)
        diagnostics.extend(
            prove_shipped_semantics(spec, verbose=args.verbose, out=out)
        )
        diagnostics.extend(prove_compiler_catalogue(out))
    else:
        if not args.no_sequences:
            spec = _resolve_spec(args.spec)
            diagnostics.extend(
                verify_shipped_sequences(spec, verbose=args.verbose, out=out)
            )
        if not args.no_lint:
            diagnostics.extend(lint_paths([_default_lint_target()]))

    if diagnostics:
        out.write(format_diagnostics(diagnostics) + "\n")
    errors = [d for d in diagnostics if has_errors([d])]
    warnings = len(diagnostics) - len(errors)
    out.write(
        f"[staticcheck] {len(errors)} error(s), {warnings} warning(s)\n"
    )
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
