"""Documented bad cases: one minimal trigger per staticcheck rule.

Each case is a tiny program (or source snippet, for the determinism
rules) that violates exactly one rule.  The registry backs both the CLI
demo mode (``python -m repro.staticcheck --demo fc104``) and the golden
diagnostic tests, so "the documented bad cases" are a single artifact
the docs, the CLI, and the test suite all agree on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..bender.commands import Command, Opcode
from ..bender.program import TestProgram
from ..core.sequences import (
    double_activation_program,
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
)
from ..core.sequences import rowclone_program
from ..dram.analog import worst_case_sense_margin
from ..dram.calibration import DieCalibration
from ..dram.config import ChipGeometry
from ..dram.timing import ReducedTiming, TimingParameters, timing_for_speed
from ..errors import ProgramError
from ..reliability.schemes import MitigationScheme
from .concurrency import JobSpec, Schedule, ScheduleAnalyzer
from .determinism import lint_source
from .diagnostics import RULES, Diagnostic
from .semantics import (
    CONST0,
    CONST1,
    HALF,
    SemanticAnalyzer,
    SymValue,
    prove_value,
    sym_and,
    sym_nand,
    sym_nor,
    sym_not,
    sym_var,
)
from .verifier import ProgramVerifier

__all__ = ["BadCase", "BADCASES", "run_case"]


@dataclass(frozen=True)
class BadCase:
    """One documented bad case: a name, the rule it must trigger, and a
    callable producing the diagnostics."""

    name: str
    rule: str
    description: str
    run: Callable[[], List[Diagnostic]]

    def fires(self, diagnostics: List[Diagnostic]) -> bool:
        return any(d.rule == self.rule for d in diagnostics)


def _timing() -> TimingParameters:
    return timing_for_speed(2666)


def _verify(program: TestProgram) -> List[Diagnostic]:
    verifier = ProgramVerifier(ChipGeometry())
    return list(verifier.verify_program(program).diagnostics)


def _geometry() -> ChipGeometry:
    return ChipGeometry()


def _row(subarray: int, local: int = 0) -> int:
    return _geometry().bank_row(subarray, local)


def _case_fc101() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc101")
        .act(0, 0, wait_ns=timing.t_ras)
        .act(0, 1, wait_ns=timing.t_ras)  # re-ACT with no PRE in between
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc102_read_precharged() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc102-rd").rd(
        0, 5, wait_ns=timing.t_rcd
    )
    return _verify(program)


def _case_fc102_ref_open() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc102-ref")
        .act(0, 0, wait_ns=timing.t_ras)
        .ref(0)
    )
    return _verify(program)


def _case_fc103() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc103")
        .act(0, 0, wait_ns=timing.t_ras)
        .rd(0, 37, wait_ns=timing.t_rcd)  # row 37 was never activated
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc104() -> List[Diagnostic]:
    # NOT sequence whose destination row sits three subarrays away from
    # the source: the subarrays share no sense-amplifier stripe.
    timing = _timing()
    program = not_program(timing, 0, _row(0), _row(3))
    return _verify(program)


def _case_fc105() -> List[Diagnostic]:
    # Charge-sharing (logic) timing with both operands in one subarray.
    timing = _timing()
    program = logic_program(timing, 0, _row(2, 10), _row(2, 200))
    return _verify(program)


def _case_fc106() -> List[Diagnostic]:
    # A well-placed AND/OR sequence, but nothing Frac-initialized the
    # reference subarray in this session.
    timing = _timing()
    program = logic_program(timing, 0, _row(0, 10), _row(1, 20))
    return _verify(program)


def _case_fc107() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc107")
        .act(0, 0, wait_ns=timing.t_ras)
        .pre(0, wait_ns=0.5)  # below one bus cycle: silently widened
        .act(0, 1, wait_ns=timing.t_ras)
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc108() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc108").pre(
        0, wait_ns=timing.t_rp
    )
    return _verify(program)


def _case_fc109() -> List[Diagnostic]:
    timing = _timing()
    geometry = _geometry()
    program = TestProgram(timing, name="bad-fc109").act(
        0, geometry.rows_per_bank + 7, wait_ns=timing.t_ras
    )
    return _verify(program)


def _case_fc110() -> List[Diagnostic]:
    # Command construction itself rejects a row on PRE; surface the
    # rejection as the FC110 diagnostic it corresponds to.
    try:
        Command(Opcode.PRE, bank=0, row=5)
    except ProgramError as exc:
        rule = RULES["FC110"]
        return [
            Diagnostic(
                rule="FC110",
                severity=rule.severity,
                message=str(exc),
                hint=rule.hint,
                program="bad-fc110",
                command_index=0,
            )
        ]
    return []


def _case_fc111() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc111")
        .act(0, 0, wait_ns=timing.t_rcd / 2)  # column access before tRCD
        .rd(0, 0, wait_ns=timing.t_ras)
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc112() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc112").act(
        0, 0, wait_ns=timing.t_ras
    )
    return _verify(program)


def _case_fc113() -> List[Diagnostic]:
    # Declared as a logic op, but the first activation gets the full
    # tRAS: the sense amplifiers latch and the timing performs NOT.
    timing = _timing()
    program = double_activation_program(
        timing,
        0,
        _row(0),
        _row(1),
        ReducedTiming.for_not_op(timing),
        name="bad-fc113",
        intent="logic",
    )
    return _verify(program)


def _case_det201() -> List[Diagnostic]:
    return lint_source(
        "import random\nvalue = random.randint(0, 1)\n",
        filename="badcase_det201.py",
    )


def _case_det202() -> List[Diagnostic]:
    return lint_source(
        "import numpy as np\nnoise = np.random.rand(4)\n",
        filename="badcase_det202.py",
    )


def _case_det203() -> List[Diagnostic]:
    return lint_source(
        "import time\nstamp = time.time()\n",
        filename="badcase_det203.py",
    )


def _case_det204() -> List[Diagnostic]:
    return lint_source(
        "with open('results/out.json', 'w') as handle:\n"
        "    handle.write('{}')\n",
        filename="badcase_det204.py",
    )


#: Small but structurally complete geometry for the decoder-backed
#: semantic cases (same shape the test suite uses).
_SEM_GEOMETRY = ChipGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
)


def _semantic_pair():
    """A decoder-backed analyzer plus a 2:2 logic address pair."""
    import repro
    from ..core.addressing import find_pattern_pair
    from ..core.layout import bank_rows
    from ..dram.decoder import ActivationKind, make_decoder
    from ..rng import SeedTree

    config = repro.sk_hynix_chip().with_geometry(_SEM_GEOMETRY)
    decoder = make_decoder(config, SeedTree(0).child("decoder"), "calibrated")
    analyzer = SemanticAnalyzer(geometry=_SEM_GEOMETRY, decoder=decoder)
    ref_row, com_row = find_pattern_pair(
        decoder, _SEM_GEOMETRY, 0, 0, 1, 2,
        kind=ActivationKind.N_TO_N, seed=2,
    )
    pattern = decoder.neighboring_pattern(0, ref_row, com_row)
    ref_rows = bank_rows(_SEM_GEOMETRY, pattern.subarray_first, pattern.rows_first)
    com_rows = bank_rows(_SEM_GEOMETRY, pattern.subarray_last, pattern.rows_last)
    return analyzer, ref_row, com_row, ref_rows, com_rows


def _sem_logic_case(
    reference: List[SymValue], compute: List[SymValue]
) -> List[Diagnostic]:
    """Run one 2:2 charge-share episode with the given side values."""
    analyzer, ref_row, com_row, ref_rows, com_rows = _semantic_pair()
    session = analyzer.new_session()
    for value, row in zip(reference, ref_rows):
        session.set_value(0, row, value)
    for value, row in zip(compute, com_rows):
        session.set_value(0, row, value)
    program = logic_program(_timing(), 0, ref_row, com_row)
    return list(analyzer.analyze_program(program, session).diagnostics)


def _case_sem301() -> List[Diagnostic]:
    # The terminal swap: NAND and NOR live on opposite sense-amp
    # terminals, so reading the result off the wrong one (or placing the
    # reference constants on the compute side) silently turns NAND into
    # NOR.  The equivalence proof renders both truth tables side by side.
    a, b = sym_var("a"), sym_var("b")
    return prove_value(
        sym_nor(a, b),
        sym_nand(a, b),
        "result read from the swapped sense-amp terminal",
        program="bad-sem301",
    )


def _case_sem302() -> List[Diagnostic]:
    # One compute operand is a constant-0 row, so the AND episode
    # resolves to constant 0 — operand 'a' participates but cannot
    # influence anything.
    return _sem_logic_case([CONST1, HALF], [sym_var("a"), CONST0])


def _case_sem303() -> List[Diagnostic]:
    # A row holding NOT a (from an earlier in-DRAM NOT) reused next to
    # the row holding a: the pair cancels to VDD/2 on its terminal.
    a = sym_var("a")
    return _sem_logic_case([CONST1, HALF], [a, sym_not(a)])


def _case_sem304() -> List[Diagnostic]:
    # Reference loaded with two full constants instead of N-1 constants
    # plus one Frac row: the all-ones compute pattern ties the terminals.
    return _sem_logic_case([CONST1, CONST1], [sym_var("a"), CONST1])


def _case_sem305() -> List[Diagnostic]:
    # 16-input AND: the paper's own worst case (Observation 14).  The
    # static charge-algebra bound proves it infeasible with no sweep.
    bound = worst_case_sense_margin("and", 16, DieCalibration())
    if bound.feasible:  # pragma: no cover - defensive
        return []
    rule = RULES["SEM305"]
    return [
        Diagnostic(
            rule="SEM305",
            severity=rule.severity,
            message=bound.describe(),
            hint=rule.hint,
            program="bad-sem305",
            command_index=0,
        )
    ]


def _case_sem306() -> List[Diagnostic]:
    # Frac a row to VDD/2, then read it back with a nominal sequence:
    # the activation resolves the half-charged cells by noise.
    timing = _timing()
    analyzer = SemanticAnalyzer()
    session = analyzer.new_session()
    row = _row(0, 5)
    diags = list(
        analyzer.analyze_program(frac_program(timing, 0, row), session).diagnostics
    )
    program = (
        TestProgram(timing, name="bad-sem306")
        .act(0, row, wait_ns=timing.t_ras)
        .rd(0, row, wait_ns=timing.t_rcd, label="row")
        .pre(0, wait_ns=timing.t_rp)
    )
    diags.extend(analyzer.analyze_program(program, session).diagnostics)
    return diags


def _case_sem307() -> List[Diagnostic]:
    # A charge-sharing operation over rows nothing ever initialized.
    analyzer = SemanticAnalyzer()
    program = logic_program(_timing(), 0, _row(0, 10), _row(1, 20))
    return list(analyzer.analyze_program(program).diagnostics)


def _case_sem308() -> List[Diagnostic]:
    # The charge-share result would depend on 17 variables — beyond the
    # substrate's own 16-input cap, so the exhaustive proof refuses.
    analyzer = SemanticAnalyzer()
    session = analyzer.new_session()
    wide = sym_and(*[sym_var(f"x{i}") for i in range(16)])
    session.set_value(0, _row(0, 10), wide)
    session.set_value(0, _row(1, 20), sym_var("z"))
    program = logic_program(_timing(), 0, _row(0, 10), _row(1, 20))
    return list(analyzer.analyze_program(program, session).diagnostics)


def _case_sem309() -> List[Diagnostic]:
    # An operand bound to a row no activation ever consumed.
    timing = _timing()
    analyzer = SemanticAnalyzer()
    session = analyzer.new_session()
    session.bind(0, _row(2, 7), "a")
    diags = list(
        analyzer.analyze_program(
            nominal_activation_program(timing, 0, _row(0, 3)), session
        ).diagnostics
    )
    diags.extend(analyzer.finish_session(session, program="bad-sem309"))
    return diags


def _case_det205() -> List[Diagnostic]:
    return lint_source(
        "def admit(allocations):\n"
        "    for tenant, regions in allocations.items():\n"
        "        schedule(tenant, regions)\n",
        filename="badcase_det205.py",
    )


def _analyze(schedule: Schedule) -> List[Diagnostic]:
    """Run the concurrency analyzer; schedule findings + program diags."""
    report = ScheduleAnalyzer().check_schedule(schedule)
    return list(report.diagnostics)


def _case_cc401() -> List[Diagnostic]:
    # Two tenants' nominal activations in one bank, interleaved at
    # command granularity: the row buffer is a shared register and
    # whoever ACTs second corrupts the other's open episode.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-read",
        (nominal_activation_program(timing, 0, _row(0)),),
    )
    bob = JobSpec(
        "bob", "bob-read",
        (nominal_activation_program(timing, 0, _row(4)),),
    )
    return _analyze(Schedule((alice, bob), granularity="command"))


def _case_cc402() -> List[Diagnostic]:
    # Both tenants run AND episodes in one bank on subarray pairs
    # (0,1) and (2,3): subarrays 1 and 2 share an open-bitline stripe,
    # so the activations couple even though no row overlaps.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-and",
        (
            frac_program(timing, 0, _row(0)),
            logic_program(timing, 0, _row(0), _row(1)),
        ),
    )
    bob = JobSpec(
        "bob", "bob-and",
        (
            frac_program(timing, 0, _row(2)),
            logic_program(timing, 0, _row(2), _row(3)),
        ),
    )
    return _analyze(Schedule((alice, bob)))


def _case_cc403() -> List[Diagnostic]:
    # Alice's RowClone writes the row Bob's RowClone sources: with no
    # ordering between the jobs, Bob copies either the old or the new
    # value depending on scheduler whim.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-clone",
        (rowclone_program(timing, 0, _row(4, 40), _row(4, 41)),),
    )
    bob = JobSpec(
        "bob", "bob-clone",
        (rowclone_program(timing, 0, _row(4, 41), _row(4, 42)),),
    )
    return _analyze(Schedule((alice, bob)))


def _case_cc404() -> List[Diagnostic]:
    # Alice owns subarrays 0-1 of bank 0 but her RowClone lands in
    # subarray 2.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-stray",
        (rowclone_program(timing, 0, _row(2), _row(2, 1)),),
    )
    return _analyze(
        Schedule(
            (alice,),
            allocations={"alice": frozenset({(0, 0), (0, 1)})},
        )
    )


def _case_cc405() -> List[Diagnostic]:
    # Subarray 3 of bank 0 is quarantined (degraded target), but the
    # job places its destination there anyway.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-quarantined",
        (rowclone_program(timing, 0, _row(3), _row(3, 1)),),
    )
    return _analyze(
        Schedule((alice,), quarantined=frozenset({(0, 3)}))
    )


def _case_cc406() -> List[Diagnostic]:
    # Alice's AND depends on a sub-tRAS ACT->PRE->ACT window; at
    # command granularity even a bank-disjoint partner can inject a
    # command inside the window and stretch it past the threshold.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-and",
        (
            frac_program(timing, 0, _row(0)),
            logic_program(timing, 0, _row(0), _row(1)),
        ),
    )
    bob = JobSpec(
        "bob", "bob-read",
        (nominal_activation_program(timing, 1, _row(0)),),
    )
    return _analyze(Schedule((alice, bob), granularity="command"))


def _case_cc407() -> List[Diagnostic]:
    # The allocation map knows alice only; bob submits anyway.
    timing = _timing()
    bob = JobSpec(
        "bob", "bob-read",
        (nominal_activation_program(timing, 1, _row(0)),),
    )
    return _analyze(
        Schedule(
            (bob,),
            allocations={"alice": frozenset({(0, 0), (0, 1)})},
        )
    )


def _case_cc408() -> List[Diagnostic]:
    # Alice refreshes bank 0 while Bob's Frac reference (VDD/2) sits
    # there: REF re-amplifies every row to a full rail.
    timing = _timing()
    ref = TestProgram(timing, name="alice-ref").ref(0)
    alice = JobSpec("alice", "alice-ref", (ref,))
    bob = JobSpec(
        "bob", "bob-and",
        (
            frac_program(timing, 0, _row(2)),
            logic_program(timing, 0, _row(2), _row(3)),
        ),
    )
    return _analyze(Schedule((alice, bob)))


def _case_cc409() -> List[Diagnostic]:
    # The allocation map itself grants (0, 0) to both tenants — a
    # defect before any job is even submitted.
    return _analyze(
        Schedule(
            (),
            allocations={
                "alice": frozenset({(0, 0)}),
                "bob": frozenset({(0, 0)}),
            },
        )
    )


def _case_cc410() -> List[Diagnostic]:
    # A rows3 repetition scheme on a NOT placement: the latched drive
    # provides one destination row, so capped_to_rows would silently
    # degrade the tuned bound.
    timing = _timing()
    alice = JobSpec(
        "alice", "alice-not",
        (not_program(timing, 0, _row(4), _row(4, 1)),),
        scheme=MitigationScheme.from_label("vote3+rows3"),
    )
    return _analyze(Schedule((alice,)))


def _case_cc411() -> List[Diagnostic]:
    # The runtime clamps an oversized quarantine request to the largest
    # available block; surface the clamp as its structured diagnostic.
    from ..system.runtime import quarantine_clamp_diagnostic

    return [quarantine_clamp_diagnostic(side=1, requested=32, clamped=16)]


def _registry() -> Dict[str, BadCase]:
    entries: Tuple[BadCase, ...] = (
        BadCase(
            "fc101",
            "FC101",
            "ACT to an open bank with no pending PRE",
            _case_fc101,
        ),
        BadCase(
            "fc102-read-precharged",
            "FC102",
            "RD issued to a bank that was never activated",
            _case_fc102_read_precharged,
        ),
        BadCase(
            "fc102-ref-open",
            "FC102",
            "REF issued while the bank is still open",
            _case_fc102_ref_open,
        ),
        BadCase(
            "fc103",
            "FC103",
            "RD of a row that is not in the activated row set",
            _case_fc103,
        ),
        BadCase(
            "fc104",
            "FC104",
            "NOT destination three subarrays away from the source "
            "(no shared sense amplifiers)",
            _case_fc104,
        ),
        BadCase(
            "fc105",
            "FC105",
            "charge-sharing operands both in one subarray",
            _case_fc105,
        ),
        BadCase(
            "fc106",
            "FC106",
            "logic op with no Frac-initialized reference in the session",
            _case_fc106,
        ),
        BadCase(
            "fc107",
            "FC107",
            "sub-cycle wait_ns silently quantized up",
            _case_fc107,
        ),
        BadCase(
            "fc108",
            "FC108",
            "PRE to an already-precharged bank",
            _case_fc108,
        ),
        BadCase(
            "fc109",
            "FC109",
            "row address beyond the bank geometry",
            _case_fc109,
        ),
        BadCase(
            "fc110",
            "FC110",
            "row supplied to PRE, which ignores row addressing",
            _case_fc110,
        ),
        BadCase(
            "fc111",
            "FC111",
            "column access sooner than tRCD after ACT",
            _case_fc111,
        ),
        BadCase(
            "fc112",
            "FC112",
            "program ends with the bank open and no pending PRE",
            _case_fc112,
        ),
        BadCase(
            "fc113",
            "FC113",
            "intent declares logic but the timing performs NOT",
            _case_fc113,
        ),
        BadCase(
            "sem301",
            "SEM301",
            "terminal swap: NAND read off the NOR terminal",
            _case_sem301,
        ),
        BadCase(
            "sem302",
            "SEM302",
            "constant-0 operand makes the AND episode dead compute",
            _case_sem302,
        ),
        BadCase(
            "sem303",
            "SEM303",
            "operand and its complement cancel on one terminal",
            _case_sem303,
        ),
        BadCase(
            "sem304",
            "SEM304",
            "reference without a Frac row cannot realize the threshold",
            _case_sem304,
        ),
        BadCase(
            "sem305",
            "SEM305",
            "16-input AND is charge-algebra infeasible (Observation 14)",
            _case_sem305,
        ),
        BadCase(
            "sem306",
            "SEM306",
            "nominal read of a Frac (VDD/2) row returns noise",
            _case_sem306,
        ),
        BadCase(
            "sem307",
            "SEM307",
            "charge share over rows nothing initialized",
            _case_sem307,
        ),
        BadCase(
            "sem308",
            "SEM308",
            "symbolic result would exceed the 16-variable proof cap",
            _case_sem308,
        ),
        BadCase(
            "sem309",
            "SEM309",
            "bound operand never consumed by any activation",
            _case_sem309,
        ),
        BadCase(
            "det201",
            "DET201",
            "stdlib global RNG call",
            _case_det201,
        ),
        BadCase(
            "det202",
            "DET202",
            "numpy global-state RNG call",
            _case_det202,
        ),
        BadCase(
            "det203",
            "DET203",
            "wall-clock read in a non-exempt module",
            _case_det203,
        ),
        BadCase(
            "det204",
            "DET204",
            "write-mode open bypassing repro.atomicio",
            _case_det204,
        ),
        BadCase(
            "det205",
            "DET205",
            "unsorted iteration over a per-tenant mapping",
            _case_det205,
        ),
        BadCase(
            "cc401",
            "CC401",
            "two tenants' ACTs race on one bank's row buffer",
            _case_cc401,
        ),
        BadCase(
            "cc402",
            "CC402",
            "tenants on neighboring subarrays share a sense-amp stripe",
            _case_cc402,
        ),
        BadCase(
            "cc403",
            "CC403",
            "one tenant's RowClone writes a row another tenant reads",
            _case_cc403,
        ),
        BadCase(
            "cc404",
            "CC404",
            "job strays outside its tenant's allocation",
            _case_cc404,
        ),
        BadCase(
            "cc405",
            "CC405",
            "job placed inside a quarantined region",
            _case_cc405,
        ),
        BadCase(
            "cc406",
            "CC406",
            "command interleaving can stretch a sub-tRAS idiom window",
            _case_cc406,
        ),
        BadCase(
            "cc407",
            "CC407",
            "tenant missing from the allocation map",
            _case_cc407,
        ),
        BadCase(
            "cc408",
            "CC408",
            "REF destroys a concurrent tenant's Frac reference",
            _case_cc408,
        ),
        BadCase(
            "cc409",
            "CC409",
            "allocation map grants one region to two tenants",
            _case_cc409,
        ),
        BadCase(
            "cc410",
            "CC410",
            "mitigation scheme outgrows the placement's terminal rows",
            _case_cc410,
        ),
        BadCase(
            "cc411",
            "CC411",
            "oversized quarantine request clamped to the largest block",
            _case_cc411,
        ),
    )
    return {case.name: case for case in entries}


#: All documented bad cases, by name.
BADCASES: Dict[str, BadCase] = _registry()


def run_case(name: str) -> Tuple[BadCase, List[Diagnostic]]:
    """Run one case; returns it plus the diagnostics it produced."""
    case = BADCASES[name]
    return case, case.run()
