"""Documented bad cases: one minimal trigger per staticcheck rule.

Each case is a tiny program (or source snippet, for the determinism
rules) that violates exactly one rule.  The registry backs both the CLI
demo mode (``python -m repro.staticcheck --demo fc104``) and the golden
diagnostic tests, so "the documented bad cases" are a single artifact
the docs, the CLI, and the test suite all agree on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..bender.commands import Command, Opcode
from ..bender.program import TestProgram
from ..core.sequences import (
    double_activation_program,
    logic_program,
    not_program,
)
from ..dram.config import ChipGeometry
from ..dram.timing import ReducedTiming, TimingParameters, timing_for_speed
from ..errors import ProgramError
from .determinism import lint_source
from .diagnostics import RULES, Diagnostic
from .verifier import ProgramVerifier

__all__ = ["BadCase", "BADCASES", "run_case"]


@dataclass(frozen=True)
class BadCase:
    """One documented bad case: a name, the rule it must trigger, and a
    callable producing the diagnostics."""

    name: str
    rule: str
    description: str
    run: Callable[[], List[Diagnostic]]

    def fires(self, diagnostics: List[Diagnostic]) -> bool:
        return any(d.rule == self.rule for d in diagnostics)


def _timing() -> TimingParameters:
    return timing_for_speed(2666)


def _verify(program: TestProgram) -> List[Diagnostic]:
    verifier = ProgramVerifier(ChipGeometry())
    return list(verifier.verify_program(program).diagnostics)


def _geometry() -> ChipGeometry:
    return ChipGeometry()


def _row(subarray: int, local: int = 0) -> int:
    return _geometry().bank_row(subarray, local)


def _case_fc101() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc101")
        .act(0, 0, wait_ns=timing.t_ras)
        .act(0, 1, wait_ns=timing.t_ras)  # re-ACT with no PRE in between
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc102_read_precharged() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc102-rd").rd(
        0, 5, wait_ns=timing.t_rcd
    )
    return _verify(program)


def _case_fc102_ref_open() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc102-ref")
        .act(0, 0, wait_ns=timing.t_ras)
        .ref(0)
    )
    return _verify(program)


def _case_fc103() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc103")
        .act(0, 0, wait_ns=timing.t_ras)
        .rd(0, 37, wait_ns=timing.t_rcd)  # row 37 was never activated
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc104() -> List[Diagnostic]:
    # NOT sequence whose destination row sits three subarrays away from
    # the source: the subarrays share no sense-amplifier stripe.
    timing = _timing()
    program = not_program(timing, 0, _row(0), _row(3))
    return _verify(program)


def _case_fc105() -> List[Diagnostic]:
    # Charge-sharing (logic) timing with both operands in one subarray.
    timing = _timing()
    program = logic_program(timing, 0, _row(2, 10), _row(2, 200))
    return _verify(program)


def _case_fc106() -> List[Diagnostic]:
    # A well-placed AND/OR sequence, but nothing Frac-initialized the
    # reference subarray in this session.
    timing = _timing()
    program = logic_program(timing, 0, _row(0, 10), _row(1, 20))
    return _verify(program)


def _case_fc107() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc107")
        .act(0, 0, wait_ns=timing.t_ras)
        .pre(0, wait_ns=0.5)  # below one bus cycle: silently widened
        .act(0, 1, wait_ns=timing.t_ras)
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc108() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc108").pre(
        0, wait_ns=timing.t_rp
    )
    return _verify(program)


def _case_fc109() -> List[Diagnostic]:
    timing = _timing()
    geometry = _geometry()
    program = TestProgram(timing, name="bad-fc109").act(
        0, geometry.rows_per_bank + 7, wait_ns=timing.t_ras
    )
    return _verify(program)


def _case_fc110() -> List[Diagnostic]:
    # Command construction itself rejects a row on PRE; surface the
    # rejection as the FC110 diagnostic it corresponds to.
    try:
        Command(Opcode.PRE, bank=0, row=5)
    except ProgramError as exc:
        rule = RULES["FC110"]
        return [
            Diagnostic(
                rule="FC110",
                severity=rule.severity,
                message=str(exc),
                hint=rule.hint,
                program="bad-fc110",
                command_index=0,
            )
        ]
    return []


def _case_fc111() -> List[Diagnostic]:
    timing = _timing()
    program = (
        TestProgram(timing, name="bad-fc111")
        .act(0, 0, wait_ns=timing.t_rcd / 2)  # column access before tRCD
        .rd(0, 0, wait_ns=timing.t_ras)
        .pre(0, wait_ns=timing.t_rp)
    )
    return _verify(program)


def _case_fc112() -> List[Diagnostic]:
    timing = _timing()
    program = TestProgram(timing, name="bad-fc112").act(
        0, 0, wait_ns=timing.t_ras
    )
    return _verify(program)


def _case_fc113() -> List[Diagnostic]:
    # Declared as a logic op, but the first activation gets the full
    # tRAS: the sense amplifiers latch and the timing performs NOT.
    timing = _timing()
    program = double_activation_program(
        timing,
        0,
        _row(0),
        _row(1),
        ReducedTiming.for_not_op(timing),
        name="bad-fc113",
        intent="logic",
    )
    return _verify(program)


def _case_det201() -> List[Diagnostic]:
    return lint_source(
        "import random\nvalue = random.randint(0, 1)\n",
        filename="badcase_det201.py",
    )


def _case_det202() -> List[Diagnostic]:
    return lint_source(
        "import numpy as np\nnoise = np.random.rand(4)\n",
        filename="badcase_det202.py",
    )


def _case_det203() -> List[Diagnostic]:
    return lint_source(
        "import time\nstamp = time.time()\n",
        filename="badcase_det203.py",
    )


def _case_det204() -> List[Diagnostic]:
    return lint_source(
        "with open('results/out.json', 'w') as handle:\n"
        "    handle.write('{}')\n",
        filename="badcase_det204.py",
    )


def _registry() -> Dict[str, BadCase]:
    entries: Tuple[BadCase, ...] = (
        BadCase(
            "fc101",
            "FC101",
            "ACT to an open bank with no pending PRE",
            _case_fc101,
        ),
        BadCase(
            "fc102-read-precharged",
            "FC102",
            "RD issued to a bank that was never activated",
            _case_fc102_read_precharged,
        ),
        BadCase(
            "fc102-ref-open",
            "FC102",
            "REF issued while the bank is still open",
            _case_fc102_ref_open,
        ),
        BadCase(
            "fc103",
            "FC103",
            "RD of a row that is not in the activated row set",
            _case_fc103,
        ),
        BadCase(
            "fc104",
            "FC104",
            "NOT destination three subarrays away from the source "
            "(no shared sense amplifiers)",
            _case_fc104,
        ),
        BadCase(
            "fc105",
            "FC105",
            "charge-sharing operands both in one subarray",
            _case_fc105,
        ),
        BadCase(
            "fc106",
            "FC106",
            "logic op with no Frac-initialized reference in the session",
            _case_fc106,
        ),
        BadCase(
            "fc107",
            "FC107",
            "sub-cycle wait_ns silently quantized up",
            _case_fc107,
        ),
        BadCase(
            "fc108",
            "FC108",
            "PRE to an already-precharged bank",
            _case_fc108,
        ),
        BadCase(
            "fc109",
            "FC109",
            "row address beyond the bank geometry",
            _case_fc109,
        ),
        BadCase(
            "fc110",
            "FC110",
            "row supplied to PRE, which ignores row addressing",
            _case_fc110,
        ),
        BadCase(
            "fc111",
            "FC111",
            "column access sooner than tRCD after ACT",
            _case_fc111,
        ),
        BadCase(
            "fc112",
            "FC112",
            "program ends with the bank open and no pending PRE",
            _case_fc112,
        ),
        BadCase(
            "fc113",
            "FC113",
            "intent declares logic but the timing performs NOT",
            _case_fc113,
        ),
        BadCase(
            "det201",
            "DET201",
            "stdlib global RNG call",
            _case_det201,
        ),
        BadCase(
            "det202",
            "DET202",
            "numpy global-state RNG call",
            _case_det202,
        ),
        BadCase(
            "det203",
            "DET203",
            "wall-clock read in a non-exempt module",
            _case_det203,
        ),
        BadCase(
            "det204",
            "DET204",
            "write-mode open bypassing repro.atomicio",
            _case_det204,
        ),
    )
    return {case.name: case for case in entries}


#: All documented bad cases, by name.
BADCASES: Dict[str, BadCase] = _registry()


def run_case(name: str) -> Tuple[BadCase, List[Diagnostic]]:
    """Run one case; returns it plus the diagnostics it produced."""
    case = BADCASES[name]
    return case, case.run()
