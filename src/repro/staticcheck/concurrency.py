"""Static race detector and isolation verifier for multi-program schedules.

The program verifier (:mod:`.verifier`) proves one command sequence sane
in isolation; this module answers the *schedule* question ROADMAP item 3
poses: given many tenants' jobs against one chip, which of them may run
concurrently without corrupting each other?  Interleaved command streams
share three pieces of physical state the single-program view cannot see
— per-bank row-buffer/sense-amp state, the open-bitline amplifier
stripes between neighboring subarrays, and the wall-clock windows that
make a violated ``ACT→PRE→ACT`` gap mean NOT rather than AND — so a
schedule can break even when every program in it verifies clean.

Everything here is static: each job's programs run through a
:class:`~repro.staticcheck.verifier.ProgramVerifier` with a
footprint-recording observer, and the pairwise checks work on the
recorded row/subarray/bank footprints.  Nothing executes.

Rules (``CC401``–``CC410``):

========  =========================================================
 CC401    interleaved ACTs race on one bank's row buffer
 CC402    same/neighboring subarrays share a sense-amp stripe
 CC403    one job writes rows inside another job's footprint
 CC404    a job leaves its tenant's bank/subarray allocation
 CC405    a job touches a quarantined region or row
 CC406    command-level interleaving splits a sub-tRAS/tRP window
 CC407    a job's tenant is not in the allocation map
 CC408    a REF hits a bank where a concurrent job holds state
 CC409    the allocation map itself overlaps or abuts tenants
 CC410    a mitigation scheme outgrows its placement's terminal
========  =========================================================

Granularity: ``"program"`` (the default) models a scheduler that runs
whole programs atomically and may interleave only *between* them;
``"command"`` models free interleaving of single commands on the shared
bus.  Command granularity is strictly harsher: any same-bank activity
races (CC401) and any violated-timing idiom is unschedulable next to
any other job (CC406).

The derived :class:`ConflictGraph` is the artifact a scheduler consumes:
nodes are jobs, edges are the rule-labelled pairs that must not overlap,
and :meth:`ConflictGraph.waves` greedily groups jobs into concurrency-
safe waves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..bender.program import TestProgram
from ..dram.config import ActivationSupport, ChipGeometry
from ..dram.timing import TimingParameters
from ..errors import ConfigurationError
from ..reliability.schemes import MitigationScheme
from .diagnostics import RULES, Diagnostic, Severity
from .verifier import (
    GapClassification,
    ProgramReport,
    ProgramVerifier,
    VerifierObserver,
)

__all__ = [
    "GRANULARITIES",
    "JobSpec",
    "Schedule",
    "RowAccess",
    "JobFootprint",
    "Finding",
    "ScheduleReport",
    "ConflictGraph",
    "ScheduleAnalyzer",
    "check_schedule",
    "schedule_from_plan",
]

#: Supported interleaving models (see the module docstring).
GRANULARITIES = ("program", "command")

#: Rules whose findings involve a *pair* of jobs and therefore become
#: conflict-graph edges (the rest are per-job or map-level defects).
_PAIR_RULES = ("CC401", "CC402", "CC403", "CC406", "CC408")


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit: a tenant's programs, run back to back.

    ``programs`` execute in order inside one verifier session, exactly
    like an executor session — so a job may Frac a reference row in one
    program and consume it in the next.  ``scheme`` is the mitigation
    scheme the runtime would apply to the job's output terminal; the
    analyzer checks the *expanded* footprint against the placement
    (CC410).
    """

    tenant: str
    name: str
    programs: Tuple[TestProgram, ...]

    scheme: Optional[MitigationScheme] = None

    def __post_init__(self) -> None:
        if not self.programs:
            raise ConfigurationError(f"job {self.name!r} has no programs")


@dataclass(frozen=True)
class Schedule:
    """A set of jobs proposed to run concurrently, plus the context the
    isolation checks need.

    ``allocations`` maps tenant name to the (bank, subarray) regions it
    owns; an empty map disables the tenancy rules (CC404/CC407/CC409).
    ``quarantined`` lists (bank, subarray) regions and
    ``quarantined_rows`` (bank, bank_row) rows that serve no compute.
    """

    jobs: Tuple[JobSpec, ...]
    allocations: Mapping[str, FrozenSet[Tuple[int, int]]] = field(
        default_factory=dict
    )
    quarantined: FrozenSet[Tuple[int, int]] = frozenset()
    quarantined_rows: FrozenSet[Tuple[int, int]] = frozenset()
    granularity: str = "program"

    def __post_init__(self) -> None:
        if self.granularity not in GRANULARITIES:
            raise ConfigurationError(
                f"granularity must be one of {GRANULARITIES}, "
                f"got {self.granularity!r}"
            )
        names = [job.name for job in self.jobs]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"job names must be unique, duplicated: {duplicates}"
            )


@dataclass(frozen=True)
class RowAccess:
    """One recorded touch of DRAM state.

    ``kind`` is ``activate`` (rows connected to bitlines), ``drive``
    (latched amplifiers overwrite newly joined rows — the NOT/RowClone
    destination), ``write``/``read`` (column access), ``frac`` (rows
    pulled to VDD/2), or ``refresh`` (whole bank, ``rows`` empty).
    ``rows`` are bank-row indices.
    """

    kind: str
    bank: int
    rows: Tuple[int, ...]
    program: str
    command_index: int

    #: Kinds that mutate cell contents.
    WRITE_KINDS = ("drive", "write", "frac")

    @property
    def writes(self) -> bool:
        return self.kind in self.WRITE_KINDS

    def describe(self, geometry: ChipGeometry) -> str:
        if self.kind == "refresh":
            return (
                f"{self.program} cmd {self.command_index}: REF bank "
                f"{self.bank} (re-amplifies every row)"
            )
        subarrays = sorted({geometry.subarray_of_row(r) for r in self.rows})
        return (
            f"{self.program} cmd {self.command_index}: {self.kind} bank "
            f"{self.bank} rows {sorted(self.rows)} "
            f"(subarray{'s' if len(subarrays) != 1 else ''} "
            f"{', '.join(map(str, subarrays))})"
        )


class _FootprintObserver(VerifierObserver):
    """Records every state-machine event of one program as RowAccesses."""

    def __init__(self, geometry: ChipGeometry, program: str) -> None:
        self.geometry = geometry
        self.program = program
        self.accesses: List[RowAccess] = []
        #: Resolves of glitched (charge-share) episodes: the accesses
        #: whose rows form AND/OR terminals (CC410 needs them apart).
        self.charge_resolves: List[RowAccess] = []

    def _bank_rows(self, rows: Dict[int, Tuple[int, ...]]) -> Tuple[int, ...]:
        geometry = self.geometry
        return tuple(
            sorted(
                geometry.bank_row(subarray, local)
                for subarray, locals_ in rows.items()
                for local in locals_
            )
        )

    def _record(
        self, kind: str, bank: int, rows: Tuple[int, ...], index: int
    ) -> None:
        self.accesses.append(
            RowAccess(
                kind=kind,
                bank=bank,
                rows=rows,
                program=self.program,
                command_index=index,
            )
        )

    def on_fresh_activation(self, bank: int, row: int, index: int) -> None:
        self._record("activate", bank, (row,), index)

    def on_resolve(
        self,
        bank: int,
        rows: Dict[int, Tuple[int, ...]],
        glitched: bool,
        first_subarray: int,
        index: int,
    ) -> None:
        self._record("activate", bank, self._bank_rows(rows), index)
        if glitched:
            self.charge_resolves.append(self.accesses[-1])

    def on_latched_drive(
        self,
        bank: int,
        new_rows: Dict[int, Tuple[int, ...]],
        first_subarray: int,
        index: int,
    ) -> None:
        self._record("drive", bank, self._bank_rows(new_rows), index)

    def on_frac(
        self, bank: int, rows: Dict[int, Tuple[int, ...]], index: Optional[int]
    ) -> None:
        self._record(
            "frac", bank, self._bank_rows(rows), index if index is not None else 0
        )

    def on_write(self, bank: int, row: int, data: object, index: int) -> None:
        self._record("write", bank, (row,), index)

    def on_read(self, bank: int, row: int, index: int, label: str) -> None:
        self._record("read", bank, (row,), index)

    def on_refresh(self, bank: int, index: int) -> None:
        self._record("refresh", bank, (), index)


@dataclass(frozen=True)
class JobFootprint:
    """Everything the pairwise checks need to know about one job."""

    job: JobSpec
    accesses: Tuple[RowAccess, ...]
    reports: Tuple[ProgramReport, ...]
    #: Banks left open (or pending-PRE) at a program boundary — the
    #: cross-program episodes CC401 cares about at program granularity.
    open_between_programs: Tuple[int, ...]
    #: Resolves of charge-share (glitched) episodes: the AND/OR
    #: terminal accesses, kept apart for the CC410 placement check.
    charge_resolves: Tuple[RowAccess, ...] = ()

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for report in self.reports for d in report.diagnostics)

    @property
    def violated_episodes(self) -> Tuple[GapClassification, ...]:
        return tuple(
            c
            for report in self.reports
            for c in report.classifications
            if c.violates_t_ras or c.violates_t_rp
        )

    def banks_activated(self) -> Tuple[int, ...]:
        return tuple(
            sorted(
                {a.bank for a in self.accesses if a.kind in ("activate", "drive")}
            )
        )

    def refreshed_banks(self) -> Tuple[int, ...]:
        return tuple(
            sorted({a.bank for a in self.accesses if a.kind == "refresh"})
        )

    def rows_touched(self) -> Dict[int, Set[int]]:
        """bank -> every row any access names."""
        rows: Dict[int, Set[int]] = {}
        for access in self.accesses:
            if access.rows:
                rows.setdefault(access.bank, set()).update(access.rows)
        return rows

    def rows_written(self) -> Dict[int, Set[int]]:
        """bank -> rows whose cell contents the job mutates."""
        rows: Dict[int, Set[int]] = {}
        for access in self.accesses:
            if access.writes and access.rows:
                rows.setdefault(access.bank, set()).update(access.rows)
        return rows

    def subarrays(self, geometry: ChipGeometry) -> Dict[int, Set[int]]:
        """bank -> subarrays the job's rows occupy."""
        out: Dict[int, Set[int]] = {}
        for bank, rows in self.rows_touched().items():
            out[bank] = {geometry.subarray_of_row(row) for row in rows}
        return out

    def regions(self, geometry: ChipGeometry) -> Set[Tuple[int, int]]:
        """Every (bank, subarray) region the job's rows occupy."""
        return {
            (bank, subarray)
            for bank, subarrays in self.subarrays(geometry).items()
            for subarray in subarrays
        }

    def access_naming(
        self, bank: int, rows: Iterable[int]
    ) -> Optional[RowAccess]:
        """The first access touching any of ``rows`` in ``bank``."""
        wanted = set(rows)
        for access in self.accesses:
            if access.bank == bank and wanted & set(access.rows):
                return access
        return None

    def destination_terminal_rows(self) -> int:
        """Rows available as output-terminal copies for mitigation.

        Latched drives (NOT/RowClone) write the destination terminal
        directly: the largest drive is the terminal.  A charge-share
        episode exposes both terminals; the *smaller* side bounds the
        copies a vote can read from either one.
        """
        geometry_free_best = 0
        for access in self.accesses:
            if access.kind == "drive":
                geometry_free_best = max(geometry_free_best, len(access.rows))
        return geometry_free_best

    @property
    def has_charge_share(self) -> bool:
        """True when any episode resolved in the sharing regime."""
        return bool(self.charge_resolves)

    def logic_terminal_rows(self, geometry: ChipGeometry) -> int:
        """Smallest per-subarray side of the widest charge-share episode
        (0 when the job has no charge-share activation).

        A charge-share resolve connects both terminals; a vote reads
        copies from the destination terminal, so the smaller side
        bounds the usable ``row_copies``.
        """
        best = 0
        for access in self.charge_resolves:
            per_subarray: Dict[int, int] = {}
            for row in access.rows:
                subarray = geometry.subarray_of_row(row)
                per_subarray[subarray] = per_subarray.get(subarray, 0) + 1
            if per_subarray:
                best = max(best, min(per_subarray.values()))
        return best


@dataclass(frozen=True)
class Finding:
    """One schedule-level defect: the diagnostic plus the evidence.

    ``jobs`` names the involved jobs (one for placement defects, two
    for races, zero for allocation-map defects); ``trace`` is the
    happens-before explanation the CLI prints under ``--explain``.
    """

    diagnostic: Diagnostic
    jobs: Tuple[str, ...]
    trace: Tuple[str, ...]


class ConflictGraph:
    """Which job pairs may run concurrently.

    Nodes are job names (in schedule order); an edge joins two jobs
    whose concurrent execution a pair rule refused.  The future item-3
    scheduler consumes this directly: :meth:`may_run_concurrently` for
    admission, :meth:`waves` for a greedy serialization.
    """

    def __init__(
        self,
        jobs: Sequence[str],
        edges: Iterable[Tuple[str, str, Tuple[str, ...]]] = (),
    ) -> None:
        self.jobs: Tuple[str, ...] = tuple(jobs)
        known = set(self.jobs)
        self._edges: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for a, b, rules in edges:
            if a not in known or b not in known:
                raise ConfigurationError(
                    f"conflict edge ({a!r}, {b!r}) names an unknown job"
                )
            key = (a, b) if self.jobs.index(a) <= self.jobs.index(b) else (b, a)
            merged = tuple(sorted(set(self._edges.get(key, ())) | set(rules)))
            self._edges[key] = merged

    @property
    def edges(self) -> Tuple[Tuple[str, str, Tuple[str, ...]], ...]:
        return tuple(
            (a, b, rules) for (a, b), rules in sorted(self._edges.items())
        )

    def may_run_concurrently(self, a: str, b: str) -> bool:
        if a == b:
            return True
        key = (a, b) if self.jobs.index(a) <= self.jobs.index(b) else (b, a)
        return key not in self._edges

    def conflicts_of(self, name: str) -> Tuple[str, ...]:
        out = []
        for (a, b), _rules in sorted(self._edges.items()):
            if a == name:
                out.append(b)
            elif b == name:
                out.append(a)
        return tuple(sorted(set(out)))

    def waves(self) -> Tuple[Tuple[str, ...], ...]:
        """Greedy grouping into waves with no internal conflicts.

        Jobs are placed in schedule order into the first wave where
        they conflict with nothing — a deterministic first-fit
        coloring, good enough for a scheduler's starting plan.
        """
        waves: List[List[str]] = []
        for job in self.jobs:
            for wave in waves:
                if all(self.may_run_concurrently(job, other) for other in wave):
                    wave.append(job)
                    break
            else:
                waves.append([job])
        return tuple(tuple(wave) for wave in waves)

    def to_json(self) -> str:
        return json.dumps(
            {
                "jobs": list(self.jobs),
                "edges": [
                    {"a": a, "b": b, "rules": list(rules)}
                    for a, b, rules in self.edges
                ],
                "waves": [list(wave) for wave in self.waves()],
            },
            indent=2,
            sort_keys=True,
        )


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of analyzing one schedule."""

    schedule: Schedule
    footprints: Tuple[JobFootprint, ...]
    findings: Tuple[Finding, ...]
    conflicts: ConflictGraph

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Schedule-level findings plus every per-program diagnostic."""
        schedule_level = tuple(f.diagnostic for f in self.findings)
        per_program = tuple(
            d for footprint in self.footprints for d in footprint.diagnostics
        )
        return schedule_level + per_program

    @property
    def admitted(self) -> bool:
        """True when nothing error-severity stands in the way."""
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def format(self, explain: bool = False) -> str:
        lines = [
            f"# schedule: {len(self.schedule.jobs)} job(s), "
            f"{self.schedule.granularity} granularity"
        ]
        for finding in self.findings:
            lines.append(finding.diagnostic.format())
            if explain:
                lines.extend(f"    {step}" for step in finding.trace)
        per_program = [
            d for footprint in self.footprints for d in footprint.diagnostics
        ]
        lines.extend(d.format() for d in per_program)
        verdict = "ADMITTED" if self.admitted else "REFUSED"
        lines.append(f"[schedule] {verdict}: {len(self.findings)} schedule "
                     f"finding(s), {len(per_program)} program diagnostic(s)")
        return "\n".join(lines)


class ScheduleAnalyzer:
    """The static race detector over :class:`Schedule` objects.

    ``decoder`` (optional, as for :class:`ProgramVerifier`) predicts
    full multi-row activation patterns, so footprints include the rows
    a glitch engages beyond the addressed pair — without one, the
    addressed rows stand in and the analysis is correspondingly more
    permissive.  ``suppress`` drops rule ids, as everywhere else.
    """

    def __init__(
        self,
        geometry: Optional[ChipGeometry] = None,
        decoder: Optional[object] = None,
        activation_support: ActivationSupport = ActivationSupport.SIMULTANEOUS,
        suppress: Iterable[str] = (),
    ) -> None:
        self.geometry = geometry if geometry is not None else ChipGeometry()
        self.decoder = decoder
        self.support = activation_support
        self.suppress: FrozenSet[str] = frozenset(suppress)
        unknown = sorted(self.suppress - set(RULES))
        if unknown:
            raise ConfigurationError(f"unknown rule ids in suppress: {unknown}")

    @classmethod
    def for_module(
        cls, module: object, suppress: Iterable[str] = ()
    ) -> "ScheduleAnalyzer":
        config = module.config  # type: ignore[attr-defined]
        return cls(
            geometry=config.geometry,
            decoder=getattr(module, "decoder", None),
            activation_support=config.activation_support,
            suppress=suppress,
        )

    # -- footprint extraction -------------------------------------------

    def footprint(self, job: JobSpec) -> JobFootprint:
        """Run a job's programs through the verifier, recording accesses.

        Each job gets its own session: jobs are independent units and a
        Frac reference must come from the job's *own* programs for the
        schedule to be reorderable.
        """
        verifier = ProgramVerifier(
            geometry=self.geometry,
            decoder=self.decoder,
            activation_support=self.support,
            suppress=self.suppress,
        )
        state = verifier.new_session()
        accesses: List[RowAccess] = []
        reports: List[ProgramReport] = []
        open_between: Set[int] = set()
        charge_resolves: List[RowAccess] = []
        for program in job.programs:
            observer = _FootprintObserver(self.geometry, program.name)
            verifier.observer = observer
            reports.append(verifier.verify_program(program, state=state))
            verifier.observer = None
            accesses.extend(observer.accesses)
            charge_resolves.extend(observer.charge_resolves)
            for bank, bankm in state.banks.items():
                if bankm.open is not None:
                    open_between.add(bank)
        return JobFootprint(
            job=job,
            accesses=tuple(accesses),
            reports=tuple(reports),
            open_between_programs=tuple(sorted(open_between)),
            charge_resolves=tuple(charge_resolves),
        )

    # -- the checks ------------------------------------------------------

    def check_schedule(self, schedule: Schedule) -> ScheduleReport:
        """Run every CC rule over the schedule; nothing executes."""
        footprints = tuple(self.footprint(job) for job in schedule.jobs)
        findings: List[Finding] = []
        self._check_allocation_map(schedule, findings)
        for footprint in footprints:
            self._check_tenancy(schedule, footprint, findings)
            self._check_quarantine(schedule, footprint, findings)
            self._check_mitigation(footprint, findings)
        for i in range(len(footprints)):
            for j in range(i + 1, len(footprints)):
                self._check_pair(schedule, footprints[i], footprints[j], findings)
        if schedule.granularity == "command":
            self._check_timing_windows(footprints, findings)

        edges = [
            (finding.jobs[0], finding.jobs[1], (finding.diagnostic.rule,))
            for finding in findings
            if len(finding.jobs) == 2
            and finding.diagnostic.rule in _PAIR_RULES
        ]
        conflicts = ConflictGraph([job.name for job in schedule.jobs], edges)
        return ScheduleReport(
            schedule=schedule,
            footprints=footprints,
            findings=tuple(findings),
            conflicts=conflicts,
        )

    # -- helpers ---------------------------------------------------------

    def _emit(
        self,
        findings: List[Finding],
        rule_id: str,
        message: str,
        jobs: Tuple[str, ...],
        trace: Tuple[str, ...],
        severity: Optional[Severity] = None,
    ) -> None:
        if rule_id in self.suppress:
            return
        rule = RULES[rule_id]
        findings.append(
            Finding(
                diagnostic=Diagnostic(
                    rule=rule_id,
                    severity=severity if severity is not None else rule.severity,
                    message=message,
                    hint=rule.hint,
                    program=" + ".join(jobs) if jobs else "<allocation-map>",
                ),
                jobs=jobs,
                trace=trace,
            )
        )

    def _job_line(self, footprint: JobFootprint, access: RowAccess) -> str:
        return (
            f"tenant {footprint.job.tenant!r} job {footprint.job.name!r}: "
            f"{access.describe(self.geometry)}"
        )

    # -- allocation map (CC409) -----------------------------------------

    def _check_allocation_map(
        self, schedule: Schedule, findings: List[Finding]
    ) -> None:
        tenants = sorted(schedule.allocations)
        for i in range(len(tenants)):
            for j in range(i + 1, len(tenants)):
                a, b = tenants[i], tenants[j]
                regions_a = schedule.allocations[a]
                regions_b = schedule.allocations[b]
                shared = sorted(set(regions_a) & set(regions_b))
                if shared:
                    self._emit(
                        findings,
                        "CC409",
                        f"tenants {a!r} and {b!r} are both allocated "
                        f"region(s) {shared}",
                        (),
                        (
                            f"allocation[{a!r}] = {sorted(regions_a)}",
                            f"allocation[{b!r}] = {sorted(regions_b)}",
                            f"intersection {shared} is owned twice",
                        ),
                    )
                    continue
                adjacent = sorted(
                    (ra, rb)
                    for ra in regions_a
                    for rb in regions_b
                    if ra[0] == rb[0]
                    and self.geometry.subarrays_are_neighbors(ra[1], rb[1])
                )
                if adjacent:
                    ra, rb = adjacent[0]
                    self._emit(
                        findings,
                        "CC409",
                        f"tenants {a!r} and {b!r} hold sense-amp-adjacent "
                        f"subarrays {ra} and {rb}: the stripe between them "
                        "is shared hardware",
                        (),
                        (
                            f"allocation[{a!r}] includes (bank, subarray) {ra}",
                            f"allocation[{b!r}] includes (bank, subarray) {rb}",
                            "open-bitline stripes sit between neighboring "
                            "subarrays, so both tenants touch the same "
                            "amplifiers",
                        ),
                        severity=Severity.WARNING,
                    )

    # -- per-job placement (CC404/CC405/CC407/CC410) --------------------

    def _check_tenancy(
        self, schedule: Schedule, footprint: JobFootprint, findings: List[Finding]
    ) -> None:
        if not schedule.allocations:
            return
        job = footprint.job
        allocation = schedule.allocations.get(job.tenant)
        if allocation is None:
            self._emit(
                findings,
                "CC407",
                f"tenant {job.tenant!r} (job {job.name!r}) has no entry in "
                f"the allocation map ({sorted(schedule.allocations)})",
                (job.name,),
                (
                    f"job {job.name!r} names tenant {job.tenant!r}",
                    "the allocation map grants regions to "
                    f"{sorted(schedule.allocations)} only",
                ),
            )
            return
        outside = sorted(footprint.regions(self.geometry) - set(allocation))
        for bank in footprint.refreshed_banks():
            bank_regions = {
                (bank, subarray)
                for subarray in range(self.geometry.subarrays_per_bank)
            }
            missing = sorted(bank_regions - set(allocation))
            if missing:
                outside.extend(m for m in missing if m not in outside)
        if outside:
            access = None
            for bank, subarray in outside:
                access = footprint.access_naming(
                    bank,
                    (
                        self.geometry.bank_row(subarray, local)
                        for local in range(self.geometry.rows_per_subarray)
                    ),
                )
                if access is not None:
                    break
            trace = [
                f"allocation[{job.tenant!r}] = {sorted(allocation)}",
                f"job footprint extends to {sorted(outside)}",
            ]
            if access is not None:
                trace.insert(0, self._job_line(footprint, access))
            self._emit(
                findings,
                "CC404",
                f"job {job.name!r} (tenant {job.tenant!r}) touches "
                f"region(s) {sorted(outside)} outside its allocation "
                f"{sorted(allocation)}",
                (job.name,),
                tuple(trace),
            )

    def _check_quarantine(
        self, schedule: Schedule, footprint: JobFootprint, findings: List[Finding]
    ) -> None:
        job = footprint.job
        hit_regions = sorted(
            footprint.regions(self.geometry) & set(schedule.quarantined)
        )
        hit_rows = sorted(
            {
                (bank, row)
                for bank, rows in footprint.rows_touched().items()
                for row in rows
            }
            & set(schedule.quarantined_rows)
        )
        if not hit_regions and not hit_rows:
            return
        trace: List[str] = []
        if hit_regions:
            bank, subarray = hit_regions[0]
            access = footprint.access_naming(
                bank,
                (
                    self.geometry.bank_row(subarray, local)
                    for local in range(self.geometry.rows_per_subarray)
                ),
            )
            if access is not None:
                trace.append(self._job_line(footprint, access))
            trace.append(f"quarantined regions: {sorted(schedule.quarantined)}")
        if hit_rows:
            bank, row = hit_rows[0]
            access = footprint.access_naming(bank, (row,))
            if access is not None:
                trace.append(self._job_line(footprint, access))
            trace.append(
                f"quarantined rows: {sorted(schedule.quarantined_rows)}"
            )
        what = []
        if hit_regions:
            what.append(f"region(s) {hit_regions}")
        if hit_rows:
            what.append(f"row(s) {hit_rows}")
        self._emit(
            findings,
            "CC405",
            f"job {job.name!r} (tenant {job.tenant!r}) touches quarantined "
            + " and ".join(what),
            (job.name,),
            tuple(trace),
        )

    def _check_mitigation(
        self, footprint: JobFootprint, findings: List[Finding]
    ) -> None:
        job = footprint.job
        scheme = job.scheme
        if scheme is None or scheme.is_uncoded:
            return
        drive_rows = footprint.destination_terminal_rows()
        logic_rows = footprint.logic_terminal_rows(self.geometry)
        terminal = max(drive_rows, logic_rows)
        if scheme.max_attempts > 1 and not footprint.has_charge_share:
            self._emit(
                findings,
                "CC410",
                f"job {job.name!r} carries detect-retry scheme "
                f"{scheme.label!r} but performs no charge-share episode: "
                "there is no complement terminal to check against "
                "(§6.1.3)",
                (job.name,),
                (
                    f"scheme {scheme.label!r} needs max_attempts="
                    f"{scheme.max_attempts} consistency checks",
                    "the job's episodes are latched (NOT/RowClone) or "
                    "nominal: one terminal only",
                ),
            )
            return
        if scheme.row_copies > max(terminal, 1):
            self._emit(
                findings,
                "CC410",
                f"job {job.name!r} scheme {scheme.label!r} votes over "
                f"{scheme.row_copies} destination-row copies but the "
                f"placement's output terminal provides "
                f"{max(terminal, 1)}: capped_to_rows would silently "
                "degrade the tuned residual bound",
                (job.name,),
                (
                    f"scheme {scheme.label!r}: row_copies="
                    f"{scheme.row_copies}",
                    f"widest destination terminal in the job's episodes: "
                    f"{max(terminal, 1)} row(s)",
                    "re-place on a wider N:N block or re-tune for this one",
                ),
            )

    # -- pairwise races (CC401/CC402/CC403/CC408) -----------------------

    def _check_pair(
        self,
        schedule: Schedule,
        a: JobFootprint,
        b: JobFootprint,
        findings: List[Finding],
    ) -> None:
        overlap_banks = self._check_operand_overlap(a, b, findings)
        self._check_sense_amp_sharing(a, b, findings, overlap_banks)
        self._check_act_race(schedule, a, b, findings)
        self._check_refresh(a, b, findings)

    def _check_operand_overlap(
        self, a: JobFootprint, b: JobFootprint, findings: List[Finding]
    ) -> Set[int]:
        """CC403; returns the banks where rows overlapped (so CC402 can
        skip them — the row-level finding is strictly stronger)."""
        overlap_banks: Set[int] = set()
        for first, second in ((a, b), (b, a)):
            written = first.rows_written()
            touched = second.rows_touched()
            for bank in sorted(set(written) & set(touched)):
                shared = sorted(written[bank] & touched[bank])
                if not shared:
                    continue
                if bank in overlap_banks:
                    continue  # already reported for this pair
                overlap_banks.add(bank)
                access_w = first.access_naming(bank, shared)
                access_t = second.access_naming(bank, shared)
                flavor = (
                    "cross-tenant isolation violation"
                    if first.job.tenant != second.job.tenant
                    else "intra-tenant write race"
                )
                trace = []
                if access_w is not None:
                    trace.append(self._job_line(first, access_w))
                if access_t is not None:
                    trace.append(self._job_line(second, access_t))
                trace.append(
                    f"no happens-before edge orders the two: rows {shared} "
                    f"of bank {bank} are written by one and used by the "
                    "other"
                )
                self._emit(
                    findings,
                    "CC403",
                    f"job {first.job.name!r} (tenant {first.job.tenant!r}) "
                    f"writes rows {shared} of bank {bank} inside job "
                    f"{second.job.name!r}'s (tenant "
                    f"{second.job.tenant!r}) footprint ({flavor})",
                    (a.job.name, b.job.name),
                    tuple(trace),
                )
        return overlap_banks

    def _check_sense_amp_sharing(
        self,
        a: JobFootprint,
        b: JobFootprint,
        findings: List[Finding],
        skip_banks: Set[int],
    ) -> None:
        subs_a = a.subarrays(self.geometry)
        subs_b = b.subarrays(self.geometry)
        for bank in sorted(set(subs_a) & set(subs_b)):
            if bank in skip_banks:
                continue
            pairs = sorted(
                (sa, sb)
                for sa in subs_a[bank]
                for sb in subs_b[bank]
                if self.geometry.subarrays_are_neighbors(sa, sb)
            )
            if not pairs:
                continue
            sa, sb = pairs[0]
            access_a = a.access_naming(
                bank,
                (
                    self.geometry.bank_row(sa, local)
                    for local in range(self.geometry.rows_per_subarray)
                ),
            )
            access_b = b.access_naming(
                bank,
                (
                    self.geometry.bank_row(sb, local)
                    for local in range(self.geometry.rows_per_subarray)
                ),
            )
            trace = []
            if access_a is not None:
                trace.append(self._job_line(a, access_a))
            if access_b is not None:
                trace.append(self._job_line(b, access_b))
            where = (
                f"subarray {sa}"
                if sa == sb
                else f"subarrays {sa} and {sb} (the stripe between them)"
            )
            trace.append(
                f"no happens-before edge orders the two: {where} of bank "
                f"{bank} route through the same sense amplifiers"
            )
            self._emit(
                findings,
                "CC402",
                f"jobs {a.job.name!r} (tenant {a.job.tenant!r}) and "
                f"{b.job.name!r} (tenant {b.job.tenant!r}) occupy "
                f"{'the same subarray' if sa == sb else 'neighboring subarrays'} "
                f"{sorted({sa, sb})} of bank {bank}: their activations "
                "couple through the shared open-bitline stripe",
                (a.job.name, b.job.name),
                tuple(trace),
            )

    def _check_act_race(
        self,
        schedule: Schedule,
        a: JobFootprint,
        b: JobFootprint,
        findings: List[Finding],
    ) -> None:
        shared_banks = sorted(
            set(a.banks_activated()) & set(b.banks_activated())
        )
        if not shared_banks:
            return
        if schedule.granularity == "command":
            bank = shared_banks[0]
            access_a = a.access_naming(bank, a.rows_touched().get(bank, ()))
            access_b = b.access_naming(bank, b.rows_touched().get(bank, ()))
            trace = []
            if access_a is not None:
                trace.append(self._job_line(a, access_a))
            if access_b is not None:
                trace.append(self._job_line(b, access_b))
            trace.append(
                "command granularity interleaves single commands: an ACT "
                f"of one job can land inside the other's open episode in "
                f"bank {bank} (FC101-class state corruption, decided by "
                "arrival order)"
            )
            self._emit(
                findings,
                "CC401",
                f"jobs {a.job.name!r} (tenant {a.job.tenant!r}) and "
                f"{b.job.name!r} (tenant {b.job.tenant!r}) both activate "
                f"bank(s) {shared_banks} under command-granularity "
                "interleaving: the row buffer is a shared register with "
                "no ordering between them",
                (a.job.name, b.job.name),
                tuple(trace),
            )
            return
        # Program granularity: programs are atomic, so the race needs an
        # episode held open across a program boundary.
        for first, second in ((a, b), (b, a)):
            racy = sorted(
                set(first.open_between_programs) & set(second.banks_activated())
            )
            if not racy:
                continue
            bank = racy[0]
            access = second.access_naming(
                bank, second.rows_touched().get(bank, ())
            )
            trace = [
                f"tenant {first.job.tenant!r} job {first.job.name!r} leaves "
                f"bank {bank} open (or pending PRE) at a program boundary",
            ]
            if access is not None:
                trace.append(self._job_line(second, access))
            trace.append(
                "a scheduler may interleave whole programs at that "
                "boundary: the second job's ACT hits an open bank "
                "(FC101) or silently joins the episode"
            )
            self._emit(
                findings,
                "CC401",
                f"job {first.job.name!r} (tenant {first.job.tenant!r}) "
                f"holds bank {bank} open across a program boundary while "
                f"job {second.job.name!r} (tenant "
                f"{second.job.tenant!r}) activates it",
                (a.job.name, b.job.name),
                tuple(trace),
            )
            return

    def _check_refresh(
        self, a: JobFootprint, b: JobFootprint, findings: List[Finding]
    ) -> None:
        for refresher, holder in ((a, b), (b, a)):
            hit = sorted(
                set(refresher.refreshed_banks())
                & (set(holder.rows_touched()) | set(holder.banks_activated()))
            )
            if not hit:
                continue
            bank = hit[0]
            access_r = next(
                (
                    access
                    for access in refresher.accesses
                    if access.kind == "refresh" and access.bank == bank
                ),
                None,
            )
            access_h = holder.access_naming(
                bank, holder.rows_touched().get(bank, ())
            )
            trace = []
            if access_r is not None:
                trace.append(self._job_line(refresher, access_r))
            if access_h is not None:
                trace.append(self._job_line(holder, access_h))
            trace.append(
                f"REF re-amplifies every row of bank {bank} to a full "
                "rail: any Frac (VDD/2) reference the other job staged "
                "is destroyed, and REF to an open bank is an FC102 error"
            )
            self._emit(
                findings,
                "CC408",
                f"job {refresher.job.name!r} (tenant "
                f"{refresher.job.tenant!r}) refreshes bank {bank} while "
                f"job {holder.job.name!r} (tenant "
                f"{holder.job.tenant!r}) holds state there",
                (a.job.name, b.job.name),
                tuple(trace),
            )
            return

    # -- timing windows under command interleaving (CC406) ---------------

    def _check_timing_windows(
        self, footprints: Tuple[JobFootprint, ...], findings: List[Finding]
    ) -> None:
        if len(footprints) < 2:
            return
        for footprint in footprints:
            episodes = footprint.violated_episodes
            if not episodes:
                continue
            partners = tuple(
                other.job.name
                for other in footprints
                if other.job.name != footprint.job.name
            )
            episode = episodes[0]
            gaps = []
            if episode.violates_t_ras:
                gaps.append(f"ACT->PRE {episode.first_gap_ns:.2f}ns < tRAS")
            if episode.violates_t_rp:
                gaps.append(f"PRE->ACT {episode.second_gap_ns:.2f}ns < tRP")
            trace = (
                f"tenant {footprint.job.tenant!r} job "
                f"{footprint.job.name!r}: {episode.describe()}",
                f"the {episode.idiom!r} idiom requires {', '.join(gaps)}",
                "any command of "
                + ", ".join(repr(p) for p in partners)
                + " issued inside that window widens the gap past the "
                "threshold: the sequence silently becomes a different "
                "operation",
            )
            for partner in partners:
                self._emit(
                    findings,
                    "CC406",
                    f"job {footprint.job.name!r} (tenant "
                    f"{footprint.job.tenant!r}) relies on a violated "
                    f"{episode.idiom!r} timing window that "
                    "command-granularity interleaving with job "
                    f"{partner!r} can stretch",
                    (footprint.job.name, partner),
                    trace,
                )


def check_schedule(
    schedule: Schedule,
    module: Optional[object] = None,
    suppress: Iterable[str] = (),
) -> ScheduleReport:
    """Convenience wrapper: analyze a schedule against a module's topology."""
    if module is not None:
        analyzer = ScheduleAnalyzer.for_module(module, suppress=suppress)
    else:
        analyzer = ScheduleAnalyzer(suppress=suppress)
    return analyzer.check_schedule(schedule)


def _plan_int(value: object, context: str) -> int:
    """Coerce a JSON scalar to ``int``, rejecting anything non-numeric."""
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ConfigurationError(f"{context}: expected an integer, got {value!r}")
    try:
        return int(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"{context}: expected an integer, got {value!r}"
        ) from exc


def _plan_job(
    entry: Mapping[str, Any], timing: TimingParameters, index: int
) -> JobSpec:
    """One PLAN.json job entry -> a :class:`JobSpec`."""
    from ..core.sequences import (
        frac_program,
        logic_program,
        nominal_activation_program,
        not_program,
        rowclone_program,
    )

    def need(key: str) -> int:
        if key not in entry:
            raise ConfigurationError(
                f"job #{index}: op {op!r} needs field {key!r}"
            )
        return _plan_int(entry[key], f"job #{index} field {key!r}")

    tenant = str(entry.get("tenant", "default"))
    op = str(entry.get("op", "logic"))
    bank = _plan_int(entry.get("bank", 0), f"job #{index} field 'bank'")
    programs: Tuple[TestProgram, ...]
    if op == "logic":
        ref_row, com_row = need("ref_row"), need("com_row")
        logic = logic_program(timing, bank, ref_row, com_row)
        if bool(entry.get("frac", True)):
            programs = (frac_program(timing, bank, ref_row), logic)
        else:
            programs = (logic,)
    elif op == "not":
        programs = (not_program(timing, bank, need("src_row"), need("dst_row")),)
    elif op == "rowclone":
        programs = (
            rowclone_program(timing, bank, need("src_row"), need("dst_row")),
        )
    elif op == "frac":
        programs = (frac_program(timing, bank, need("row")),)
    elif op == "nominal":
        programs = (nominal_activation_program(timing, bank, need("row")),)
    elif op == "refresh":
        programs = (
            TestProgram(timing, name=f"refresh-bank-{bank}").ref(bank),
        )
    else:
        raise ConfigurationError(
            f"job #{index}: unknown op {op!r} (expected logic/not/rowclone/"
            "frac/nominal/refresh)"
        )
    scheme = (
        MitigationScheme.from_label(str(entry["scheme"]))
        if "scheme" in entry
        else None
    )
    name = str(entry.get("name", f"{tenant}-{op}-{index}"))
    return JobSpec(tenant=tenant, name=name, programs=programs, scheme=scheme)


def schedule_from_plan(
    plan: Mapping[str, object], timing: TimingParameters
) -> Schedule:
    """Build a :class:`Schedule` from a parsed PLAN.json mapping.

    Recognized keys: ``granularity`` (``"program"``/``"command"``),
    ``allocations`` (tenant -> ``[[bank, subarray], ...]``),
    ``quarantine`` (``[[bank, subarray], ...]``), ``quarantine_rows``
    (``[[bank, bank_row], ...]``), and ``jobs`` — each job an object
    with ``tenant``, ``op`` (``logic``/``not``/``rowclone``/``frac``/
    ``nominal``/``refresh``), ``bank``, the op's row fields
    (``ref_row``/``com_row``, ``src_row``/``dst_row``, ``row``), an
    optional ``name``, an optional mitigation ``scheme`` label, and —
    for logic — optional ``frac: false`` to skip the reference-Frac
    prologue program.
    """
    def _sequence(key: str) -> Sequence[Any]:
        raw = plan.get(key, [])
        if not isinstance(raw, (list, tuple)):
            raise ConfigurationError(f"plan field {key!r} must be a list")
        return raw

    def _regions(raw: object, context: str) -> FrozenSet[Tuple[int, int]]:
        if not isinstance(raw, (list, tuple)):
            raise ConfigurationError(f"{context} must be a list of pairs")
        pairs = []
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise ConfigurationError(f"{context} must be a list of pairs")
            pairs.append(
                (_plan_int(item[0], context), _plan_int(item[1], context))
            )
        return frozenset(pairs)

    jobs = tuple(
        _plan_job(entry, timing, index)
        for index, entry in enumerate(_sequence("jobs"))
    )
    raw_allocations = plan.get("allocations", {})
    if not isinstance(raw_allocations, dict):
        raise ConfigurationError("plan field 'allocations' must be an object")
    allocations = {
        str(tenant): _regions(regions, f"allocation for {tenant!r}")
        for tenant, regions in sorted(raw_allocations.items())
    }
    quarantined = _regions(_sequence("quarantine"), "plan field 'quarantine'")
    quarantined_rows = _regions(
        _sequence("quarantine_rows"), "plan field 'quarantine_rows'"
    )
    return Schedule(
        jobs=jobs,
        allocations=allocations,
        quarantined=quarantined,
        quarantined_rows=quarantined_rows,
        granularity=str(plan.get("granularity", "program")),
    )
