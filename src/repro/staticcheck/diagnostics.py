"""Diagnostics engine for the static checkers.

Every finding — whether from the :mod:`program verifier
<repro.staticcheck.verifier>` or the :mod:`determinism linter
<repro.staticcheck.determinism>` — is a :class:`Diagnostic`: a rule id,
a severity, a location (command index within a program, or file/line
within a source tree), a message, and a fix hint.  The rule catalogue
lives here so the CLI, the executor gate, and the documentation all
agree on ids and default severities.

Rule families
-------------
``FC1xx`` — FCDRAM command-sequence rules (program verifier).
``DET2xx`` — determinism rules (AST linter over the source tree).
``SEM3xx`` — semantic rules (symbolic charge-algebra evaluator).
``CC4xx`` — concurrency/isolation rules (multi-program schedule
analyzer and the runtime admission gate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "format_diagnostics",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One static-check rule: identity, default severity, fix hint."""

    id: str
    title: str
    severity: Severity
    summary: str
    hint: str


#: The full rule catalogue.  Severities are defaults; a checker may
#: downgrade a rule in context (e.g. FC113 on a sequential-only chip,
#: where the mismatch is a chip limitation rather than a program bug).
_RULE_LIST: Tuple[Rule, ...] = (
    Rule(
        "FC101",
        "act-to-open-bank",
        Severity.ERROR,
        "ACT issued to a bank that is open with no pending PRE",
        "insert a PRE (violated or nominal) before re-activating the bank",
    ),
    Rule(
        "FC102",
        "command-bank-state",
        Severity.ERROR,
        "RD/WR issued to a precharged bank, or REF to an open bank",
        "open the bank with an ACT first (or close it before REF); note a "
        "pending PRE only completes at the next ACT/WR/RD or end-of-program "
        "settle",
    ),
    Rule(
        "FC103",
        "inactive-row-access",
        Severity.ERROR,
        "RD/WR addresses a row that is not in the activated row set",
        "address one of the rows the activation (or multi-row glitch "
        "pattern) actually opened",
    ),
    Rule(
        "FC104",
        "isolated-subarray-pair",
        Severity.ERROR,
        "double activation across subarrays that share no sense-amplifier "
        "stripe",
        "place source and destination rows in the same or neighboring "
        "subarrays (|subarray difference| <= 1); across isolated subarrays "
        "the second ACT proceeds independently and no data moves",
    ),
    Rule(
        "FC105",
        "charge-share-same-subarray",
        Severity.WARNING,
        "charge-sharing (logic-op) activation with reference and compute "
        "rows in one subarray",
        "use neighboring subarrays for AND/OR/NAND/NOR; same-subarray "
        "charge sharing is only meaningful for TRNG/MAJ-style in-subarray "
        "operations (suppress FC105 when intentional)",
    ),
    Rule(
        "FC106",
        "missing-frac-reference",
        Severity.WARNING,
        "charge-sharing operation whose reference operand set contains no "
        "Frac-initialized (VDD/2) row from this session",
        "run the Frac sequence on a reference row first (see "
        "repro.core.frac.store_half_vdd); without a VDD/2 reference the "
        "sense comparison has no AND/OR threshold",
    ),
    Rule(
        "FC107",
        "subcycle-wait-quantized",
        Severity.WARNING,
        "sub-cycle wait_ns silently quantized up to one full bus cycle",
        "request the wait in whole bus cycles (wait_cycles=...) or at "
        "least t_ck nanoseconds; the bus cannot space commands closer "
        "than one cycle",
    ),
    Rule(
        "FC108",
        "dead-command",
        Severity.WARNING,
        "command has no effect: PRE to an already-precharged bank",
        "delete the redundant command; dead commands usually indicate a "
        "sequence that was edited without re-checking bank state",
    ),
    Rule(
        "FC109",
        "address-out-of-range",
        Severity.ERROR,
        "bank or row address outside the chip geometry",
        "check the geometry (banks, subarrays_per_bank * rows_per_subarray "
        "rows per bank) the program will run against",
    ),
    Rule(
        "FC110",
        "row-on-rowless-opcode",
        Severity.ERROR,
        "row address supplied to an opcode that ignores it (PRE/REF/NOP)",
        "drop the row argument; a mislabeled row here masks addressing "
        "bugs elsewhere in the sequence",
    ),
    Rule(
        "FC111",
        "early-column-access",
        Severity.WARNING,
        "RD/WR issued sooner than tRCD after the activation",
        "wait at least tRCD after ACT before column access unless the "
        "early access is the point of the experiment",
    ),
    Rule(
        "FC112",
        "unclosed-bank",
        Severity.WARNING,
        "program ends with a bank open and no pending PRE",
        "finish with a PRE so the next program does not start on an open "
        "bank (a following ACT would be an FC101 error at runtime)",
    ),
    Rule(
        "FC113",
        "intent-mismatch",
        Severity.ERROR,
        "program declares one operation intent but its timing/topology "
        "produce another",
        "fix the gap spacings or the row placement so the sequence "
        "performs the declared operation (not <-> neighboring subarrays, "
        "rowclone <-> same subarray, logic <-> both gaps violated)",
    ),
    Rule(
        "SEM301",
        "semantics-mismatch",
        Severity.ERROR,
        "the Boolean function a program (or compiled schedule) computes "
        "differs from the declared/expected function",
        "compare the derived truth table against the expectation: a "
        "swapped sense-amp terminal turns NAND into NOR, a dropped "
        "negation turns AND into NAND; fix the lowering or the row "
        "placement, not the expectation",
    ),
    Rule(
        "SEM302",
        "dead-compute",
        Severity.WARNING,
        "an operand cell participates in a charge-sharing operation but "
        "has no influence on the resolved result",
        "a result that is constant over some operand usually means a "
        "constant row was loaded where a variable was intended, or the "
        "reference constants force the comparison; check the operand "
        "rows written before the activation",
    ),
    Rule(
        "SEM303",
        "cancelling-operands",
        Severity.WARNING,
        "complementary operands (x and NOT x) charge-share on the same "
        "terminal, so their contributions cancel to VDD/2",
        "complementary pairs behave like an extra Frac row: the pair "
        "adds capacitive load but no information; drop one of the rows "
        "or recompute the operand placement (common after a NOT into a "
        "row that is later reused as an operand)",
    ),
    Rule(
        "SEM304",
        "unrealizable-threshold",
        Severity.ERROR,
        "some input assignment drives both sense-amp terminals to the "
        "same voltage, so the comparison has no defined outcome",
        "the reference side must sit strictly between the compute-side "
        "voltages that resolve to 0 and to 1; re-check the reference "
        "ones-count (N-1 constants + one Frac row) for the operand "
        "count actually activated",
    ),
    Rule(
        "SEM305",
        "margin-infeasible",
        Severity.WARNING,
        "the static worst-case sense margin for this (op, N, speed, "
        "distance) is not positive: some input pattern resolves wrongly "
        "more often than not",
        "this configuration is charge-algebra infeasible before any "
        "trial runs (the paper's 16-input AND worst cases, Observation "
        "14); reduce the fan-in, move the rows to a better distance "
        "region, or accept the documented failure mode",
    ),
    Rule(
        "SEM306",
        "frac-residue-read",
        Severity.WARNING,
        "RD of a row whose cells hold a Frac (VDD/2) value",
        "a VDD/2 cell resolves by noise: the read returns random bits "
        "(the TRNG use case); if that is not the intent, re-write the "
        "row before reading it",
    ),
    Rule(
        "SEM307",
        "unknown-operand",
        Severity.WARNING,
        "a charge-sharing operation consumes a cell whose value the "
        "semantic model cannot determine",
        "the cell was never written in this session (or was destroyed "
        "by a refresh / noise-resolved read); initialize every operand "
        "and reference row before the activation so the derived truth "
        "table is exact",
    ),
    Rule(
        "SEM308",
        "support-overflow",
        Severity.WARNING,
        "the symbolic result depends on more than 16 variables, so the "
        "exhaustive truth-table proof is refused",
        "the substrate itself caps fan-in at 16 (Limitation 2); split "
        "the computation into narrower steps or bind some inputs to "
        "constants before proving",
    ),
    Rule(
        "SEM309",
        "unused-operand",
        Severity.WARNING,
        "a declared operand variable never reaches any read-back result",
        "the variable was bound to a row that no activation consumed; "
        "check the operand row addresses against the decoder's "
        "activation pattern",
    ),
    Rule(
        "DET201",
        "global-random",
        Severity.ERROR,
        "use of the stdlib global random module",
        "derive a seeded generator from repro.rng (SeedTree/derive_seed) "
        "instead; global RNG state breaks bit-identical replay",
    ),
    Rule(
        "DET202",
        "numpy-global-random",
        Severity.ERROR,
        "use of numpy global/seedless random state",
        "use np.random.default_rng(seed) with a seed derived from "
        "repro.rng; np.random.* module functions and seedless "
        "default_rng() break bit-identical replay",
    ),
    Rule(
        "DET203",
        "wall-clock",
        Severity.ERROR,
        "wall-clock read outside the exempt thermal/retry modules",
        "thread time through parameters or use counters; wall-clock reads "
        "make results depend on host speed (exempt a module only if time "
        "never reaches results)",
    ),
    Rule(
        "DET204",
        "nonatomic-write",
        Severity.ERROR,
        "result file written without repro.atomicio",
        "use atomic_write_text/atomic_write_json so a SIGKILL mid-write "
        "can never leave a torn artifact for --resume to trip over",
    ),
    Rule(
        "DET205",
        "unordered-mapping-iteration",
        Severity.ERROR,
        "iteration over a per-tenant/per-target mapping whose order "
        "depends on insertion history",
        "wrap the .items()/.keys()/.values() call in sorted(...); in a "
        "multi-tenant service the insertion order is the request arrival "
        "order, so unordered iteration breaks bit-identical replay",
    ),
    Rule(
        "CC401",
        "interleaved-act-race",
        Severity.ERROR,
        "concurrent jobs issue ACTs to one bank with no ordering between "
        "them (write-write/write-read race on row-buffer and sense-amp "
        "state)",
        "place the jobs in different banks, or serialize them (the "
        "ConflictGraph names the pairs that must not overlap); at "
        "program granularity the race needs a bank held open across "
        "program boundaries — close the bank before yielding",
    ),
    Rule(
        "CC402",
        "sense-amp-sharing-hazard",
        Severity.ERROR,
        "concurrent jobs occupy the same or neighboring subarrays of one "
        "bank, coupling through the shared open-bitline sense-amplifier "
        "stripe",
        "allocate tenants at subarray distance >= 2 within a bank (or in "
        "different banks): a multi-row activation engages the decoder's "
        "whole pattern and the stripe between neighboring subarrays is "
        "physically shared (§4.1)",
    ),
    Rule(
        "CC403",
        "operand-overlap",
        Severity.ERROR,
        "rows one concurrent job writes intersect another job's row "
        "footprint (RowClone/logic source-destination overlap)",
        "give each job disjoint row ranges; a latched drive or charge "
        "share clobbers every row of its activation pattern, not just "
        "the addressed ones",
    ),
    Rule(
        "CC404",
        "outside-allocation",
        Severity.ERROR,
        "a job touches a bank/subarray region outside its tenant's "
        "allocation",
        "move the job's rows inside the tenant's allocated (bank, "
        "subarray) regions, or extend the allocation map; note a "
        "neighboring-subarray operation always touches both subarrays "
        "of its pair",
    ),
    Rule(
        "CC405",
        "quarantined-region",
        Severity.ERROR,
        "a job's footprint touches a quarantined bank/subarray region or "
        "row",
        "re-place the job outside the quarantine set; quarantined "
        "regions failed verification or hardware checks and serve no "
        "compute",
    ),
    Rule(
        "CC406",
        "split-timing-window",
        Severity.ERROR,
        "command-level interleaving can stretch a violated tRAS/tRP gap, "
        "silently converting the idiom (NOT <-> logic <-> nominal)",
        "schedule sub-tRAS/sub-tRP idioms at program granularity: the "
        "gap between their commands is wall-clock time, so any foreign "
        "command inserted into the window changes what the sequence "
        "computes",
    ),
    Rule(
        "CC407",
        "unknown-tenant",
        Severity.ERROR,
        "a job's tenant has no entry in the allocation map",
        "register the tenant with an allocation before admitting its "
        "jobs (or run without an allocation map to disable tenancy "
        "checks)",
    ),
    Rule(
        "CC408",
        "refresh-hazard",
        Severity.ERROR,
        "one job refreshes a bank where a concurrent job holds state "
        "(REF destroys Frac rows bank-wide and needs the bank closed)",
        "serialize refresh against every job with a footprint in the "
        "bank, or target a bank no concurrent job touches",
    ),
    Rule(
        "CC409",
        "allocation-map-defect",
        Severity.ERROR,
        "two tenants' allocations overlap, or sit on sense-amp-adjacent "
        "subarrays of one bank",
        "make allocations disjoint; leave one guard subarray between "
        "tenants sharing a bank (adjacent subarrays share an amplifier "
        "stripe, reported at warning severity)",
    ),
    Rule(
        "CC410",
        "mitigation-overflow",
        Severity.ERROR,
        "a job's mitigation scheme demands more destination-row copies "
        "(or a complement terminal) than its placement provides",
        "the tuned residual bound assumed the scheme as tuned: pick a "
        "placement whose output terminal has >= row_copies rows, drop "
        "detect-retry for NOT-shaped jobs, or re-tune for the smaller "
        "block instead of letting capped_to_rows silently degrade",
    ),
    Rule(
        "CC411",
        "quarantine-clamp",
        Severity.WARNING,
        "quarantine_block clamped an oversized fan-in to the largest "
        "available block",
        "quarantine the block by its real fan-in; the clamp exists so "
        "callers quarantining 'the biggest block' cannot silently miss, "
        "but an exact id is always safer",
    ),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker.

    Program findings carry ``program``/``command_index``; lint findings
    carry ``file``/``line``.  ``severity`` defaults to the rule's but
    may be overridden in context.
    """

    rule: str
    severity: Severity
    message: str
    hint: str = ""
    program: str = ""
    command_index: Optional[int] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    @property
    def title(self) -> str:
        return RULES[self.rule].title

    def location(self) -> str:
        """Human-readable location prefix."""
        if self.file is not None:
            line = f":{self.line}" if self.line is not None else ""
            return f"{self.file}{line}"
        parts = [self.program or "<anonymous>"]
        if self.command_index is not None:
            parts.append(f"cmd {self.command_index}")
        return " ".join(parts)

    def format(self, with_hint: bool = True) -> str:
        """One-line rendering: ``error[FC104] not-0->1280 cmd 2: ...``."""
        text = f"{self.severity}[{self.rule}] {self.location()}: {self.message}"
        if with_hint and self.hint:
            text += f" (hint: {self.hint})"
        return text


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def format_diagnostics(
    diagnostics: Sequence[Diagnostic], with_hints: bool = True
) -> str:
    """Multi-line rendering, most severe first, stable otherwise."""
    ordered = sorted(
        enumerate(diagnostics), key=lambda item: (-item[1].severity, item[0])
    )
    return "\n".join(d.format(with_hint=with_hints) for _, d in ordered)
