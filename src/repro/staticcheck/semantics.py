"""Symbolic charge-algebra evaluator: prove what a program computes.

PR 3's :mod:`verifier <repro.staticcheck.verifier>` proves a program is
*well-formed* — its gaps classify as recognized FCDRAM idioms.  This
module proves what a well-formed program *computes*: it mirrors the
bank/sense-amp model over **symbolic** cell values instead of bits, by
subscribing to the verifier's state-machine events
(:class:`~repro.staticcheck.verifier.VerifierObserver`).

The abstract domain is the canonical truth table.  A cell value is a
:class:`SymValue`:

* ``func`` — an exact Boolean function of named input variables,
  canonicalized (don't-care variables dropped, variables sorted, table
  stored as a bitmask over the ``2**n`` assignments).  Fan-in is capped
  at 16 (Limitation 2 — the substrate's own cap), so exhaustive
  tabulation is exact and cheap.
* ``half`` — the Frac (VDD/2) charge state.
* ``unknown`` — a value the model cannot determine (never written, noise
  resolved, destroyed by refresh).

A charge-sharing episode becomes a symbolic threshold node: each side's
bitline voltage is evaluated per input assignment through the
finite-capacitance :func:`~repro.dram.analog.charge_share` model
(``half`` cells contribute VDD/2 — this is how the Frac reference row
realizes the AND/OR threshold), the side with the higher voltage
resolves to 1, and — because the two terminals of a sense amplifier are
complementary — the other side gets the complement for free (§6.1.3:
NAND/NOR on the reference terminal).  The resulting rule family:

``SEM301`` semantics mismatch, ``SEM302`` dead compute, ``SEM303``
cancelling operands, ``SEM304`` unrealizable threshold, ``SEM305``
statically infeasible sense margin (per op/N/speed grade/distance,
via :func:`~repro.dram.analog.worst_case_sense_margin`), ``SEM306``
Frac-residue read, ``SEM307`` unknown operand, ``SEM308`` support
overflow, ``SEM309`` unused operand.

This module deliberately imports nothing from :mod:`repro.core` — the
compiler's post-lowering equivalence proof imports *these* primitives.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from numpy.typing import NDArray

from ..bender.program import TestProgram
from ..dram.analog import SenseMarginBound, charge_share, worst_case_sense_margin
from ..dram.calibration import DieCalibration, calibration_for
from ..dram.config import ChipGeometry
from ..dram.variation import DistanceRegions
from .diagnostics import RULES, Diagnostic, Severity
from .verifier import ProgramVerifier, SessionState, VerifierObserver

__all__ = [
    "MAX_SUPPORT",
    "SymValue",
    "CONST0",
    "CONST1",
    "HALF",
    "UNKNOWN",
    "sym_var",
    "sym_const",
    "sym_not",
    "sym_and",
    "sym_or",
    "sym_nand",
    "sym_nor",
    "sym_xor",
    "sym_majority",
    "expand_table",
    "table_from_outputs",
    "OP_FUNCS",
    "ComputeEpisode",
    "ReadValue",
    "SemanticReport",
    "SemanticSession",
    "SemanticAnalyzer",
    "prove_value",
]

#: Largest variable support of an exact truth-table proof — identical to
#: the substrate's fan-in cap (Limitation 2), so anything the hardware
#: can evaluate in one activation, the prover can tabulate exhaustively.
MAX_SUPPORT = 16

_EPS = 1e-12

_FloatArray = NDArray[np.float64]


# ----------------------------------------------------------------------
# the symbolic value domain
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymValue:
    """A symbolic cell value: exact Boolean function, VDD/2, or unknown.

    ``func`` values are canonical: ``vars`` is sorted, contains no
    don't-care variable, and ``table`` packs the function's output for
    each of the ``2**len(vars)`` assignments — bit ``i`` of ``table`` is
    the output when variable ``vars[j]`` has value ``(i >> j) & 1``.
    Equality on canonical forms is therefore exactly Boolean-function
    equivalence.
    """

    kind: str
    vars: Tuple[str, ...] = ()
    table: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("func", "half", "unknown"):
            raise ValueError(f"unknown SymValue kind {self.kind!r}")

    @property
    def is_func(self) -> bool:
        return self.kind == "func"

    @property
    def is_constant(self) -> bool:
        return self.kind == "func" and not self.vars

    def constant_value(self) -> Optional[int]:
        """0 or 1 for a constant function, else ``None``."""
        if not self.is_constant:
            return None
        return 1 if self.table & 1 else 0

    def outputs(self) -> NDArray[np.uint8]:
        """The truth-table column as a ``(2**n,)`` uint8 array."""
        if not self.is_func:
            raise ValueError(f"{self.kind} value has no truth table")
        n = len(self.vars)
        table = np.zeros(1 << n, dtype=np.uint8)
        for i in range(1 << n):
            table[i] = (self.table >> i) & 1
        return table

    def format_table(self) -> str:
        """Human-readable truth table (CLI ``--prove`` output)."""
        if self.kind == "half":
            return "VDD/2 (Frac charge state)"
        if self.kind == "unknown":
            return "unknown (not a determined Boolean function)"
        if not self.vars:
            return f"constant {self.constant_value()}"
        header = " ".join(self.vars) + " | out"
        lines = [header, "-" * len(header)]
        for i in range(1 << len(self.vars)):
            bits = " ".join(str((i >> j) & 1) for j in range(len(self.vars)))
            lines.append(f"{bits} |  {(self.table >> i) & 1}")
        return "\n".join(lines)

    def describe(self) -> str:
        if self.kind == "half":
            return "VDD/2"
        if self.kind == "unknown":
            return "unknown"
        if not self.vars:
            return f"const {self.constant_value()}"
        return f"f({', '.join(self.vars)}) table=0x{self.table:x}"


CONST0 = SymValue("func", (), 0)
CONST1 = SymValue("func", (), 1)
HALF = SymValue("half")
UNKNOWN = SymValue("unknown")


def sym_const(bit: int) -> SymValue:
    return CONST1 if bit else CONST0


def sym_var(name: str) -> SymValue:
    """The identity function of one named input."""
    return SymValue("func", (str(name),), 0b10)


def _expand_outputs(
    value: SymValue, variables: Tuple[str, ...]
) -> NDArray[np.uint8]:
    """``value``'s outputs over the assignment space of ``variables``."""
    n = len(variables)
    positions = [variables.index(name) for name in value.vars]
    indices = np.arange(1 << n, dtype=np.uint32)
    local = np.zeros(1 << n, dtype=np.uint32)
    for j, pos in enumerate(positions):
        local |= (((indices >> np.uint32(pos)) & 1) << np.uint32(j)).astype(
            np.uint32
        )
    small = value.outputs()
    return small[local]


def _canonical(variables: Sequence[str], outputs: NDArray[np.uint8]) -> SymValue:
    """Canonicalize (drop don't-cares, sort variables, pack the table)."""
    names = list(variables)
    outs = np.asarray(outputs, dtype=np.uint8)
    # Drop don't-care variables: flipping the variable never changes
    # the output.
    j = 0
    while j < len(names):
        n = len(names)
        indices = np.arange(1 << n, dtype=np.uint32)
        flipped = indices ^ np.uint32(1 << j)
        if np.array_equal(outs, outs[flipped]):
            keep = (indices >> np.uint32(j)) & 1 == 0
            # Re-index the remaining variables: assignments with bit j
            # cleared enumerate the reduced space in order once bit j is
            # squeezed out.
            low = indices[keep] & np.uint32((1 << j) - 1)
            high = (indices[keep] >> np.uint32(j + 1)) << np.uint32(j)
            outs = outs[keep][np.argsort(low | high, kind="stable")]
            del names[j]
        else:
            j += 1
    order = sorted(range(len(names)), key=lambda k: names[k])
    if order != list(range(len(names))):
        n = len(names)
        indices = np.arange(1 << n, dtype=np.uint32)
        remapped = np.zeros(1 << n, dtype=np.uint32)
        for new_pos, old_pos in enumerate(order):
            remapped |= (((indices >> np.uint32(old_pos)) & 1) << np.uint32(
                new_pos
            )).astype(np.uint32)
        reordered = np.zeros_like(outs)
        reordered[remapped] = outs
        outs = reordered
        names = [names[k] for k in order]
    table = 0
    for i, bit in enumerate(outs.tolist()):
        if bit:
            table |= 1 << i
    return SymValue("func", tuple(names), table)


def _merged_vars(values: Iterable[SymValue]) -> Tuple[str, ...]:
    merged: Set[str] = set()
    for value in values:
        merged.update(value.vars)
    return tuple(sorted(merged))


def sym_not(value: SymValue) -> SymValue:
    if value.kind == "half":
        return HALF  # 1 - VDD/2 = VDD/2
    if value.kind == "unknown":
        return UNKNOWN
    mask = (1 << (1 << len(value.vars))) - 1
    return SymValue("func", value.vars, (~value.table) & mask)


def _reduce(
    values: Sequence[SymValue], combine: Callable[..., NDArray[np.uint8]]
) -> SymValue:
    if any(v.kind != "func" for v in values):
        return UNKNOWN
    variables = _merged_vars(values)
    if len(variables) > MAX_SUPPORT:
        return UNKNOWN
    columns = [_expand_outputs(v, variables) for v in values]
    return _canonical(variables, combine(*columns))


def sym_and(*values: SymValue) -> SymValue:
    return _reduce(values, lambda *cols: np.bitwise_and.reduce(np.asarray(cols)))


def sym_or(*values: SymValue) -> SymValue:
    return _reduce(values, lambda *cols: np.bitwise_or.reduce(np.asarray(cols)))


def sym_nand(*values: SymValue) -> SymValue:
    return sym_not(sym_and(*values))


def sym_nor(*values: SymValue) -> SymValue:
    return sym_not(sym_or(*values))


def sym_xor(left: SymValue, right: SymValue) -> SymValue:
    return _reduce((left, right), lambda a, b: np.bitwise_xor(a, b))


#: Symbolic evaluators of the substrate's operation set, keyed like
#: :data:`repro.core.logic.BASE_OPS` plus ``not``.
OP_FUNCS: Dict[str, Callable[..., SymValue]] = {
    "and": sym_and,
    "or": sym_or,
    "nand": sym_nand,
    "nor": sym_nor,
    "not": sym_not,
}


def expand_table(value: SymValue, variables: Sequence[str]) -> NDArray[np.uint8]:
    """``value``'s truth-table column over an explicit variable order.

    The assignment convention matches :class:`SymValue`: bit ``j`` of
    assignment index ``i`` is the value of ``variables[j]``.  Variables
    the function does not depend on broadcast, so two functions can be
    compared over a shared variable space (the compiler's equivalence
    proof).
    """
    if not value.is_func:
        raise ValueError(f"cannot tabulate a {value.kind} value")
    names = tuple(str(name) for name in variables)
    missing = sorted(set(value.vars) - set(names))
    if missing:
        raise ValueError(f"value depends on variables not listed: {missing}")
    if len(names) > MAX_SUPPORT:
        raise ValueError(
            f"cannot tabulate over {len(names)} variables "
            f"(cap {MAX_SUPPORT})"
        )
    return _expand_outputs(value, names)


def table_from_outputs(
    variables: Sequence[str], outputs: NDArray[np.uint8]
) -> SymValue:
    """Build a canonical :class:`SymValue` from an explicit truth table.

    ``outputs`` has one entry per assignment (``2**len(variables)``),
    same bit-order convention as :func:`expand_table`.
    """
    names = [str(name) for name in variables]
    outs = np.asarray(outputs, dtype=np.uint8)
    if outs.shape != (1 << len(names),):
        raise ValueError(
            f"outputs must have shape ({1 << len(names)},), got {outs.shape}"
        )
    return _canonical(names, outs)


def sym_majority(*values: SymValue) -> SymValue:
    """Symbolic MAJ over an odd number of inputs (the in-subarray node)."""
    if len(values) % 2 == 0:
        raise ValueError("majority needs an odd number of operands")
    if any(v.kind != "func" for v in values):
        return UNKNOWN
    variables = _merged_vars(values)
    if len(variables) > MAX_SUPPORT:
        return UNKNOWN
    columns = np.asarray([_expand_outputs(v, variables) for v in values])
    outs = (columns.sum(axis=0) * 2 > len(values)).astype(np.uint8)
    return _canonical(variables, outs)


# ----------------------------------------------------------------------
# the symbolic threshold (charge-sharing comparison) node
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Comparison:
    """Outcome of one symbolic sense-amp comparison."""

    result: SymValue
    tie_count: int
    min_margin: float
    unknown_cells: int
    overflowed: bool


def _cell_voltages(
    values: Sequence[SymValue], variables: Tuple[str, ...]
) -> _FloatArray:
    """Per-assignment cell voltages, shape ``(n_cells, 2**n)``."""
    rows: List[_FloatArray] = []
    for value in values:
        if value.kind == "half":
            rows.append(np.full(1 << len(variables), 0.5))
        else:
            rows.append(_expand_outputs(value, variables).astype(np.float64))
    if not rows:
        return np.empty((0, 1 << len(variables)))
    return np.asarray(rows)


def _compare_sides(
    side_a: Sequence[SymValue],
    side_b: Sequence[SymValue],
    calibration: DieCalibration,
) -> _Comparison:
    """Symbolic charge share + compare: does side A win, per assignment?

    An empty side is a precharged (VDD/2) terminal — the in-subarray
    MAJ/TRNG case.  Returns side A's resolved value; side B's is the
    complement (the sense amplifier's two terminals are complementary).
    """
    cells = list(side_a) + list(side_b)
    unknown_cells = sum(1 for v in cells if v.kind == "unknown")
    if unknown_cells:
        return _Comparison(UNKNOWN, 0, 0.0, unknown_cells, False)
    variables = _merged_vars(cells)
    if len(variables) > MAX_SUPPORT:
        return _Comparison(UNKNOWN, 0, 0.0, 0, True)

    cell_ff = calibration.cell_cap_ff
    bitline_ff = calibration.bitline_cap_ff
    v_a = charge_share(_cell_voltages(side_a, variables), cell_ff, bitline_ff)
    v_b = charge_share(_cell_voltages(side_b, variables), cell_ff, bitline_ff)
    diff = v_a - v_b
    ties = int(np.count_nonzero(np.abs(diff) < _EPS))
    min_margin = float(np.min(np.abs(diff)))
    if ties:
        return _Comparison(UNKNOWN, ties, min_margin, 0, False)
    outputs = (diff > 0.0).astype(np.uint8)
    return _Comparison(_canonical(variables, outputs), 0, min_margin, 0, False)


# ----------------------------------------------------------------------
# analysis results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ComputeEpisode:
    """One resolved charge-sharing activation and what it computed."""

    bank: int
    command_index: int
    #: subarray -> local rows, as the verifier's topology predicted.
    rows: Dict[int, Tuple[int, ...]]
    first_subarray: int
    #: Resolved value of the first-activated (reference) side.
    result_first: SymValue
    #: Resolved value of the last-activated (compute) side; equals
    #: ``result_first`` for in-subarray episodes.
    result_last: SymValue
    #: Recognized op whose reference pattern the first side held
    #: (``and``/``or`` family), if any.
    inferred_op: Optional[str] = None
    margin: Optional[SenseMarginBound] = None

    @property
    def in_subarray(self) -> bool:
        return len(self.rows) == 1


@dataclass(frozen=True)
class ReadValue:
    """The symbolic value one RD command returns."""

    command_index: int
    label: str
    bank: int
    row: int
    value: SymValue


@dataclass(frozen=True)
class SemanticReport:
    """Semantic findings for one program."""

    program: str
    diagnostics: Tuple[Diagnostic, ...]
    episodes: Tuple[ComputeEpisode, ...]
    reads: Tuple[ReadValue, ...]

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= Severity.ERROR)

    def read_by_label(self, label: str) -> SymValue:
        for record in self.reads:
            if record.label == label:
                return record.value
        raise KeyError(f"no RD with label {label!r}")


class SemanticSession:
    """Symbolic cell state carried across programs of one session."""

    def __init__(self, state: Optional[SessionState] = None) -> None:
        #: The verifier's topology state (cloned in lockstep).
        self.state = state if state is not None else SessionState()
        #: (bank, bank_row) -> symbolic value.  Missing rows are unknown.
        self.values: Dict[Tuple[int, int], SymValue] = {}
        #: (bank, bank_row) -> declared operand variable name.
        self.bindings: Dict[Tuple[int, int], str] = {}
        #: Variables that reached a compute episode or a read-back.
        self.used_vars: Set[str] = set()
        #: Rows whose Frac (VDD/2) charge was destroyed by a plain
        #: sensing activation — their cells resolved by noise (TRNG).
        self.noise_resolved: Set[Tuple[int, int]] = set()
        # transient per-episode state -----------------------------------
        #: bank -> subarray -> latched stripe value (while open).
        self._latched: Dict[int, Dict[int, SymValue]] = {}
        #: bank -> subarray -> open local rows (while open).
        self._open_rows: Dict[int, Dict[int, Set[int]]] = {}

    def bind(self, bank: int, row: int, name: str) -> None:
        """Declare that ``row`` holds operand variable ``name``.

        The next WR (or backdoor fill) of the row takes the symbolic
        value ``name`` regardless of the concrete bits written — this is
        how a characterization sweep's random operand draws become named
        inputs of the proof.
        """
        self.bindings[(bank, row)] = str(name)

    def set_value(self, bank: int, row: int, value: SymValue) -> None:
        """Directly assign a row's symbolic value (backdoor writes)."""
        self.values[(bank, row)] = value
        self.noise_resolved.discard((bank, row))

    def value_of(self, bank: int, row: int) -> SymValue:
        return self.values.get((bank, row), UNKNOWN)

    def unused_operands(self) -> Tuple[str, ...]:
        """Declared operand names that never reached any result."""
        declared = set(self.bindings.values())
        return tuple(sorted(declared - self.used_vars))

    def clone(self) -> "SemanticSession":
        other = SemanticSession(self.state.clone())
        other.values = dict(self.values)
        other.bindings = dict(self.bindings)
        other.used_vars = set(self.used_vars)
        other.noise_resolved = set(self.noise_resolved)
        other._latched = copy.deepcopy(self._latched)
        other._open_rows = copy.deepcopy(self._open_rows)
        return other


class _SemanticObserver(VerifierObserver):
    """Bridges verifier state-machine events onto the symbolic state."""

    def __init__(
        self,
        analyzer: "SemanticAnalyzer",
        session: SemanticSession,
        emit: Callable[[str, Optional[int], str], None],
        episodes: List[ComputeEpisode],
        reads: List[ReadValue],
    ) -> None:
        self.analyzer = analyzer
        self.session = session
        self.emit = emit
        self.episodes = episodes
        self.reads = reads

    # -- helpers --------------------------------------------------------

    def _bank_row(self, subarray: int, local: int) -> int:
        return self.analyzer.geometry.bank_row(subarray, local)

    def _side_values(
        self, bank: int, subarray: int, locals_: Sequence[int]
    ) -> List[SymValue]:
        return [
            self.session.value_of(bank, self._bank_row(subarray, local))
            for local in locals_
        ]

    def _set_rows(
        self, bank: int, subarray: int, locals_: Sequence[int], value: SymValue
    ) -> None:
        for local in locals_:
            key = (bank, self._bank_row(subarray, local))
            self.session.values[key] = value
            if value != UNKNOWN:
                self.session.noise_resolved.discard(key)

    def _record_use(self, values: Iterable[SymValue]) -> None:
        for value in values:
            self.session.used_vars.update(value.vars)

    # -- activation lifecycle -------------------------------------------

    def on_fresh_activation(self, bank: int, row: int, index: int) -> None:
        geometry = self.analyzer.geometry
        self.session._latched[bank] = {}
        self.session._open_rows[bank] = {
            geometry.subarray_of_row(row): {geometry.local_row(row)}
        }

    def on_resolve(
        self,
        bank: int,
        rows: Dict[int, Tuple[int, ...]],
        glitched: bool,
        first_subarray: int,
        index: int,
    ) -> None:
        session = self.session
        session._open_rows[bank] = {
            sub: set(locals_) for sub, locals_ in rows.items()
        }
        if not glitched:
            # Plain sensing: 0/1 restore intact; a Frac'd cell has no
            # differential and resolves by noise — the TRNG use case.  A
            # fresh *multi-row* activation still charge-shares its cells
            # on the shared bitlines before sensing, so differing values
            # resolve as an in-subarray threshold node.
            for sub, locals_ in rows.items():
                values = self._side_values(bank, sub, sorted(locals_))
                noise = False
                if len(values) == 1:
                    noise = values[0].kind == "half"
                    resolved = UNKNOWN if noise else values[0]
                elif all(v == values[0] for v in values) and values[0].is_func:
                    resolved = values[0]
                else:
                    resolved = _compare_sides(
                        values, [], self.analyzer.calibration
                    ).result
                    noise = resolved == UNKNOWN and any(
                        v.kind == "half" for v in values
                    )
                self._set_rows(bank, sub, locals_, resolved)
                if noise:
                    for local in locals_:
                        session.noise_resolved.add(
                            (bank, self._bank_row(sub, local))
                        )
                session._latched.setdefault(bank, {})[sub] = resolved
            return
        self._resolve_compute(bank, rows, first_subarray, index)

    def _resolve_compute(
        self,
        bank: int,
        rows: Dict[int, Tuple[int, ...]],
        first_subarray: int,
        index: int,
    ) -> None:
        session = self.session
        analyzer = self.analyzer
        subs = sorted(rows)
        first_locals = rows.get(first_subarray, ())
        side_first = self._side_values(bank, first_subarray, first_locals)
        if len(subs) == 1:
            # In-subarray charge share against the precharged opposite
            # terminal: a MAJ/threshold node over all activated cells.
            comparison = _compare_sides(side_first, [], analyzer.calibration)
            self._episode_diagnostics(comparison, side_first, [], index, bank)
            self._record_use(side_first)
            self._set_rows(bank, first_subarray, first_locals, comparison.result)
            session._latched.setdefault(bank, {})[first_subarray] = (
                comparison.result
            )
            self.episodes.append(
                ComputeEpisode(
                    bank=bank,
                    command_index=index,
                    rows={s: tuple(sorted(rows[s])) for s in rows},
                    first_subarray=first_subarray,
                    result_first=comparison.result,
                    result_last=comparison.result,
                )
            )
            return

        last_subarray = next(s for s in subs if s != first_subarray)
        last_locals = rows.get(last_subarray, ())
        side_last = self._side_values(bank, last_subarray, last_locals)
        comparison = _compare_sides(side_first, side_last, analyzer.calibration)
        self._episode_diagnostics(
            comparison, side_first, side_last, index, bank
        )
        result_first = comparison.result
        result_last = (
            sym_not(result_first) if result_first.is_func else UNKNOWN
        )
        self._record_use(side_first + side_last)
        self._check_dead_compute(
            side_first + side_last, result_first, index, bank
        )
        self._set_rows(bank, first_subarray, first_locals, result_first)
        self._set_rows(bank, last_subarray, last_locals, result_last)
        latched = session._latched.setdefault(bank, {})
        latched[first_subarray] = result_first
        latched[last_subarray] = result_last

        inferred = self._infer_op(side_first, side_last)
        margin: Optional[SenseMarginBound] = None
        if inferred is not None:
            margin = self._margin_bound(
                inferred, rows, first_subarray, last_subarray
            )
            if margin is not None and not margin.feasible:
                self.emit(
                    "SEM305",
                    index,
                    f"{inferred.upper()} with N={margin.n_inputs} at regions "
                    f"compute={margin.compute_region}/"
                    f"reference={margin.reference_region}: worst-case net "
                    f"margin {margin.net_margin:+.4f} VDD on "
                    f"'{margin.worst_case}' (raw {margin.raw_margin:+.4f}, "
                    f"systematic bias exceeds the charge-sharing margin)",
                )
        self.episodes.append(
            ComputeEpisode(
                bank=bank,
                command_index=index,
                rows={s: tuple(sorted(rows[s])) for s in rows},
                first_subarray=first_subarray,
                result_first=result_first,
                result_last=result_last,
                inferred_op=inferred,
                margin=margin,
            )
        )

    def _episode_diagnostics(
        self,
        comparison: _Comparison,
        side_first: Sequence[SymValue],
        side_last: Sequence[SymValue],
        index: int,
        bank: int,
    ) -> None:
        if comparison.unknown_cells:
            self.emit(
                "SEM307",
                index,
                f"charge-sharing activation on bank {bank} consumes "
                f"{comparison.unknown_cells} cell(s) with undetermined "
                "values; the resolved function cannot be proven",
            )
        if comparison.overflowed:
            self.emit(
                "SEM308",
                index,
                f"the symbolic result on bank {bank} would depend on more "
                f"than {MAX_SUPPORT} variables; exhaustive tabulation refused",
            )
        if comparison.tie_count:
            self.emit(
                "SEM304",
                index,
                f"{comparison.tie_count} input assignment(s) drive both "
                f"sense-amp terminals of bank {bank} to the same voltage; "
                "the comparison has no defined outcome for them",
            )
        for side in (side_first, side_last):
            funcs = [v for v in side if v.is_func and v.vars]
            for i in range(len(funcs)):
                for j in range(i + 1, len(funcs)):
                    if funcs[i] == sym_not(funcs[j]):
                        self.emit(
                            "SEM303",
                            index,
                            f"operands {funcs[j].describe()} and its "
                            "complement charge-share on the same terminal; "
                            "the pair cancels to VDD/2 and contributes no "
                            "information",
                        )

    def _check_dead_compute(
        self,
        cells: Sequence[SymValue],
        result: SymValue,
        index: int,
        bank: int,
    ) -> None:
        if not result.is_func:
            return
        involved: Set[str] = set()
        for value in cells:
            involved.update(value.vars)
        dead = sorted(involved - set(result.vars))
        if dead:
            self.emit(
                "SEM302",
                index,
                f"operand variable(s) {', '.join(dead)} participate in the "
                f"bank {bank} activation but the resolved result "
                f"{result.describe()} does not depend on them",
            )

    def _infer_op(
        self, side_first: Sequence[SymValue], side_last: Sequence[SymValue]
    ) -> Optional[str]:
        """Recognize the op whose reference pattern the first side holds."""
        if len(side_first) != len(side_last) or len(side_first) < 2:
            return None
        halves = sum(1 for v in side_first if v.kind == "half")
        ones = sum(1 for v in side_first if v == CONST1)
        zeros = sum(1 for v in side_first if v == CONST0)
        if halves != 1:
            return None
        if ones == len(side_first) - 1:
            return "and"
        if zeros == len(side_first) - 1:
            return "or"
        return None

    def _margin_bound(
        self,
        op: str,
        rows: Dict[int, Tuple[int, ...]],
        first_subarray: int,
        last_subarray: int,
    ) -> Optional[SenseMarginBound]:
        geometry = self.analyzer.geometry
        if geometry.rows_per_subarray < 3:
            return None
        stripe = max(first_subarray, last_subarray)
        regions = DistanceRegions(geometry.rows_per_subarray)

        def region_of(subarray: int) -> int:
            # Static proxy for the physical distance: the logical local
            # index, oriented by which side of the shared stripe the
            # subarray sits on (the runtime model additionally applies
            # the per-module logical-to-physical scramble).
            upper = stripe == subarray + 1
            distances = [
                (geometry.rows_per_subarray - 1 - local) if upper else local
                for local in rows[subarray]
            ]
            return int(regions.region_of_mean_distance(distances))

        return worst_case_sense_margin(
            op,
            len(rows[last_subarray]),
            self.analyzer.calibration,
            compute_region=region_of(last_subarray),
            reference_region=region_of(first_subarray),
        )

    # -- latched drive (NOT / RowClone) ---------------------------------

    def on_latched_drive(
        self,
        bank: int,
        new_rows: Dict[int, Tuple[int, ...]],
        first_subarray: int,
        index: int,
    ) -> None:
        session = self.session
        latched = session._latched.setdefault(bank, {})
        open_rows = session._open_rows.setdefault(bank, {})
        for subarray, locals_ in new_rows.items():
            if subarray in latched:
                value = latched[subarray]  # same-subarray: RowClone copy
            else:
                neighbor = next(
                    (s for s in (subarray - 1, subarray + 1) if s in latched),
                    None,
                )
                if neighbor is None:
                    value = UNKNOWN
                else:
                    # Neighboring subarray: the shared stripe's *other*
                    # terminal drives these rows — the NOT regime (§5.1).
                    value = sym_not(latched[neighbor])
                latched[subarray] = value
            self._record_use([value])
            self._set_rows(bank, subarray, locals_, value)
            open_rows.setdefault(subarray, set()).update(locals_)

    # -- episode closure -------------------------------------------------

    def on_frac(
        self, bank: int, rows: Dict[int, Tuple[int, ...]], index: Optional[int]
    ) -> None:
        for subarray, locals_ in rows.items():
            self._set_rows(bank, subarray, locals_, HALF)
        self.session._latched.pop(bank, None)
        self.session._open_rows.pop(bank, None)

    def on_close(self, bank: int) -> None:
        self.session._latched.pop(bank, None)
        self.session._open_rows.pop(bank, None)

    def on_abort(self, bank: int) -> None:
        self.session._latched.pop(bank, None)
        self.session._open_rows.pop(bank, None)

    # -- column access / refresh ----------------------------------------

    def on_write(self, bank: int, row: int, data: object, index: int) -> None:
        session = self.session
        geometry = self.analyzer.geometry
        value = self.analyzer.value_for_write(session, bank, row, data, index)
        subarray = geometry.subarray_of_row(row)
        open_rows = session._open_rows.get(bank, {})
        latched = session._latched.setdefault(bank, {})
        # Mirror Bank.write: every open row of the addressed subarray is
        # overdriven with the pattern; open rows of the neighboring
        # subarrays receive the inverse on the shared stripes.
        self._set_rows(
            bank,
            subarray,
            open_rows.get(subarray, {geometry.local_row(row)}),
            value,
        )
        self.session.values[(bank, row)] = value
        latched[subarray] = value
        for neighbor in (subarray - 1, subarray + 1):
            locals_ = open_rows.get(neighbor)
            if locals_:
                inverse = sym_not(value)
                self._set_rows(bank, neighbor, locals_, inverse)
                latched[neighbor] = inverse

    def on_read(self, bank: int, row: int, index: int, label: str) -> None:
        value = self.session.value_of(bank, row)
        if value.kind == "half" or (bank, row) in self.session.noise_resolved:
            self.emit(
                "SEM306",
                index,
                f"RD of bank {bank} row {row} whose cells held the Frac "
                "(VDD/2) charge state; the returned bits resolve by noise",
            )
        self._record_use([value])
        self.reads.append(ReadValue(index, label, bank, row, value))

    def on_refresh(self, bank: int, index: int) -> None:
        for key, value in list(self.session.values.items()):
            if key[0] == bank and value.kind == "half":
                self.session.values[key] = UNKNOWN


class SemanticAnalyzer:
    """Symbolic abstract interpreter over verified test programs.

    Owns a :class:`~repro.staticcheck.verifier.ProgramVerifier` for the
    topology walk and mirrors cell *values* through its observer hooks.
    ``calibration`` drives the charge-sharing comparison and the static
    margin bounds; it defaults to the reference die.
    """

    def __init__(
        self,
        geometry: Optional[ChipGeometry] = None,
        decoder: Optional[object] = None,
        calibration: Optional[DieCalibration] = None,
        suppress: Iterable[str] = (),
        verifier: Optional[ProgramVerifier] = None,
    ) -> None:
        if verifier is None:
            verifier = ProgramVerifier(
                geometry=geometry, decoder=decoder, suppress=suppress
            )
        self.verifier = verifier
        self.geometry = verifier.geometry
        self.calibration = (
            calibration if calibration is not None else DieCalibration()
        )
        self.suppress = frozenset(suppress)
        unknown = sorted(self.suppress - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule ids in suppress: {unknown}")

    @classmethod
    def for_module(
        cls, module: object, suppress: Iterable[str] = ()
    ) -> "SemanticAnalyzer":
        """An analyzer matching a :class:`repro.dram.module.Module`."""
        config = module.config  # type: ignore[attr-defined]
        return cls(
            calibration=calibration_for(config),
            suppress=suppress,
            verifier=ProgramVerifier.for_module(module, suppress=suppress),
        )

    def new_session(self) -> SemanticSession:
        return SemanticSession()

    # ------------------------------------------------------------------

    def value_for_write(
        self,
        session: SemanticSession,
        bank: int,
        row: int,
        data: object,
        index: int,
    ) -> SymValue:
        """The symbolic value a WR (or backdoor fill) stores.

        A declared binding wins; an all-0s/all-1s pattern is a constant;
        anything else becomes a fresh anonymous input variable (the row
        then carries *some* Boolean input, identity unknown to the
        prover but tracked exactly through the algebra).
        """
        name = session.bindings.get((bank, row))
        if name is not None:
            return sym_var(name)
        if data is not None:
            bits = np.asarray(data)
            if bits.size and not np.any(bits != bits.flat[0]):
                return sym_const(int(bool(bits.flat[0])))
        return sym_var(f"cell_{bank}_{row}_{index}")

    def note_backdoor_write(
        self,
        session: SemanticSession,
        bank: int,
        row: int,
        bits: Optional[NDArray[np.uint8]] = None,
        voltages: Optional[NDArray[np.float64]] = None,
    ) -> None:
        """Record a backdoor fill (``DramBenderHost.fill_row``).

        Backdoor writes bypass the command stream, so the executor's
        semantic gate forwards them here; without this every operand of
        a real characterization flow would be unknown (SEM307).
        """
        if voltages is not None:
            volts = np.asarray(voltages, dtype=np.float64)
            if volts.size and np.all(np.abs(volts - 0.5) < 0.25):
                session.set_value(bank, row, HALF)
            else:
                session.set_value(bank, row, UNKNOWN)
            return
        session.set_value(
            bank, row, self.value_for_write(session, bank, row, bits, -1)
        )

    def analyze_program(
        self,
        program: TestProgram,
        session: Optional[SemanticSession] = None,
    ) -> SemanticReport:
        """Walk one program symbolically; mutates ``session``.

        The verifier's FC1xx findings are *not* included — this layer
        reports only the SEM3xx family (run the verifier separately, or
        use the executor's twin gates).
        """
        if session is None:
            session = self.new_session()
        diags: List[Diagnostic] = []
        episodes: List[ComputeEpisode] = []
        reads: List[ReadValue] = []
        name = program.name
        ignored = getattr(program, "ignored_rules", frozenset())

        def emit(rule_id: str, index: Optional[int], message: str) -> None:
            if rule_id in self.suppress:
                return
            if rule_id in ignored or "*" in ignored:
                return
            rule = RULES[rule_id]
            diags.append(
                Diagnostic(
                    rule=rule_id,
                    severity=rule.severity,
                    message=message,
                    hint=rule.hint,
                    program=name,
                    command_index=index,
                )
            )

        observer = _SemanticObserver(self, session, emit, episodes, reads)
        previous = self.verifier.observer
        self.verifier.observer = observer
        try:
            self.verifier.verify_program(program, state=session.state)
        finally:
            self.verifier.observer = previous
        return SemanticReport(
            program=name,
            diagnostics=tuple(diags),
            episodes=tuple(episodes),
            reads=tuple(reads),
        )

    def analyze_session(
        self, programs: Sequence[TestProgram]
    ) -> List[SemanticReport]:
        """Analyze programs in order, threading one semantic session."""
        session = self.new_session()
        return [self.analyze_program(p, session) for p in programs]

    def finish_session(
        self, session: SemanticSession, program: str = ""
    ) -> List[Diagnostic]:
        """End-of-session check: every bound operand must have been used.

        Emitted separately from :meth:`analyze_program` because an
        operand bound up front may legitimately be consumed by a later
        program of the same session.
        """
        unused = session.unused_operands()
        if not unused or "SEM309" in self.suppress:
            return []
        rule = RULES["SEM309"]
        return [
            Diagnostic(
                rule="SEM309",
                severity=rule.severity,
                message=(
                    f"operand variable(s) {', '.join(unused)} were bound "
                    "to rows but never reached any compute episode or "
                    "read-back"
                ),
                hint=rule.hint,
                program=program,
            )
        ]


def prove_value(
    actual: SymValue,
    expected: SymValue,
    context: str,
    program: str = "",
) -> List[Diagnostic]:
    """SEM301 equivalence check: does ``actual`` compute ``expected``?

    Canonical truth tables make this a single equality; the diagnostic
    renders both functions so a terminal swap (NAND read as NOR) or a
    dropped negation is visible at a glance.
    """
    if actual == expected:
        return []
    rule = RULES["SEM301"]
    return [
        Diagnostic(
            rule="SEM301",
            severity=rule.severity,
            message=(
                f"{context}: derived {actual.describe()} but expected "
                f"{expected.describe()}"
            ),
            hint=rule.hint,
            program=program,
        )
    ]
