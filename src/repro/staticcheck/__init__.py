"""Static analysis for the FCDRAM reproduction: catch broken command
sequences and nondeterminism before anything runs.

Two checkers share one diagnostics engine (:mod:`.diagnostics`):

* :mod:`.verifier` — a static mirror of the bank state machine that
  classifies every ``ACT→PRE→ACT`` gap and rejects programs that cannot
  perform their operation (rules ``FC101``–``FC113``);
* :mod:`.determinism` — an AST lint over the source tree for global
  RNG, wall-clock reads, and non-atomic result writes (rules
  ``DET201``–``DET204``);
* :mod:`.semantics` — a symbolic charge-algebra evaluator that proves
  what each verified program *computes*: truth tables for every row a
  program touches, checked against the intended Boolean function (rules
  ``SEM301``–``SEM309``);
* :mod:`.concurrency` — a static race detector over multi-tenant
  *schedules* of programs: row-buffer races, sense-amp sharing,
  operand overlap, allocation/quarantine violations, and split timing
  windows (rules ``CC401``–``CC410``), plus the derived
  :class:`~repro.staticcheck.concurrency.ConflictGraph`.

Entry points: ``python -m repro.staticcheck`` (CLI), the
``ProgramExecutor(verify=...)`` pre-flight gate, and the golden tests
in ``tests/staticcheck/``.

The checker submodules are exported lazily: the executor imports
:mod:`.diagnostics` at module load, and the verifier in turn imports the
bender layer, so eager re-export here would tighten that cycle for no
benefit.
"""

from __future__ import annotations

from typing import Any, List

from .diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    format_diagnostics,
    has_errors,
    max_severity,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "format_diagnostics",
    "has_errors",
    "max_severity",
    # lazy (PEP 562):
    "ProgramVerifier",
    "ProgramReport",
    "SessionState",
    "GapClassification",
    "verify_program",
    "lint_source",
    "lint_file",
    "lint_paths",
    "BADCASES",
    "run_case",
    "SymValue",
    "SemanticAnalyzer",
    "SemanticSession",
    "SemanticReport",
    "prove_value",
    "sym_var",
    "sym_const",
    "sym_not",
    "sym_and",
    "sym_or",
    "sym_nand",
    "sym_nor",
    "sym_xor",
    "sym_majority",
    "JobSpec",
    "Schedule",
    "ScheduleAnalyzer",
    "ScheduleReport",
    "ConflictGraph",
    "check_schedule",
    "schedule_from_plan",
]

_LAZY = {
    "ProgramVerifier": "verifier",
    "ProgramReport": "verifier",
    "SessionState": "verifier",
    "GapClassification": "verifier",
    "verify_program": "verifier",
    "lint_source": "determinism",
    "lint_file": "determinism",
    "lint_paths": "determinism",
    "BADCASES": "badcases",
    "run_case": "badcases",
    "SymValue": "semantics",
    "SemanticAnalyzer": "semantics",
    "SemanticSession": "semantics",
    "SemanticReport": "semantics",
    "prove_value": "semantics",
    "sym_var": "semantics",
    "sym_const": "semantics",
    "sym_not": "semantics",
    "sym_and": "semantics",
    "sym_or": "semantics",
    "sym_nand": "semantics",
    "sym_nor": "semantics",
    "sym_xor": "semantics",
    "sym_majority": "semantics",
    "JobSpec": "concurrency",
    "Schedule": "concurrency",
    "ScheduleAnalyzer": "concurrency",
    "ScheduleReport": "concurrency",
    "ConflictGraph": "concurrency",
    "check_schedule": "concurrency",
    "schedule_from_plan": "concurrency",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY))
