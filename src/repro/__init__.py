"""FCDRAM reproduction: functionally-complete Boolean logic in (simulated)
real DRAM chips.

Reproduction of Yüksel et al., "Functionally-Complete Boolean Logic in
Real DRAM Chips: Experimental Characterization and Analysis", HPCA 2024.

Packages
--------
:mod:`repro.dram`
    Analog-behavioral DRAM device model (the silicon substitute).
:mod:`repro.bender`
    DRAM Bender-style testing infrastructure (programs, executor, thermal).
:mod:`repro.core`
    The in-DRAM operations: NOT, many-input AND/OR/NAND/NOR, MAJ, Frac,
    RowClone, plus the success-rate metric and a bulk bitwise engine.
:mod:`repro.reveng`
    Reverse-engineering passes: subarray boundaries, physical row order,
    activation-pattern coverage.
:mod:`repro.system`
    End-to-end PuD runtime: vector handles, subarray-aware allocation,
    in-DRAM data movement (PiDRAM/SIMDRAM framing).
:mod:`repro.characterization`
    The paper's evaluation: the Table-1 fleet and one experiment module
    per table/figure.
:mod:`repro.analysis`
    Result statistics, text rendering, and paper-vs-measured comparison.

Quickstart
----------
>>> from repro import TestingInfrastructure, sk_hynix_chip
>>> infra = TestingInfrastructure.for_config(sk_hynix_chip(), seed=7)
>>> from repro.core import BitwiseAccelerator
>>> import numpy as np
>>> acc = BitwiseAccelerator(infra.host)
>>> a = np.random.default_rng(0).integers(0, 2, acc.vector_width, dtype=np.uint8)
>>> result = acc.nand(a, a)  # in-DRAM NAND
"""

from .bender import DramBenderHost, TestingInfrastructure, TestProgram
from .dram import (
    ActivationKind,
    ActivationSupport,
    Chip,
    ChipConfig,
    ChipGeometry,
    Manufacturer,
    Module,
    ModuleSpec,
)
from .dram.calibration import calibration_for, ideal_calibration
from .errors import (
    ReproError,
    TargetQuarantinedError,
    TransientInfrastructureError,
)
from .faults import FaultPlan
from .rng import SeedTree

__version__ = "1.0.0"


def sk_hynix_chip(**overrides) -> ChipConfig:
    """A representative SK Hynix configuration (supports every operation)."""
    defaults = dict(
        manufacturer=Manufacturer.SK_HYNIX,
        density_gb=4,
        die_revision="M",
        speed_rate_mts=2666,
    )
    defaults.update(overrides)
    return ChipConfig(**defaults)


def samsung_chip(**overrides) -> ChipConfig:
    """A representative Samsung configuration (NOT only, §7)."""
    defaults = dict(
        manufacturer=Manufacturer.SAMSUNG,
        density_gb=8,
        die_revision="D",
        speed_rate_mts=2133,
        activation_support=ActivationSupport.SEQUENTIAL_ONLY,
    )
    defaults.update(overrides)
    return ChipConfig(**defaults)


def micron_chip(**overrides) -> ChipConfig:
    """A representative Micron configuration (no operations, §7)."""
    defaults = dict(
        manufacturer=Manufacturer.MICRON,
        density_gb=8,
        die_revision="B",
        speed_rate_mts=2666,
        activation_support=ActivationSupport.NONE,
    )
    defaults.update(overrides)
    return ChipConfig(**defaults)


__all__ = [
    "ActivationKind",
    "ActivationSupport",
    "Chip",
    "ChipConfig",
    "ChipGeometry",
    "DramBenderHost",
    "FaultPlan",
    "Manufacturer",
    "Module",
    "ModuleSpec",
    "ReproError",
    "SeedTree",
    "TargetQuarantinedError",
    "TestProgram",
    "TestingInfrastructure",
    "TransientInfrastructureError",
    "__version__",
    "calibration_for",
    "ideal_calibration",
    "micron_chip",
    "samsung_chip",
    "sk_hynix_chip",
]
