"""Bit-serial integer arithmetic from in-DRAM Boolean operations.

Functional completeness means *computation*, not just filtering: this
module builds a SIMDRAM-style bit-serial ALU from the paper's operation
set.  Integers are stored bit-sliced — bit ``i`` of every lane lives in
one bit vector — and a W-bit ripple-carry addition is W rounds of

    sum_i     = XOR(a_i, b_i, carry)      (two composed in-DRAM XORs)
    carry_i+1 = MAJ3(a_i, b_i, carry)     (one in-subarray activation)

Every lane (one per shared column) computes in parallel: the throughput
story of Processing-using-DRAM (§1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import UnsupportedOperationError
from .bitwise import BitwiseAccelerator
from .maj import MajorityOperation

__all__ = ["BitSerialAlu", "to_bit_slices", "from_bit_slices"]


def to_bit_slices(values: np.ndarray, width: int) -> np.ndarray:
    """Bit-slice unsigned integers: result shape ``(width, lanes)``."""
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0) or np.any(values >= (1 << width)):
        raise ValueError(f"values must fit in {width} unsigned bits")
    return np.array(
        [(values >> position) & 1 for position in range(width)], dtype=np.uint8
    )


def from_bit_slices(slices: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_bit_slices` (unsigned interpretation)."""
    slices = np.asarray(slices, dtype=np.uint8)
    return sum(
        slices[position].astype(np.int64) << position
        for position in range(slices.shape[0])
    )


class BitSerialAlu:
    """Add/subtract/compare over bit-sliced integers, computed in DRAM."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int = 0,
        subarray_pair: Tuple[int, int] = (0, 1),
        maj_subarray: Optional[int] = None,
        maj_block_local_row: int = 64,
    ):
        self.host = host
        self.bank = bank
        self.accelerator = BitwiseAccelerator(
            host, bank=bank, subarray_pair=subarray_pair
        )
        geometry = host.module.config.geometry
        if maj_subarray is None:
            maj_subarray = subarray_pair[1] + 1
            if maj_subarray >= geometry.subarrays_per_bank:
                raise UnsupportedOperationError(
                    "need a third subarray for the MAJ block; pass "
                    "maj_subarray explicitly"
                )
        if maj_block_local_row % 4:
            raise ValueError("maj_block_local_row must be 4-aligned")
        self.majority = MajorityOperation(
            host,
            bank,
            geometry.bank_row(maj_subarray, maj_block_local_row),
            geometry.bank_row(maj_subarray, maj_block_local_row + 3),
        )

    @property
    def lanes(self) -> int:
        """Number of parallel integer lanes (one per shared column)."""
        return self.accelerator.vector_width

    # -- single-bit helpers ----------------------------------------------

    def _maj(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        width = self.host.module.row_bits
        shared = self.accelerator.shared_columns

        def widen(vector: np.ndarray) -> np.ndarray:
            row = np.zeros(width, dtype=np.uint8)
            row[shared] = vector
            return row

        return self.majority.run([widen(a), widen(b), widen(c)]).result[shared]

    def _check(self, slices: np.ndarray) -> np.ndarray:
        slices = np.asarray(slices, dtype=np.uint8)
        if slices.ndim != 2 or slices.shape[1] != self.lanes:
            raise ValueError(
                f"expected bit slices of shape (width, {self.lanes}), got "
                f"{slices.shape}"
            )
        return slices

    # -- integer operations ------------------------------------------------

    def add(
        self,
        a_slices: np.ndarray,
        b_slices: np.ndarray,
        carry_in: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Ripple-carry addition; result has one extra (carry-out) bit."""
        a_slices = self._check(a_slices)
        b_slices = self._check(b_slices)
        if a_slices.shape != b_slices.shape:
            raise ValueError("operand widths differ")
        width = a_slices.shape[0]
        acc = self.accelerator
        carry = (
            np.zeros(self.lanes, dtype=np.uint8)
            if carry_in is None
            else np.asarray(carry_in, dtype=np.uint8)
        )
        out = np.zeros((width + 1, self.lanes), dtype=np.uint8)
        for position in range(width):
            a, b = a_slices[position], b_slices[position]
            half = acc.xor(a, b)
            out[position] = acc.xor(half, carry)
            carry = self._maj(a, b, carry)
        out[width] = carry
        return out

    def negate(self, slices: np.ndarray) -> np.ndarray:
        """Two's complement: in-DRAM NOT per slice, then +1."""
        slices = self._check(slices)
        inverted = np.array(
            [self.accelerator.not_(row) for row in slices], dtype=np.uint8
        )
        one = np.zeros_like(slices)
        one[0] = 1
        return self.add(inverted, one)[: slices.shape[0]]

    def subtract(self, a_slices: np.ndarray, b_slices: np.ndarray) -> np.ndarray:
        """``a - b`` modulo ``2^width`` (two's complement)."""
        a_slices = self._check(a_slices)
        b_slices = self._check(b_slices)
        inverted = np.array(
            [self.accelerator.not_(row) for row in b_slices], dtype=np.uint8
        )
        ones = np.ones(self.lanes, dtype=np.uint8)
        return self.add(a_slices, inverted, carry_in=ones)[: a_slices.shape[0]]

    def less_than(self, a_slices: np.ndarray, b_slices: np.ndarray) -> np.ndarray:
        """Per-lane unsigned ``a < b`` (1 where true).

        ``a < b`` iff the subtraction ``a + ~b + 1`` produces no carry
        out of the top bit.
        """
        a_slices = self._check(a_slices)
        b_slices = self._check(b_slices)
        inverted = np.array(
            [self.accelerator.not_(row) for row in b_slices], dtype=np.uint8
        )
        ones = np.ones(self.lanes, dtype=np.uint8)
        total = self.add(a_slices, inverted, carry_in=ones)
        carry_out = total[a_slices.shape[0]]
        return self.accelerator.not_(carry_out)

    def multiply(self, a_slices: np.ndarray, b_slices: np.ndarray) -> np.ndarray:
        """Shift-and-add multiplication; result is double width.

        Each partial product is the AND of ``a``'s slices with one bit of
        ``b`` (an in-DRAM AND per slice), accumulated with the ripple-
        carry adder.  Cost: ``W`` masked copies plus ``W`` additions —
        the classic bit-serial trade of latency for massive lane
        parallelism.
        """
        a_slices = self._check(a_slices)
        b_slices = self._check(b_slices)
        width_a, width_b = a_slices.shape[0], b_slices.shape[0]
        out_width = width_a + width_b
        acc = np.zeros((out_width, self.lanes), dtype=np.uint8)
        for j in range(width_b):
            partial = np.zeros((out_width, self.lanes), dtype=np.uint8)
            for i in range(width_a):
                partial[i + j] = self.accelerator.and_(a_slices[i], b_slices[j])
            acc = self.add(acc, partial)[:out_width]
        return acc

    def equals(self, a_slices: np.ndarray, b_slices: np.ndarray) -> np.ndarray:
        """Per-lane equality: NOR over the per-bit XORs."""
        a_slices = self._check(a_slices)
        b_slices = self._check(b_slices)
        diffs = [
            self.accelerator.xor(a, b) for a, b in zip(a_slices, b_slices)
        ]
        if len(diffs) == 1:
            return self.accelerator.not_(diffs[0])
        return self.accelerator.nor(*diffs)
