"""A small Boolean-expression compiler targeting the in-DRAM operations.

SIMDRAM [32] showed that a PuD substrate wants a compiler: users write
Boolean expressions over bit vectors, the framework lowers them to the
substrate's operation set.  This module does that for the paper's
functionally-complete set, with the optimizations the substrate makes
natural:

* **Fan-in fusion** — nested same-operator AND/OR trees collapse into
  the many-input operations the paper demonstrates (up to 16 inputs in
  one activation), instead of a chain of 2-input ops.
* **Complement fusion** — ``NOT(AND(...))`` becomes a single NAND (the
  complement is computed *for free* on the reference terminal, §6.1.3),
  and symmetrically for NOR; double negations cancel.
* **XOR desugaring** — ``XOR(a, b) = AND(OR(a, b), NAND(a, b))``.

Example::

    expr = Or(And(v("a"), v("b")), Not(v("c")))
    program = compile_expression(expr)
    result = program.run(accelerator, {"a": ..., "b": ..., "c": ...})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError
from .bitwise import BitwiseAccelerator

__all__ = [
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "v",
    "CompiledExpression",
    "Step",
    "compile_expression",
]

#: Largest fan-in a single in-DRAM operation supports (Limitation 2).
MAX_FANIN = 16


# ----------------------------------------------------------------------
# expression AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A named input bit vector."""

    name: str

    def evaluate(self, bindings: Mapping[str, np.ndarray]) -> np.ndarray:
        try:
            return np.asarray(bindings[self.name], dtype=np.uint8)
        except KeyError:
            raise ReproError(f"unbound variable {self.name!r}") from None


@dataclass(frozen=True)
class Not:
    child: "Expression"

    def evaluate(self, bindings):
        return (1 - self.child.evaluate(bindings)).astype(np.uint8)


class _Nary:
    """Shared behavior of AND/OR nodes (operands stored in ``children``)."""

    def __init__(self, *children: "Expression"):
        if len(children) < 2:
            raise ReproError(
                f"{type(self).__name__} needs at least 2 operands, got "
                f"{len(children)}"
            )
        self.children: Tuple["Expression", ...] = tuple(children)

    def __eq__(self, other):
        return type(self) is type(other) and self.children == other.children

    def __hash__(self):
        return hash((type(self).__name__, self.children))

    def __repr__(self):  # pragma: no cover - debugging aid
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({inner})"


class And(_Nary):
    def evaluate(self, bindings):
        stacked = [c.evaluate(bindings) for c in self.children]
        result = stacked[0].copy()
        for operand in stacked[1:]:
            result &= operand
        return result


class Or(_Nary):
    def evaluate(self, bindings):
        stacked = [c.evaluate(bindings) for c in self.children]
        result = stacked[0].copy()
        for operand in stacked[1:]:
            result |= operand
        return result


@dataclass(frozen=True)
class Xor:
    left: "Expression"
    right: "Expression"

    def evaluate(self, bindings):
        return (
            self.left.evaluate(bindings) ^ self.right.evaluate(bindings)
        ).astype(np.uint8)


Expression = Union[Var, Not, And, Or, Xor]


def v(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One in-DRAM operation of a compiled program.

    ``inputs`` reference either a variable name (str) or the index of an
    earlier step's result (int).  ``op`` is one of and/or/nand/nor/not.
    """

    op: str
    inputs: Tuple[Union[str, int], ...]


@dataclass
class CompiledExpression:
    """An executable schedule of in-DRAM operations."""

    steps: List[Step] = field(default_factory=list)
    variables: Tuple[str, ...] = ()

    @property
    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for step in self.steps:
            counts[step.op] = counts.get(step.op, 0) + 1
        return counts

    @property
    def total_ops(self) -> int:
        return len(self.steps)

    def run(
        self,
        accelerator: BitwiseAccelerator,
        bindings: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Execute the schedule on an accelerator."""
        missing = [name for name in self.variables if name not in bindings]
        if missing:
            raise ReproError(f"unbound variables: {missing}")
        results: List[np.ndarray] = []

        def resolve(ref: Union[str, int]) -> np.ndarray:
            if isinstance(ref, str):
                return np.asarray(bindings[ref], dtype=np.uint8)
            return results[ref]

        dispatch = {
            "and": accelerator.and_,
            "or": accelerator.or_,
            "nand": accelerator.nand,
            "nor": accelerator.nor,
        }
        for step in self.steps:
            operands = [resolve(ref) for ref in step.inputs]
            if step.op == "not":
                results.append(accelerator.not_(operands[0]))
            else:
                results.append(dispatch[step.op](*operands))
        if not results:
            # Degenerate program: the expression was a bare variable.
            return np.asarray(bindings[self.variables[0]], dtype=np.uint8)
        return results[-1]


def _desugar(expr: Expression) -> Expression:
    """Remove XOR nodes: XOR(a, b) = AND(OR(a, b), NAND(a, b))."""
    if isinstance(expr, Xor):
        left = _desugar(expr.left)
        right = _desugar(expr.right)
        return And(Or(left, right), Not(And(left, right)))
    if isinstance(expr, Not):
        return Not(_desugar(expr.child))
    if isinstance(expr, (And, Or)):
        return type(expr)(*[_desugar(c) for c in expr.children])
    return expr


def _simplify(expr: Expression) -> Expression:
    """Cancel double negations and flatten same-op nests (fan-in fusion)."""
    if isinstance(expr, Not):
        child = _simplify(expr.child)
        if isinstance(child, Not):
            return _simplify(child.child)
        return Not(child)
    if isinstance(expr, (And, Or)):
        flattened: List[Expression] = []
        for child in expr.children:
            child = _simplify(child)
            if type(child) is type(expr):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        # Re-group to the substrate's fan-in cap (Limitation 2): AND/OR
        # are associative, so a too-wide node splits into a chain of
        # maximal-width operations.
        while len(flattened) > MAX_FANIN:
            group = flattened[:MAX_FANIN]
            flattened = [type(expr)(*group)] + flattened[MAX_FANIN:]
        if len(flattened) == 1:
            return flattened[0]
        return type(expr)(*flattened)
    return expr


def _collect_variables(expr: Expression, seen: List[str]) -> None:
    if isinstance(expr, Var):
        if expr.name not in seen:
            seen.append(expr.name)
    elif isinstance(expr, Not):
        _collect_variables(expr.child, seen)
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            _collect_variables(child, seen)
    elif isinstance(expr, Xor):
        _collect_variables(expr.left, seen)
        _collect_variables(expr.right, seen)


def _emit(expr: Expression, program: CompiledExpression) -> Union[str, int]:
    """Post-order lowering with NAND/NOR complement fusion."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Not):
        # NOT over AND/OR fuses into the complement terminal (§6.1.3).
        child = expr.child
        if isinstance(child, (And, Or)):
            refs = tuple(_emit(c, program) for c in child.children)
            fused = "nand" if isinstance(child, And) else "nor"
            program.steps.append(Step(fused, refs))
            return len(program.steps) - 1
        ref = _emit(child, program)
        program.steps.append(Step("not", (ref,)))
        return len(program.steps) - 1
    if isinstance(expr, (And, Or)):
        refs = tuple(_emit(c, program) for c in expr.children)
        program.steps.append(
            Step("and" if isinstance(expr, And) else "or", refs)
        )
        return len(program.steps) - 1
    raise ReproError(f"cannot lower expression node {expr!r}")


def compile_expression(expr: Expression) -> CompiledExpression:
    """Lower an expression to a schedule of in-DRAM operations."""
    lowered = _simplify(_desugar(expr))
    names: List[str] = []
    _collect_variables(lowered, names)
    program = CompiledExpression(variables=tuple(names))
    _emit(lowered, program)
    return program
