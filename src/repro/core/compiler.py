"""A small Boolean-expression compiler targeting the in-DRAM operations.

SIMDRAM [32] showed that a PuD substrate wants a compiler: users write
Boolean expressions over bit vectors, the framework lowers them to the
substrate's operation set.  This module does that for the paper's
functionally-complete set, with the optimizations the substrate makes
natural:

* **Fan-in fusion** — nested same-operator AND/OR trees collapse into
  the many-input operations the paper demonstrates (up to 16 inputs in
  one activation), instead of a chain of 2-input ops.
* **Complement fusion** — ``NOT(AND(...))`` becomes a single NAND (the
  complement is computed *for free* on the reference terminal, §6.1.3),
  and symmetrically for NOR; double negations cancel.
* **XOR desugaring** — ``XOR(a, b) = AND(OR(a, b), NAND(a, b))``.
* **Shared subexpressions** — a node reached twice lowers once; later
  references reuse the earlier step's destination row.

Every compiled schedule carries a machine-checked **equivalence proof**:
the lowered steps are folded through the symbolic charge algebra
(:mod:`repro.staticcheck.semantics`) and the resulting canonical truth
table is compared against the source ``Expression.evaluate`` semantics
over every assignment.  A lowering bug — a swapped NAND/NOR terminal, a
dropped negation — raises :class:`~repro.errors.ProgramVerificationError`
carrying an SEM301 diagnostic instead of silently computing garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from ..errors import ProgramVerificationError, ReproError
from ..staticcheck.semantics import (
    MAX_SUPPORT,
    OP_FUNCS,
    SymValue,
    prove_value,
    sym_const,
    sym_var,
    table_from_outputs,
)
from .bitwise import BitwiseAccelerator

__all__ = [
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "v",
    "CompiledExpression",
    "Step",
    "compile_expression",
    "parse_expression",
]

#: Largest fan-in a single in-DRAM operation supports (Limitation 2).
MAX_FANIN = 16


# ----------------------------------------------------------------------
# expression AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A named input bit vector."""

    name: str

    def evaluate(self, bindings: Mapping[str, np.ndarray]) -> np.ndarray:
        try:
            return np.asarray(bindings[self.name], dtype=np.uint8)
        except KeyError:
            raise ReproError(f"unbound variable {self.name!r}") from None


@dataclass(frozen=True)
class Not:
    child: "Expression"

    def evaluate(self, bindings):
        return (1 - self.child.evaluate(bindings)).astype(np.uint8)


class _Nary:
    """Shared behavior of AND/OR nodes (operands stored in ``children``)."""

    def __init__(self, *children: "Expression"):
        if len(children) < 2:
            raise ReproError(
                f"{type(self).__name__} needs at least 2 operands, got "
                f"{len(children)}"
            )
        self.children: Tuple["Expression", ...] = tuple(children)

    def __eq__(self, other):
        return type(self) is type(other) and self.children == other.children

    def __hash__(self):
        return hash((type(self).__name__, self.children))

    def __repr__(self):  # pragma: no cover - debugging aid
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({inner})"


class And(_Nary):
    def evaluate(self, bindings):
        stacked = [c.evaluate(bindings) for c in self.children]
        result = stacked[0].copy()
        for operand in stacked[1:]:
            result &= operand
        return result


class Or(_Nary):
    def evaluate(self, bindings):
        stacked = [c.evaluate(bindings) for c in self.children]
        result = stacked[0].copy()
        for operand in stacked[1:]:
            result |= operand
        return result


@dataclass(frozen=True)
class Xor:
    left: "Expression"
    right: "Expression"

    def evaluate(self, bindings):
        return (
            self.left.evaluate(bindings) ^ self.right.evaluate(bindings)
        ).astype(np.uint8)


Expression = Union[Var, Not, And, Or, Xor]


def v(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One in-DRAM operation of a compiled program.

    ``inputs`` reference either a variable name (str) or the index of an
    earlier step's result (int).  ``op`` is one of and/or/nand/nor/not.
    """

    op: str
    inputs: Tuple[Union[str, int], ...]


@dataclass
class CompiledExpression:
    """An executable schedule of in-DRAM operations.

    ``proof`` is the canonical truth table the schedule provably
    computes (set by :func:`compile_expression` when verification ran
    and the expression fits the exhaustive-tabulation cap).
    """

    steps: List[Step] = field(default_factory=list)
    variables: Tuple[str, ...] = ()
    proof: Optional[SymValue] = None

    @property
    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for step in self.steps:
            counts[step.op] = counts.get(step.op, 0) + 1
        return counts

    @property
    def total_ops(self) -> int:
        return len(self.steps)

    def run(
        self,
        accelerator: BitwiseAccelerator,
        bindings: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Execute the schedule on an accelerator."""
        missing = [name for name in self.variables if name not in bindings]
        if missing:
            raise ReproError(f"unbound variables: {missing}")
        results: List[np.ndarray] = []

        def resolve(ref: Union[str, int]) -> np.ndarray:
            if isinstance(ref, str):
                return np.asarray(bindings[ref], dtype=np.uint8)
            return results[ref]

        dispatch = {
            "and": accelerator.and_,
            "or": accelerator.or_,
            "nand": accelerator.nand,
            "nor": accelerator.nor,
        }
        for step in self.steps:
            operands = [resolve(ref) for ref in step.inputs]
            if step.op == "not":
                results.append(accelerator.not_(operands[0]))
            else:
                results.append(dispatch[step.op](*operands))
        if not results:
            # Degenerate program: the expression was a bare variable.
            return np.asarray(bindings[self.variables[0]], dtype=np.uint8)
        return results[-1]


def _desugar(expr: Expression) -> Expression:
    """Remove XOR nodes: XOR(a, b) = AND(OR(a, b), NAND(a, b))."""
    if isinstance(expr, Xor):
        left = _desugar(expr.left)
        right = _desugar(expr.right)
        return And(Or(left, right), Not(And(left, right)))
    if isinstance(expr, Not):
        return Not(_desugar(expr.child))
    if isinstance(expr, (And, Or)):
        return type(expr)(*[_desugar(c) for c in expr.children])
    return expr


def _simplify(expr: Expression) -> Expression:
    """Cancel double negations and flatten same-op nests (fan-in fusion)."""
    if isinstance(expr, Not):
        child = _simplify(expr.child)
        if isinstance(child, Not):
            return _simplify(child.child)
        return Not(child)
    if isinstance(expr, (And, Or)):
        flattened: List[Expression] = []
        for child in expr.children:
            child = _simplify(child)
            if type(child) is type(expr):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        # Re-group to the substrate's fan-in cap (Limitation 2): AND/OR
        # are associative, so a too-wide node splits into a chain of
        # maximal-width operations.
        while len(flattened) > MAX_FANIN:
            group = flattened[:MAX_FANIN]
            flattened = [type(expr)(*group)] + flattened[MAX_FANIN:]
        if len(flattened) == 1:
            return flattened[0]
        return type(expr)(*flattened)
    return expr


def _collect_variables(expr: Expression, seen: List[str]) -> None:
    if isinstance(expr, Var):
        if expr.name not in seen:
            seen.append(expr.name)
    elif isinstance(expr, Not):
        _collect_variables(expr.child, seen)
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            _collect_variables(child, seen)
    elif isinstance(expr, Xor):
        _collect_variables(expr.left, seen)
        _collect_variables(expr.right, seen)


def _emit(
    expr: Expression,
    program: CompiledExpression,
    memo: Dict[Expression, Union[str, int]],
) -> Union[str, int]:
    """Post-order lowering with NAND/NOR complement fusion and CSE.

    ``memo`` maps already-lowered nodes to their result reference, so a
    shared subexpression (same node reached twice) costs one in-DRAM
    operation instead of two.
    """
    cached = memo.get(expr)
    if cached is not None:
        return cached
    ref: Union[str, int]
    if isinstance(expr, Var):
        ref = expr.name
    elif isinstance(expr, Not):
        # NOT over AND/OR fuses into the complement terminal (§6.1.3).
        child = expr.child
        if isinstance(child, (And, Or)):
            refs = tuple(_emit(c, program, memo) for c in child.children)
            fused = "nand" if isinstance(child, And) else "nor"
            program.steps.append(Step(fused, refs))
            ref = len(program.steps) - 1
        else:
            inner = _emit(child, program, memo)
            program.steps.append(Step("not", (inner,)))
            ref = len(program.steps) - 1
    elif isinstance(expr, (And, Or)):
        refs = tuple(_emit(c, program, memo) for c in expr.children)
        program.steps.append(
            Step("and" if isinstance(expr, And) else "or", refs)
        )
        ref = len(program.steps) - 1
    else:
        raise ReproError(f"cannot lower expression node {expr!r}")
    memo[expr] = ref
    return ref


# ----------------------------------------------------------------------
# the post-lowering equivalence proof
# ----------------------------------------------------------------------


def _symbolic_fold(program: CompiledExpression) -> SymValue:
    """The symbolic value of the schedule's final step."""
    results: List[SymValue] = []

    def resolve(ref: Union[str, int]) -> SymValue:
        return sym_var(ref) if isinstance(ref, str) else results[ref]

    for step in program.steps:
        results.append(OP_FUNCS[step.op](*[resolve(r) for r in step.inputs]))
    if not results:
        return sym_var(program.variables[0])
    return results[-1]


def _numeric_fold(
    program: CompiledExpression, bindings: Mapping[str, NDArray[np.uint8]]
) -> NDArray[np.uint8]:
    """Evaluate the schedule with NumPy bit semantics (no device)."""
    results: List[NDArray[np.uint8]] = []

    def resolve(ref: Union[str, int]) -> NDArray[np.uint8]:
        if isinstance(ref, str):
            return np.asarray(bindings[ref], dtype=np.uint8)
        return results[ref]

    for step in program.steps:
        operands = [resolve(r) for r in step.inputs]
        stacked = np.asarray(operands)
        if step.op == "not":
            value = (1 - operands[0]).astype(np.uint8)
        elif step.op in ("and", "nand"):
            value = stacked.all(axis=0).astype(np.uint8)
        else:
            value = stacked.any(axis=0).astype(np.uint8)
        if step.op in ("nand", "nor"):
            value = (1 - value).astype(np.uint8)
        results.append(value)
    if not results:
        return np.asarray(bindings[program.variables[0]], dtype=np.uint8)
    return results[-1]


def _assignment_columns(
    names: Tuple[str, ...], count: int
) -> Dict[str, NDArray[np.uint8]]:
    """One binding column per variable: assignment ``i``, bit ``j``."""
    indices = np.arange(count, dtype=np.uint32)
    return {
        name: ((indices >> np.uint32(j)) & 1).astype(np.uint8)
        for j, name in enumerate(names)
    }


def _prove_equivalence(
    source: Expression, program: CompiledExpression
) -> Optional[SymValue]:
    """Check the schedule against the source semantics, every assignment.

    Exhaustive through the symbolic charge algebra when the expression
    fits the 16-variable tabulation cap; a seeded random sample of
    assignments beyond it (wider expressions only arise from fan-in
    regrouping chains).  Raises :class:`ProgramVerificationError`
    carrying an SEM301 diagnostic on any mismatch.
    """
    names = program.variables
    if not names:
        raise ReproError("expression has no variables")
    if len(names) <= MAX_SUPPORT:
        bindings = _assignment_columns(names, 1 << len(names))
        expected_bits = np.asarray(
            source.evaluate(bindings), dtype=np.uint8
        )
        expected = table_from_outputs(names, expected_bits)
        derived = _symbolic_fold(program)
        if not derived.is_func:
            raise ReproError(
                f"symbolic fold of the schedule yielded a {derived.kind} "
                "value; the lowering emitted an unprovable step"
            )
        failures = prove_value(
            derived, expected, "compiled schedule", program="compiled"
        )
        if failures:
            raise ProgramVerificationError(
                "post-lowering equivalence proof failed:\n"
                + "\n".join(d.format() for d in failures),
                diagnostics=failures,
            )
        return derived
    # Beyond the exhaustive cap: seeded sampled assignments, still a
    # deterministic check (same seed, same sample, every build).
    rng = np.random.default_rng(0)
    sample = rng.integers(0, 2, size=(512, len(names)), dtype=np.uint8)
    bindings = {name: sample[:, j] for j, name in enumerate(names)}
    expected_bits = np.asarray(source.evaluate(bindings), dtype=np.uint8)
    actual_bits = _numeric_fold(program, bindings)
    if not np.array_equal(expected_bits, actual_bits):
        mismatch = int(np.flatnonzero(expected_bits != actual_bits)[0])
        assignment = {
            name: int(sample[mismatch, j]) for j, name in enumerate(names)
        }
        failures = prove_value(
            sym_const(int(actual_bits[mismatch])),
            sym_const(int(expected_bits[mismatch])),
            f"sampled assignment {assignment}",
            program="compiled",
        )
        raise ProgramVerificationError(
            "post-lowering equivalence proof failed on sampled assignment "
            f"{assignment}",
            diagnostics=failures,
        )
    return None


def compile_expression(
    expr: Expression, verify: bool = True
) -> CompiledExpression:
    """Lower an expression to a verified schedule of in-DRAM operations.

    With ``verify=True`` (the default) the lowered schedule is proved
    equivalent to the source expression before it is returned — the
    proof object (a canonical truth table) rides along as ``proof``:

    >>> expr = Or(And(v("a"), v("b")), Not(v("c")))
    >>> program = compile_expression(expr)
    >>> program.op_counts == {"and": 1, "not": 1, "or": 1}
    True
    >>> program.proof.describe()
    'f(a, b, c) table=0x8f'

    Complement fusion keeps ``Not(And(...))`` a single NAND, and the
    proof covers the fused form too:

    >>> nand = compile_expression(Not(And(v("a"), v("b"))))
    >>> nand.op_counts
    {'nand': 1}
    >>> nand.proof.describe()
    'f(a, b) table=0x7'

    A verified program then runs on a
    :class:`~repro.core.bitwise.BitwiseAccelerator`::

        result = program.run(accelerator, {"a": ..., "b": ..., "c": ...})
    """
    lowered = _simplify(_desugar(expr))
    names: List[str] = []
    _collect_variables(lowered, names)
    program = CompiledExpression(variables=tuple(names))
    _emit(lowered, program, {})
    if verify:
        program.proof = _prove_equivalence(expr, program)
    return program


# ----------------------------------------------------------------------
# concrete syntax (the CLI's --prove input)
# ----------------------------------------------------------------------


def parse_expression(text: str) -> Expression:
    """Parse ``~ & ^ |`` concrete syntax into an expression AST.

    Precedence (tightest first): ``~``, ``&``, ``^``, ``|``; parentheses
    group.  Variable names are ``[A-Za-z_][A-Za-z0-9_]*``.

    >>> parse_expression("~(a & b) | c ^ d").evaluate(
    ...     {"a": 1, "b": 1, "c": 0, "d": 1}
    ... ).tolist()
    1
    """
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "~&^|()":
            tokens.append(ch)
            i += 1
        elif ch.isalpha() or ch == "_":
            j = i
            while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(text[i:j])
            i = j
        else:
            raise ReproError(f"unexpected character {ch!r} in expression")
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take(expected: Optional[str] = None) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise ReproError("unexpected end of expression")
        token = tokens[pos]
        if expected is not None and token != expected:
            raise ReproError(f"expected {expected!r}, got {token!r}")
        pos += 1
        return token

    def atom() -> Expression:
        token = peek()
        if token == "~":
            take()
            return Not(atom())
        if token == "(":
            take()
            inner = or_level()
            take(")")
            return inner
        if token is None or token in "&^|)":
            raise ReproError(f"expected a variable, got {token!r}")
        return Var(take())

    def and_level() -> Expression:
        node = atom()
        while peek() == "&":
            take()
            node = And(node, atom())
        return node

    def xor_level() -> Expression:
        node = and_level()
        while peek() == "^":
            take()
            node = Xor(node, and_level())
        return node

    def or_level() -> Expression:
        node = xor_level()
        while peek() == "|":
            take()
            node = Or(node, xor_level())
        return node

    result = or_level()
    if pos != len(tokens):
        raise ReproError(f"trailing tokens in expression: {tokens[pos:]}")
    return result
