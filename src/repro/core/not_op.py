"""The in-DRAM NOT operation (§5).

A full-tRAS activation of the source row latches the shared sense
amplifiers; the violated-tRP activation of a destination row in the
*neighboring* subarray connects the destination cells to the amplifiers'
inverted terminal, writing NOT(src) into them — on the half of the
columns served by the shared stripe (footnote 6).

Depending on the (src, dst) address pair, the decoder glitch activates
1..32 destination rows (Fig. 7): :meth:`NotOperation.expected_pattern`
exposes the reverse-engineered prediction so callers know where the
results land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..bender.host import BatchedTrialSession, DramBenderHost
from ..dram.decoder import ActivationPattern
from ..errors import AddressError
from .layout import bank_rows, module_shared_columns
from .sequences import not_program

__all__ = ["NotOperation", "NotOutcome"]


@dataclass(frozen=True)
class NotOutcome:
    """Readback of a NOT operation.

    ``outputs`` maps each destination row (bank-level address) to the
    logic values read on the shared columns — ideally ``NOT(src)``
    restricted to those columns.
    """

    shared_columns: np.ndarray
    outputs: Dict[int, np.ndarray]


class NotOperation:
    """One configured NOT between a source and a destination row."""

    def __init__(self, host: DramBenderHost, bank: int, src_row: int, dst_row: int):
        geometry = host.module.config.geometry
        self.src_subarray = geometry.subarray_of_row(src_row)
        self.dst_subarray = geometry.subarray_of_row(dst_row)
        if abs(self.src_subarray - self.dst_subarray) != 1:
            raise AddressError(
                "NOT requires src and dst rows in neighboring subarrays; got "
                f"subarrays {self.src_subarray} and {self.dst_subarray}"
            )
        self.host = host
        self.bank = bank
        self.src_row = src_row
        self.dst_row = dst_row
        self.shared_columns = module_shared_columns(
            host.module, self.src_subarray, self.dst_subarray
        )

    def expected_pattern(self) -> ActivationPattern:
        """The activation pattern the address pair will produce.

        Equivalent to looking the pair up in the §4 reverse-engineered
        pattern table for this module.
        """
        return self.host.module.decoder.neighboring_pattern(
            self.bank, self.src_row, self.dst_row
        )

    def destination_rows(self) -> List[int]:
        """Bank-level addresses of all predicted destination rows."""
        pattern = self.expected_pattern()
        geometry = self.host.module.config.geometry
        return bank_rows(geometry, self.dst_subarray, pattern.rows_last)

    def execute(self) -> None:
        """Issue the ACT(src) → PRE → ACT(dst) sequence (§5.1)."""
        self.host.run(
            not_program(self.host.timing, self.bank, self.src_row, self.dst_row)
        )

    def execute_batched(self, session: BatchedTrialSession) -> None:
        """Issue the NOT sequence once per trial of a batched block."""
        if session.bank != self.bank:
            raise AddressError(
                f"batched session is bound to bank {session.bank}; "
                f"operation targets bank {self.bank}"
            )
        session.run(
            not_program(session.timing, self.bank, self.src_row, self.dst_row)
        )

    def read_outcome(self) -> NotOutcome:
        """Read every predicted destination row's shared columns."""
        outputs = {}
        for row in self.destination_rows():
            bits = self.host.peek_row(self.bank, row)
            outputs[row] = bits[self.shared_columns]
        return NotOutcome(shared_columns=self.shared_columns, outputs=outputs)

    def run(self, src_bits: np.ndarray) -> NotOutcome:
        """Convenience: initialize, execute, read back.

        Returns the outcome; a perfectly reliable chip would report
        ``NOT(src_bits)`` on the shared columns of every destination row.
        """
        self.host.fill_row(self.bank, self.src_row, src_bits)
        self.execute()
        return self.read_outcome()
