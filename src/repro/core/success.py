"""Success-rate measurement — the paper's reliability metric (§5.2/§6.2).

The success rate of a DRAM cell for an operation is the fraction of
trials in which the cell ends up holding the operation's correct output.
The paper runs 10,000 trials per cell; the measurement classes here take
the trial count as a parameter so characterization sweeps can trade
precision for runtime.  The :class:`~repro.characterization.runner.Scale`
presets run 40 (smoke), 150 (default), and 600 (full) trials — a
binomial with 600 trials already pins a ~95% rate to about plus/minus
2% at two sigma:

>>> from repro.characterization.runner import DEFAULT, FULL, SMOKE
>>> (SMOKE.trials, DEFAULT.trials, FULL.trials)
(40, 150, 600)

Both measurements execute trials through a batched trial-axis engine by
default: a whole block of trials runs as one NumPy evaluation with a
leading trials axis, bit-identical to the serial per-trial loop (each
trial draws analog noise and fault rolls from its own substream, so the
execution mode cannot change any measured count).  ``batch_trials=1``
recovers the serial path; any larger value caps the block size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import UnsupportedOperationError
from ..dram.decoder import ActivationKind
from .layout import bank_rows
from .logic import BASE_OPS, LogicOperation, ideal_output
from .not_op import NotOperation

__all__ = [
    "SuccessResult",
    "NotSuccessMeasurement",
    "LogicSuccessMeasurement",
    "LogicPairResult",
    "DEFAULT_TRIAL_BLOCK",
]

#: Block-size cap used when ``batch_trials=0`` selects automatic batching.
DEFAULT_TRIAL_BLOCK = 1024


def _trial_blocks(trials: int, batch_trials: int) -> List[int]:
    """Split ``trials`` into execution block sizes.

    ``batch_trials`` selects the engine: ``0`` (the default) batches in
    blocks of up to :data:`DEFAULT_TRIAL_BLOCK`; ``1`` recovers the
    serial per-trial path; ``k > 1`` batches in blocks of ``k``.

    >>> _trial_blocks(5, 2)
    [2, 2, 1]
    >>> _trial_blocks(3, 1)
    [1, 1, 1]
    >>> _trial_blocks(2500, 0)
    [1024, 1024, 452]
    """
    if batch_trials < 0:
        raise ValueError(f"batch_trials must be >= 0, got {batch_trials}")
    size = DEFAULT_TRIAL_BLOCK if batch_trials == 0 else batch_trials
    blocks: List[int] = []
    remaining = trials
    while remaining > 0:
        step = min(size, remaining)
        blocks.append(step)
        remaining -= step
    return blocks


@dataclass
class SuccessResult:
    """Per-cell success counts of one measured operation."""

    success_counts: np.ndarray
    trials: int
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def rates(self) -> np.ndarray:
        """Per-cell success rates, same shape as ``success_counts``."""
        if self.trials == 0:
            raise ValueError("no trials were run")
        return self.success_counts / float(self.trials)

    @property
    def mean_rate(self) -> float:
        """The paper's 'average success rate': the mean over all cells."""
        return float(np.mean(self.rates))

    def flat_rates(self) -> np.ndarray:
        """All per-cell rates as a 1-D array (for box statistics)."""
        return self.rates.reshape(-1)


class NotSuccessMeasurement:
    """Success-rate measurement of the NOT operation (§5.2).

    Methodology per trial: initialize the activated rows of both
    subarrays with one random pattern (RAND2), write a second random
    pattern (RAND1) to the source row, issue the NOT sequence, then read
    every destination row and count cells holding ``NOT(RAND1)`` on the
    shared columns.
    """

    def __init__(self, host: DramBenderHost, bank: int, src_row: int, dst_row: int):
        self.host = host
        self.bank = bank
        self.operation = NotOperation(host, bank, src_row, dst_row)
        pattern = self.operation.expected_pattern()
        if pattern.kind is ActivationKind.LAST_ONLY:
            raise UnsupportedOperationError(
                f"address pair ({src_row}, {dst_row}) never engages the "
                "multi-row glitch; pick a pair with a usable pattern"
            )
        self.pattern = pattern
        geometry = host.module.config.geometry
        self.source_rows: List[int] = bank_rows(
            geometry, pattern.subarray_first, pattern.rows_first
        )
        self.destination_rows: List[int] = bank_rows(
            geometry, pattern.subarray_last, pattern.rows_last
        )

    @property
    def n_destination_rows(self) -> int:
        return len(self.destination_rows)

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_trials: int = 0,
    ) -> SuccessResult:
        """Measure ``trials`` trials; see :func:`_trial_blocks` for
        ``batch_trials`` semantics (the result is bit-identical for any
        value)."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        shared = self.operation.shared_columns
        counts = np.zeros((len(self.destination_rows), shared.size), dtype=np.int64)

        for block in _trial_blocks(trials, batch_trials):
            if block == 1:
                self._serial_trial(counts, rng)
            else:
                self._batched_block(counts, rng, block)
        self.host.end_trials()

        return SuccessResult(
            success_counts=counts,
            trials=trials,
            metadata={
                "operation": "not",
                "pattern": self.pattern.label(),
                "kind": self.pattern.kind.value,
                "n_destination_rows": self.n_destination_rows,
            },
        )

    def _serial_trial(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        """One trial through the per-trial execution path."""
        host, bank = self.host, self.bank
        shared = self.operation.shared_columns
        host.begin_trial(bank)
        rand2 = host.random_bits(rng)
        for row in self.source_rows + self.destination_rows:
            host.fill_row(bank, row, rand2)
        rand1 = host.random_bits(rng)
        host.fill_row(bank, self.operation.src_row, rand1)
        expected = 1 - rand1[shared]

        self.operation.execute()

        for i, row in enumerate(self.destination_rows):
            bits = host.peek_row(bank, row)
            counts[i] += bits[shared] == expected

    def _batched_block(
        self, counts: np.ndarray, rng: np.random.Generator, block: int
    ) -> None:
        """One block of trials through the batched execution path."""
        host = self.host
        shared = self.operation.shared_columns
        width = host.module.row_bits
        # Consume the measurement RNG in the exact order of the serial
        # loop — RAND2 then RAND1, per trial — so both paths see the
        # same patterns.
        rand2 = np.empty((block, width), dtype=np.uint8)
        rand1 = np.empty((block, width), dtype=np.uint8)
        for t in range(block):
            rand2[t] = host.random_bits(rng)
            rand1[t] = host.random_bits(rng)
        expected = 1 - rand1[:, shared]

        with host.batched_trials(self.bank, block) as session:
            for row in self.source_rows + self.destination_rows:
                session.fill_row(row, rand2)
            session.fill_row(self.operation.src_row, rand1)

            self.operation.execute_batched(session)

            for i, row in enumerate(self.destination_rows):
                bits = session.peek_row(row)
                counts[i] += np.sum(bits[:, shared] == expected, axis=0)


@dataclass
class LogicPairResult:
    """A logic measurement yields both terminals at once: AND together
    with NAND, or OR together with NOR (§6.1.3)."""

    primary: SuccessResult
    complement: SuccessResult


class LogicSuccessMeasurement:
    """Success-rate measurement of N-input AND/NAND or OR/NOR (§6.2)."""

    #: Supported operand-generation modes (§6.2 "Data Pattern").
    MODES = ("random", "all01", "ones_count")

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ):
        if base_op not in ("and", "or"):
            raise ValueError(f"base_op must be 'and' or 'or', got {base_op!r}")
        self.host = host
        self.bank = bank
        self.base_op = base_op
        self.operation = LogicOperation(host, bank, ref_row, com_row, op=base_op)
        self._constant_rows: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def n_inputs(self) -> int:
        return self.operation.n_inputs

    def _constant_row(self, bit: int) -> np.ndarray:
        """A cached read-only all-``bit`` row pattern.

        The constant-pattern modes ("all01", "ones_count") only ever
        produce all-0 and all-1 operands, so the two arrays are built
        once per measurement instead of once per operand per trial.
        """
        if self._constant_rows is None:
            width = self.host.module.row_bits
            zeros = np.zeros(width, dtype=np.uint8)
            ones = np.ones(width, dtype=np.uint8)
            zeros.setflags(write=False)
            ones.setflags(write=False)
            self._constant_rows = (zeros, ones)
        return self._constant_rows[int(bit)]

    def _draw_operands(
        self,
        rng: np.random.Generator,
        mode: str,
        ones_count: Optional[int],
    ) -> List[np.ndarray]:
        width = self.host.module.row_bits
        n = self.n_inputs
        if mode == "random":
            return [rng.integers(0, 2, width, dtype=np.uint8) for _ in range(n)]
        if mode == "all01":
            choices = rng.integers(0, 2, n)
            return [self._constant_row(bit) for bit in choices]
        if mode == "ones_count":
            if ones_count is None or not 0 <= ones_count <= n:
                raise ValueError(
                    f"ones_count must be in [0, {n}] for mode 'ones_count'"
                )
            ones = np.zeros(n, dtype=np.uint8)
            ones[rng.choice(n, size=ones_count, replace=False)] = 1
            return [self._constant_row(bit) for bit in ones]
        raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
        batch_trials: int = 0,
    ) -> LogicPairResult:
        """Measure ``trials`` trials; see :func:`_trial_blocks` for
        ``batch_trials`` semantics (the result is bit-identical for any
        value)."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        operation = self.operation
        shared = operation.shared_columns
        com_counts = np.zeros((len(operation.compute_rows), shared.size), np.int64)
        ref_counts = np.zeros((len(operation.reference_rows), shared.size), np.int64)

        for block in _trial_blocks(trials, batch_trials):
            if block == 1:
                self._serial_trial(com_counts, ref_counts, rng, mode, ones_count)
            else:
                self._batched_block(
                    com_counts, ref_counts, rng, block, mode, ones_count
                )
        self.host.end_trials()

        base_meta = {
            "n_inputs": self.n_inputs,
            "mode": mode,
            "ones_count": ones_count,
            "pattern": operation.pattern.label(),
        }
        primary_name = self.base_op
        complement_name = "nand" if self.base_op == "and" else "nor"
        return LogicPairResult(
            primary=SuccessResult(
                com_counts, trials, {**base_meta, "operation": primary_name}
            ),
            complement=SuccessResult(
                ref_counts, trials, {**base_meta, "operation": complement_name}
            ),
        )

    def _serial_trial(
        self,
        com_counts: np.ndarray,
        ref_counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
        ones_count: Optional[int],
    ) -> None:
        """One trial through the per-trial execution path."""
        host, bank = self.host, self.bank
        operation = self.operation
        shared = operation.shared_columns
        host.begin_trial(bank)
        operands = self._draw_operands(rng, mode, ones_count)
        operation.prepare_reference()
        operation.set_operands(operands)
        operation.execute()

        expected = ideal_output(self.base_op, [bits[shared] for bits in operands])
        for i, row in enumerate(operation.compute_rows):
            bits = host.peek_row(bank, row)
            com_counts[i] += bits[shared] == expected
        complement = 1 - expected
        for i, row in enumerate(operation.reference_rows):
            bits = host.peek_row(bank, row)
            ref_counts[i] += bits[shared] == complement

    def _batched_block(
        self,
        com_counts: np.ndarray,
        ref_counts: np.ndarray,
        rng: np.random.Generator,
        block: int,
        mode: str,
        ones_count: Optional[int],
    ) -> None:
        """One block of trials through the batched execution path."""
        host = self.host
        operation = self.operation
        shared = operation.shared_columns
        # Consume the measurement RNG in the exact per-trial order of the
        # serial loop (and keep its eager mode/ones_count validation).
        per_trial = [
            self._draw_operands(rng, mode, ones_count) for _ in range(block)
        ]
        operands = [
            np.stack([per_trial[t][i] for t in range(block)])
            for i in range(self.n_inputs)
        ]
        expected = np.stack(
            [
                ideal_output(self.base_op, [bits[shared] for bits in per_trial[t]])
                for t in range(block)
            ]
        )

        with host.batched_trials(self.bank, block) as session:
            operation.prepare_reference_batched(session)
            operation.set_operands_batched(session, operands)
            operation.execute_batched(session)

            for i, row in enumerate(operation.compute_rows):
                bits = session.peek_row(row)
                com_counts[i] += np.sum(bits[:, shared] == expected, axis=0)
            complement = 1 - expected
            for i, row in enumerate(operation.reference_rows):
                bits = session.peek_row(row)
                ref_counts[i] += np.sum(bits[:, shared] == complement, axis=0)
