"""Success-rate measurement — the paper's reliability metric (§5.2/§6.2).

The success rate of a DRAM cell for an operation is the fraction of
trials in which the cell ends up holding the operation's correct output.
The paper runs 10,000 trials per cell; the measurement classes here take
the trial count as a parameter so characterization sweeps can trade
precision for runtime (a binomial with 500 trials already pins a ~95%
rate to about plus/minus 2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import UnsupportedOperationError
from ..dram.decoder import ActivationKind
from .layout import bank_rows
from .logic import BASE_OPS, LogicOperation, ideal_output
from .not_op import NotOperation

__all__ = [
    "SuccessResult",
    "NotSuccessMeasurement",
    "LogicSuccessMeasurement",
    "LogicPairResult",
]


@dataclass
class SuccessResult:
    """Per-cell success counts of one measured operation."""

    success_counts: np.ndarray
    trials: int
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def rates(self) -> np.ndarray:
        """Per-cell success rates, same shape as ``success_counts``."""
        if self.trials == 0:
            raise ValueError("no trials were run")
        return self.success_counts / float(self.trials)

    @property
    def mean_rate(self) -> float:
        """The paper's 'average success rate': the mean over all cells."""
        return float(np.mean(self.rates))

    def flat_rates(self) -> np.ndarray:
        """All per-cell rates as a 1-D array (for box statistics)."""
        return self.rates.reshape(-1)


class NotSuccessMeasurement:
    """Success-rate measurement of the NOT operation (§5.2).

    Methodology per trial: initialize the activated rows of both
    subarrays with one random pattern (RAND2), write a second random
    pattern (RAND1) to the source row, issue the NOT sequence, then read
    every destination row and count cells holding ``NOT(RAND1)`` on the
    shared columns.
    """

    def __init__(self, host: DramBenderHost, bank: int, src_row: int, dst_row: int):
        self.host = host
        self.bank = bank
        self.operation = NotOperation(host, bank, src_row, dst_row)
        pattern = self.operation.expected_pattern()
        if pattern.kind is ActivationKind.LAST_ONLY:
            raise UnsupportedOperationError(
                f"address pair ({src_row}, {dst_row}) never engages the "
                "multi-row glitch; pick a pair with a usable pattern"
            )
        self.pattern = pattern
        geometry = host.module.config.geometry
        self.source_rows: List[int] = bank_rows(
            geometry, pattern.subarray_first, pattern.rows_first
        )
        self.destination_rows: List[int] = bank_rows(
            geometry, pattern.subarray_last, pattern.rows_last
        )

    @property
    def n_destination_rows(self) -> int:
        return len(self.destination_rows)

    def run(self, trials: int, rng: np.random.Generator) -> SuccessResult:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        host, bank = self.host, self.bank
        shared = self.operation.shared_columns
        counts = np.zeros((len(self.destination_rows), shared.size), dtype=np.int64)

        for _ in range(trials):
            rand2 = host.random_bits(rng)
            for row in self.source_rows + self.destination_rows:
                host.fill_row(bank, row, rand2)
            rand1 = host.random_bits(rng)
            host.fill_row(bank, self.operation.src_row, rand1)
            expected = 1 - rand1[shared]

            self.operation.execute()

            for i, row in enumerate(self.destination_rows):
                bits = host.peek_row(bank, row)
                counts[i] += bits[shared] == expected

        return SuccessResult(
            success_counts=counts,
            trials=trials,
            metadata={
                "operation": "not",
                "pattern": self.pattern.label(),
                "kind": self.pattern.kind.value,
                "n_destination_rows": self.n_destination_rows,
            },
        )


@dataclass
class LogicPairResult:
    """A logic measurement yields both terminals at once: AND together
    with NAND, or OR together with NOR (§6.1.3)."""

    primary: SuccessResult
    complement: SuccessResult


class LogicSuccessMeasurement:
    """Success-rate measurement of N-input AND/NAND or OR/NOR (§6.2)."""

    #: Supported operand-generation modes (§6.2 "Data Pattern").
    MODES = ("random", "all01", "ones_count")

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ):
        if base_op not in ("and", "or"):
            raise ValueError(f"base_op must be 'and' or 'or', got {base_op!r}")
        self.host = host
        self.bank = bank
        self.base_op = base_op
        self.operation = LogicOperation(host, bank, ref_row, com_row, op=base_op)

    @property
    def n_inputs(self) -> int:
        return self.operation.n_inputs

    def _draw_operands(
        self,
        rng: np.random.Generator,
        mode: str,
        ones_count: Optional[int],
    ) -> List[np.ndarray]:
        width = self.host.module.row_bits
        n = self.n_inputs
        if mode == "random":
            return [rng.integers(0, 2, width, dtype=np.uint8) for _ in range(n)]
        if mode == "all01":
            choices = rng.integers(0, 2, n)
            return [np.full(width, bit, dtype=np.uint8) for bit in choices]
        if mode == "ones_count":
            if ones_count is None or not 0 <= ones_count <= n:
                raise ValueError(
                    f"ones_count must be in [0, {n}] for mode 'ones_count'"
                )
            ones = np.zeros(n, dtype=np.uint8)
            ones[rng.choice(n, size=ones_count, replace=False)] = 1
            return [np.full(width, bit, dtype=np.uint8) for bit in ones]
        raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
    ) -> LogicPairResult:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        host, bank = self.host, self.bank
        operation = self.operation
        shared = operation.shared_columns
        com_counts = np.zeros((len(operation.compute_rows), shared.size), np.int64)
        ref_counts = np.zeros((len(operation.reference_rows), shared.size), np.int64)

        for _ in range(trials):
            operands = self._draw_operands(rng, mode, ones_count)
            operation.prepare_reference()
            operation.set_operands(operands)
            operation.execute()

            expected = ideal_output(
                self.base_op, [bits[shared] for bits in operands]
            )
            for i, row in enumerate(operation.compute_rows):
                bits = host.peek_row(bank, row)
                com_counts[i] += bits[shared] == expected
            complement = 1 - expected
            for i, row in enumerate(operation.reference_rows):
                bits = host.peek_row(bank, row)
                ref_counts[i] += bits[shared] == complement

        base_meta = {
            "n_inputs": self.n_inputs,
            "mode": mode,
            "ones_count": ones_count,
            "pattern": operation.pattern.label(),
        }
        primary_name = self.base_op
        complement_name = "nand" if self.base_op == "and" else "nor"
        return LogicPairResult(
            primary=SuccessResult(
                com_counts, trials, {**base_meta, "operation": primary_name}
            ),
            complement=SuccessResult(
                ref_counts, trials, {**base_meta, "operation": complement_name}
            ),
        )
