"""The FCDRAM command sequences (§4.1, §5.1, §6.1, FracDRAM).

Every in-DRAM operation of the paper is a small, carefully timed command
program.  These constructors build them against a given timing grade so
the cycle quantization — which matters for the speed-rate observations —
is applied exactly once, here.
"""

from __future__ import annotations

from typing import Optional

from ..dram.timing import ReducedTiming, TimingParameters
from ..bender.program import TestProgram

__all__ = [
    "double_activation_program",
    "not_program",
    "logic_program",
    "rowclone_program",
    "frac_program",
    "nominal_activation_program",
    "trng_program",
]


def double_activation_program(
    timing: TimingParameters,
    bank: int,
    row_first: int,
    row_last: int,
    reduced: ReducedTiming,
    name: str = "double-activation",
    intent: Optional[str] = None,
) -> TestProgram:
    """``ACT R_F → PRE → ACT R_L`` with explicit (possibly violated)
    spacings, then a full tRAS restore window and a clean precharge."""
    program = TestProgram(timing, name=name, intent=intent)
    program.act(bank, row_first, wait_cycles=reduced.first_act_cycles, label="act-first")
    program.pre(bank, wait_cycles=reduced.pre_to_act_cycles, label="pre-violated")
    program.act(bank, row_last, wait_ns=timing.t_ras, label="act-last")
    program.pre(bank, wait_ns=timing.t_rp, label="pre-final")
    return program


def not_program(
    timing: TimingParameters, bank: int, src_row: int, dst_row: int
) -> TestProgram:
    """The NOT sequence (§5.1): full tRAS on the source activation so the
    sense amplifiers latch the source value, then a violated tRP so the
    destination rows connect to the inverted terminal."""
    return double_activation_program(
        timing,
        bank,
        src_row,
        dst_row,
        ReducedTiming.for_not_op(timing),
        name=f"not-{src_row}->{dst_row}",
        intent="not",
    )


def logic_program(
    timing: TimingParameters, bank: int, ref_row: int, com_row: int
) -> TestProgram:
    """The AND/OR/NAND/NOR sequence (§6.2): both tRAS and tRP violated so
    reference and compute cells charge-share before sensing."""
    return double_activation_program(
        timing,
        bank,
        ref_row,
        com_row,
        ReducedTiming.for_logic_op(timing),
        name=f"logic-{ref_row}->{com_row}",
        intent="logic",
    )


def trng_program(
    timing: TimingParameters, bank: int, row_a: int, row_b: int
) -> TestProgram:
    """The QUAC-TRNG conflict activation (§8.1): the logic sequence over
    rows initialized with *conflicting* values, so the bitlines equalize
    at VDD/2 and thermal noise decides each column.

    The non-deterministic outcome is the whole point here, so the
    program carries a ``staticcheck: ignore[...]`` pragma for the rules
    the semantic gate would otherwise (correctly) raise: the cancelling
    operand pattern (SEM303), the resulting sense-amp tie (SEM304), and
    the noise-resolved read-back (SEM306).
    """
    program = double_activation_program(
        timing,
        bank,
        row_a,
        row_b,
        ReducedTiming.for_logic_op(timing),
        name=f"trng-{row_a}->{row_b}",
        intent="logic",
    )
    return program.pragma(
        "staticcheck: ignore[SEM303, SEM304, SEM306] "
        "metastable resolution is the product, not a bug"
    )


def rowclone_program(
    timing: TimingParameters, bank: int, src_row: int, dst_row: int
) -> TestProgram:
    """In-subarray RowClone (§2.2): the same shape as the NOT sequence but
    with both rows in one subarray, so the latched amplifiers copy (not
    negate) the source into the destination."""
    return double_activation_program(
        timing,
        bank,
        src_row,
        dst_row,
        ReducedTiming.for_not_op(timing),
        name=f"rowclone-{src_row}->{dst_row}",
        intent="rowclone",
    )


def frac_program(timing: TimingParameters, bank: int, row: int) -> TestProgram:
    """Store VDD/2 into ``row`` (FracDRAM [38]): interrupt the activation
    before the sense amplifiers resolve, so the precharge equalizer pulls
    the still-connected cells to VDD/2."""
    program = TestProgram(timing, name=f"frac-{row}", intent="frac")
    program.act(bank, row, wait_cycles=max(1, timing.cycles(1.5)), label="act-frac")
    program.pre(bank, wait_ns=timing.t_rp, label="pre-frac")
    return program


def nominal_activation_program(
    timing: TimingParameters, bank: int, row: int
) -> TestProgram:
    """A fully timing-compliant ACT/PRE pair (control experiments)."""
    program = TestProgram(timing, name=f"nominal-{row}", intent="nominal")
    program.act(bank, row, wait_ns=timing.t_ras)
    program.pre(bank, wait_ns=timing.t_rp)
    return program
