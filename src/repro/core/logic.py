"""Many-input AND, OR, NAND, and NOR in DRAM (§6).

The mechanism (§6.1): activate N *reference* rows and N *compute* rows in
neighboring subarrays with both tRAS and tRP violated, so all 2N cells
charge-share before the shared sense amplifiers resolve.  The reference
rows are pre-loaded so their shared voltage sits between the compute
voltages that must resolve to 0 and to 1:

* AND — N-1 reference rows at VDD plus one Frac row at VDD/2, giving
  ``V_AND = (N - 0.5) VDD / N``;
* OR — N-1 reference rows at GND plus one Frac row, giving
  ``V_OR = 0.5 VDD / N``.

After sensing, the compute rows hold AND (OR) and — because the two
terminals of a sense amplifier are complementary — the reference rows
simultaneously hold NAND (NOR) (§6.1.3).  Together with NOT this is a
functionally-complete set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..bender.host import BatchedTrialSession, DramBenderHost
from ..dram.decoder import ActivationKind, ActivationPattern
from ..errors import AddressError, UnsupportedOperationError
from .frac import store_half_vdd, store_half_vdd_batched
from .layout import bank_rows, module_shared_columns
from .sequences import logic_program

__all__ = ["LogicOperation", "LogicOutcome", "ideal_output", "BASE_OPS"]

#: Operations and the side of the sense amplifier their result lands on.
BASE_OPS = {
    "and": ("and", "compute"),
    "or": ("or", "compute"),
    "nand": ("and", "reference"),
    "nor": ("or", "reference"),
}


def ideal_output(op: str, operands: Sequence[np.ndarray]) -> np.ndarray:
    """Bitwise ground truth of ``op`` over operand bit arrays."""
    if op not in BASE_OPS:
        raise ValueError(f"unknown operation {op!r}; expected one of {sorted(BASE_OPS)}")
    stacked = np.asarray([np.asarray(o, dtype=bool) for o in operands])
    if stacked.ndim != 2:
        raise ValueError("operands must be equal-length 1-D bit arrays")
    base, _side = BASE_OPS[op]
    result = stacked.all(axis=0) if base == "and" else stacked.any(axis=0)
    if op in ("nand", "nor"):
        result = ~result
    return result.astype(np.uint8)


@dataclass(frozen=True)
class LogicOutcome:
    """Readback of one many-input logic operation."""

    op: str
    shared_columns: np.ndarray
    #: Result bits on the shared columns (AND/OR read from the compute
    #: side; NAND/NOR from the reference side).
    result: np.ndarray


class LogicOperation:
    """One configured N-input logic operation on an N:N activation pair."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int,
        ref_row: int,
        com_row: int,
        op: str = "and",
    ):
        if op not in BASE_OPS:
            raise ValueError(
                f"unknown operation {op!r}; expected one of {sorted(BASE_OPS)}"
            )
        self.host = host
        self.bank = bank
        self.op = op
        self.ref_row = ref_row
        self.com_row = com_row

        pattern = host.module.decoder.neighboring_pattern(bank, ref_row, com_row)
        if pattern.kind is not ActivationKind.N_TO_N:
            raise UnsupportedOperationError(
                f"address pair ({ref_row}, {com_row}) produces a "
                f"{pattern.label()} {pattern.kind.value} activation; logic "
                "operations need an N:N pattern (§6.2)"
            )
        if pattern.n_first < 2:
            raise UnsupportedOperationError(
                "logic operations need at least a 2:2 activation; pair "
                f"({ref_row}, {com_row}) gives {pattern.label()}"
            )
        self.pattern: ActivationPattern = pattern

        geometry = host.module.config.geometry
        self.reference_rows: List[int] = bank_rows(
            geometry, pattern.subarray_first, pattern.rows_first
        )
        self.compute_rows: List[int] = bank_rows(
            geometry, pattern.subarray_last, pattern.rows_last
        )
        self.shared_columns = module_shared_columns(
            host.module, pattern.subarray_first, pattern.subarray_last
        )

    @property
    def n_inputs(self) -> int:
        return len(self.compute_rows)

    def expected_function(self, inputs: Sequence[object]) -> object:
        """The Boolean function this configuration computes, symbolically.

        ``inputs`` are :class:`~repro.staticcheck.semantics.SymValue`
        operands, one per compute row; the return value is what the
        *result side* of the sense amplifiers must hold after execution
        (the complement side for NAND/NOR).  The semantic verifier
        proves the lowered program against exactly this value.
        """
        from ..staticcheck.semantics import sym_and, sym_not, sym_or

        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} symbolic operands, got {len(inputs)}"
            )
        base, side = BASE_OPS[self.op]
        combine = sym_and if base == "and" else sym_or
        value = combine(*inputs)
        return sym_not(value) if side == "reference" else value

    # ------------------------------------------------------------------

    def prepare_reference(self) -> None:
        """Load the reference subarray for this operation (§6.2 step 1).

        N-1 rows get the constant (all-1s for AND/NAND, all-0s for
        OR/NOR); the remaining row is Frac-initialized to VDD/2.  Must be
        re-done before *every* execution: the operation overwrites the
        reference rows with the complementary result.
        """
        base, _side = BASE_OPS[self.op]
        constant = np.ones if base == "and" else np.zeros
        bits = constant(self.host.module.row_bits, dtype=np.uint8)
        for row in self.reference_rows[:-1]:
            self.host.fill_row(self.bank, row, bits)
        store_half_vdd(self.host, self.bank, self.reference_rows[-1])

    def set_operands(self, operands: Sequence[np.ndarray]) -> None:
        """Store the N input operands into the compute rows (§6.2 step 2)."""
        if len(operands) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} operands, got {len(operands)}"
            )
        for row, bits in zip(self.compute_rows, operands):
            self.host.fill_row(self.bank, row, np.asarray(bits, dtype=np.uint8))

    def execute(self) -> None:
        """Issue the reduced-timing double activation (§6.2 step 3)."""
        self.host.run(
            logic_program(self.host.timing, self.bank, self.ref_row, self.com_row)
        )

    # -- batched (trial-axis) variants ---------------------------------

    def _check_session(self, session: BatchedTrialSession) -> None:
        if session.bank != self.bank:
            raise AddressError(
                f"batched session is bound to bank {session.bank}; "
                f"operation targets bank {self.bank}"
            )

    def prepare_reference_batched(self, session: BatchedTrialSession) -> None:
        """Batched :meth:`prepare_reference` for every trial of a block.

        The constant rows are trial-invariant; the Frac row draws its
        equalizer noise per trial, so each trial's reference voltages
        match what a serial ``prepare_reference`` would have produced.
        """
        self._check_session(session)
        base, _side = BASE_OPS[self.op]
        constant = np.ones if base == "and" else np.zeros
        bits = constant(self.host.module.row_bits, dtype=np.uint8)
        for row in self.reference_rows[:-1]:
            session.fill_row(row, bits)
        store_half_vdd_batched(session, self.reference_rows[-1])

    def set_operands_batched(
        self, session: BatchedTrialSession, operands: Sequence[np.ndarray]
    ) -> None:
        """Batched :meth:`set_operands`.

        Each operand is ``(row_bits,)`` (same bits for every trial) or
        ``(n_trials, row_bits)`` (per-trial operand draws).
        """
        self._check_session(session)
        if len(operands) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} operands, got {len(operands)}"
            )
        for row, bits in zip(self.compute_rows, operands):
            session.fill_row(row, np.asarray(bits, dtype=np.uint8))

    def execute_batched(self, session: BatchedTrialSession) -> None:
        """Batched :meth:`execute`: one double activation per trial."""
        self._check_session(session)
        session.run(
            logic_program(session.timing, self.bank, self.ref_row, self.com_row)
        )

    def read_outcome(self) -> LogicOutcome:
        """Read the result from the appropriate terminal's rows."""
        _base, side = BASE_OPS[self.op]
        rows = self.compute_rows if side == "compute" else self.reference_rows
        bits = self.host.peek_row(self.bank, rows[0])
        return LogicOutcome(
            op=self.op,
            shared_columns=self.shared_columns,
            result=bits[self.shared_columns],
        )

    def run(self, operands: Sequence[np.ndarray]) -> LogicOutcome:
        """Convenience: prepare, load, execute, read back."""
        self.prepare_reference()
        self.set_operands(operands)
        self.execute()
        return self.read_outcome()
