"""Engineering around imperfect operations: profiling and redundancy.

The paper characterizes *how often* in-DRAM operations fail so systems
can be engineered around the failures.  This module provides the two
standard levers:

* **Cell profiling** — the paper's own methodology (footnote 8): measure
  per-cell success once, then only trust cells above a threshold.
  :class:`CellProfile` productizes that into a reusable mask.

* **Modular redundancy** — repeat an operation R times and take a
  majority vote per cell.  Per-trial failures are (largely) independent
  across repetitions, so a per-op success rate ``p`` becomes roughly
  ``sum_{k>R/2} C(R,k) p^k (1-p)^(R-k)`` — e.g. 0.90 -> 0.972 at R=3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ReproError
from .logic import LogicOperation
from .not_op import NotOperation

__all__ = [
    "CellProfile",
    "majority_vote",
    "profile_cells",
    "RedundantLogicOperation",
    "RedundantNotOperation",
]


@dataclass(frozen=True)
class CellProfile:
    """Per-cell trust mask over an operation's result columns."""

    mask: np.ndarray
    threshold: float
    trials: int

    @property
    def fraction_good(self) -> float:
        return float(np.mean(self.mask))

    def apply(self, bits: np.ndarray, fallback: int = 0) -> np.ndarray:
        """Zero (or ``fallback``) the untrusted positions of a result."""
        bits = np.asarray(bits)
        if bits.shape != self.mask.shape:
            raise ValueError(
                f"result shape {bits.shape} does not match profile "
                f"{self.mask.shape}"
            )
        return np.where(self.mask, bits, fallback)


def profile_cells(
    run_once: Callable[[np.random.Generator], np.ndarray],
    trials: int,
    rng: np.random.Generator,
    threshold: float = 0.9,
) -> CellProfile:
    """Profile an operation's per-cell correctness.

    ``run_once(rng)`` must execute the operation with fresh random
    operands and return a boolean per-cell correctness vector.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    counts = None
    for _ in range(trials):
        correct = np.asarray(run_once(rng), dtype=np.int64)
        counts = correct if counts is None else counts + correct
    return CellProfile(
        mask=(counts / trials) >= threshold, threshold=threshold, trials=trials
    )


def majority_vote(results: Sequence[np.ndarray]) -> np.ndarray:
    """Per-cell majority over an odd number of repetition results."""
    stacked = np.asarray([np.asarray(r, dtype=np.uint8) for r in results])
    if stacked.shape[0] % 2 == 0:
        raise ValueError("majority voting needs an odd repetition count")
    return (stacked.sum(axis=0) * 2 > stacked.shape[0]).astype(np.uint8)


class RedundantLogicOperation:
    """A logic operation hardened by R-modular redundancy."""

    def __init__(self, operation: LogicOperation, repeats: int = 3):
        if repeats < 1 or repeats % 2 == 0:
            raise ValueError(f"repeats must be odd and >= 1, got {repeats}")
        self.operation = operation
        self.repeats = repeats

    def run(self, operands) -> np.ndarray:
        """Execute the operation ``repeats`` times; majority per cell.

        Each repetition re-prepares the reference rows and re-loads the
        operands (the operation overwrites both), exactly as a real
        controller would have to.
        """
        results = [self.operation.run(operands).result for _ in range(self.repeats)]
        return majority_vote(results)


class RedundantNotOperation:
    """A NOT operation hardened by voting across repetitions *and*
    across the destination rows the activation writes anyway."""

    def __init__(self, operation: NotOperation, repeats: int = 3):
        if repeats < 1 or repeats % 2 == 0:
            raise ValueError(f"repeats must be odd and >= 1, got {repeats}")
        self.operation = operation
        self.repeats = repeats

    def run(self, src_bits: np.ndarray) -> np.ndarray:
        votes = []
        for _ in range(self.repeats):
            outcome = self.operation.run(src_bits)
            votes.extend(outcome.outputs.values())
        if len(votes) % 2 == 0:
            votes = votes[:-1]
        if not votes:
            raise ReproError("the NOT operation produced no destination rows")
        return majority_vote(votes)
