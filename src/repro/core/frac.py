"""The Frac operation: storing VDD/2 in DRAM cells (FracDRAM [38]).

The many-input AND/OR mechanism needs one reference-subarray row at
VDD/2 (§6.1.2, §6.2).  FracDRAM shows COTS chips can store fractional
values by interrupting an activation before the sense amplifiers
resolve: the precharge equalizer then pulls the still-connected cells to
the bitline rest voltage, VDD/2.
"""

from __future__ import annotations

import numpy as np

from ..bender.host import BatchedTrialSession, DramBenderHost
from .sequences import frac_program

__all__ = ["store_half_vdd", "store_half_vdd_batched", "is_fractional"]


def store_half_vdd(host: DramBenderHost, bank: int, row: int) -> None:
    """Drive every cell of ``row`` to (approximately) VDD/2."""
    host.run(frac_program(host.timing, bank, row))


def store_half_vdd_batched(session: BatchedTrialSession, row: int) -> None:
    """Frac ``row`` for every trial of a batched block.

    Each trial draws its own equalizer noise from its per-trial
    substream, so the fractional voltages match ``n_trials`` serial
    :func:`store_half_vdd` calls bit-for-bit.
    """
    session.run(frac_program(session.timing, session.bank, row))


def is_fractional(voltages: np.ndarray, tolerance: float = 0.1) -> np.ndarray:
    """Boolean mask of cells within ``tolerance`` of VDD/2 (for tests)."""
    voltages = np.asarray(voltages, dtype=np.float64)
    return np.abs(voltages - 0.5) <= tolerance
