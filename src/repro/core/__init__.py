"""The paper's contribution: functionally-complete in-DRAM Boolean logic.

* :mod:`repro.core.sequences` — the timing-violating command sequences
* :mod:`repro.core.frac` / :mod:`repro.core.rowclone` — supporting
  primitives from prior work (FracDRAM, RowClone)
* :mod:`repro.core.not_op` — in-DRAM NOT (§5)
* :mod:`repro.core.logic` — many-input AND/OR/NAND/NOR (§6)
* :mod:`repro.core.maj` — the in-subarray MAJ baseline (§8.1)
* :mod:`repro.core.success` — the success-rate reliability metric
* :mod:`repro.core.bitwise` — a bulk bitwise accelerator built on top
"""

from .addressing import find_pattern_pair, find_pattern_pairs
from .arith import BitSerialAlu, from_bit_slices, to_bit_slices
from .bitwise import BitwiseAccelerator
from .compiler import (
    And,
    CompiledExpression,
    Not,
    Or,
    Step,
    Var,
    Xor,
    compile_expression,
    v,
)
from .frac import is_fractional, store_half_vdd
from .layout import (
    bank_rows,
    chip_shared_columns,
    module_shared_columns,
    neighboring_subarray_pairs,
)
from .logic import BASE_OPS, LogicOperation, LogicOutcome, ideal_output
from .maj import MajorityOperation, MajorityOutcome, ideal_majority
from .not_op import NotOperation, NotOutcome
from .reliability import (
    CellProfile,
    RedundantLogicOperation,
    RedundantNotOperation,
    majority_vote,
    profile_cells,
)
from .rowclone import rowclone, rowclone_match_fraction
from .sequences import (
    double_activation_program,
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from .success import (
    LogicPairResult,
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    SuccessResult,
)
from .trng import DramTrng, TrngQuality, assess_quality, von_neumann_extract

__all__ = [
    "And",
    "BASE_OPS",
    "BitSerialAlu",
    "BitwiseAccelerator",
    "CellProfile",
    "CompiledExpression",
    "Not",
    "Or",
    "RedundantLogicOperation",
    "RedundantNotOperation",
    "Step",
    "Var",
    "Xor",
    "compile_expression",
    "majority_vote",
    "profile_cells",
    "v",
    "DramTrng",
    "TrngQuality",
    "LogicOperation",
    "LogicOutcome",
    "LogicPairResult",
    "LogicSuccessMeasurement",
    "MajorityOperation",
    "MajorityOutcome",
    "NotOperation",
    "NotOutcome",
    "NotSuccessMeasurement",
    "SuccessResult",
    "bank_rows",
    "assess_quality",
    "chip_shared_columns",
    "double_activation_program",
    "from_bit_slices",
    "find_pattern_pair",
    "find_pattern_pairs",
    "frac_program",
    "ideal_majority",
    "ideal_output",
    "is_fractional",
    "logic_program",
    "module_shared_columns",
    "neighboring_subarray_pairs",
    "nominal_activation_program",
    "not_program",
    "rowclone",
    "rowclone_match_fraction",
    "rowclone_program",
    "store_half_vdd",
    "to_bit_slices",
    "von_neumann_extract",
]
