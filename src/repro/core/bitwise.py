"""Bulk bitwise execution engine on top of the FCDRAM primitives.

The paper's motivation (§1) is bulk bitwise computation on large bit
vectors without moving them to the CPU.  :class:`BitwiseAccelerator`
packages the raw operations into that shape: it owns a neighboring
subarray pair, discovers usable N:N activation address pairs once (the
§4 reverse-engineering step), and then evaluates Boolean expressions
over host-supplied bit vectors of ``vector_width`` bits.

Derived operations are composed from the functionally-complete base set,
e.g. ``XOR(a, b) = AND(OR(a, b), NAND(a, b))`` — three in-DRAM
operations and no CPU Boolean logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bender.host import DramBenderHost
from ..dram.decoder import ActivationKind
from ..errors import ReverseEngineeringError, UnsupportedOperationError
from .addressing import find_pattern_pair
from .layout import module_shared_columns
from .logic import LogicOperation
from .not_op import NotOperation

__all__ = ["BitwiseAccelerator"]

_SUPPORTED_FANIN = (2, 4, 8, 16)


class BitwiseAccelerator:
    """Bulk Boolean operations on bit vectors, computed inside DRAM."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int = 0,
        subarray_pair: Optional[tuple] = None,
        seed: int = 0,
    ):
        self.host = host
        self.bank = bank
        geometry = host.module.config.geometry
        if subarray_pair is None:
            subarray_pair = (0, 1)
        self.subarray_pair = subarray_pair
        self._seed = seed
        self._logic_pairs: Dict[int, tuple] = {}
        self._not_pair: Optional[tuple] = None
        self.shared_columns = module_shared_columns(
            host.module, subarray_pair[0], subarray_pair[1]
        )

    @property
    def vector_width(self) -> int:
        """Width of the bit vectors this accelerator operates on."""
        return int(self.shared_columns.size)

    # -- address-pair discovery (the §4 reverse-engineering step) ---------

    def _logic_pair(self, n: int) -> tuple:
        pair = self._logic_pairs.get(n)
        if pair is None:
            decoder = self.host.module.decoder
            geometry = self.host.module.config.geometry
            pair = find_pattern_pair(
                decoder,
                geometry,
                self.bank,
                self.subarray_pair[0],
                self.subarray_pair[1],
                n,
                ActivationKind.N_TO_N,
                seed=self._seed + n,
            )
            self._logic_pairs[n] = pair
        return pair

    def _find_not_pair(self) -> tuple:
        if self._not_pair is None:
            decoder = self.host.module.decoder
            geometry = self.host.module.config.geometry
            for n in (1, 2, 4):
                try:
                    self._not_pair = find_pattern_pair(
                        decoder,
                        geometry,
                        self.bank,
                        self.subarray_pair[0],
                        self.subarray_pair[1],
                        n,
                        ActivationKind.N_TO_N,
                        seed=self._seed,
                    )
                    break
                except ReverseEngineeringError:
                    continue
            if self._not_pair is None:
                raise ReverseEngineeringError(
                    "no usable NOT address pair in this subarray pair"
                )
        return self._not_pair

    # -- vector plumbing ---------------------------------------------------

    def _expand(self, vector: np.ndarray) -> np.ndarray:
        """Embed a shared-columns vector into a full module row."""
        vector = np.asarray(vector, dtype=np.uint8)
        if vector.shape != (self.vector_width,):
            raise ValueError(
                f"vector must have width {self.vector_width}, got {vector.shape}"
            )
        row = np.zeros(self.host.module.row_bits, dtype=np.uint8)
        row[self.shared_columns] = vector
        return row

    @staticmethod
    def _fanin_for(count: int) -> int:
        for n in _SUPPORTED_FANIN:
            if count <= n:
                return n
        raise UnsupportedOperationError(
            f"at most {_SUPPORTED_FANIN[-1]} operands are supported "
            f"(Limitation 2), got {count}"
        )

    # -- base operations -----------------------------------------------------

    def _run_logic(self, op: str, vectors: Sequence[np.ndarray]) -> np.ndarray:
        if len(vectors) < 2:
            raise ValueError("logic operations need at least 2 operands")
        n = self._fanin_for(len(vectors))
        base = "and" if op in ("and", "nand") else "or"
        identity = 1 if base == "and" else 0
        padded: List[np.ndarray] = [self._expand(v) for v in vectors]
        pad_row = np.full(self.host.module.row_bits, identity, dtype=np.uint8)
        padded.extend(pad_row for _ in range(n - len(vectors)))

        ref_row, com_row = self._logic_pair(n)
        operation = LogicOperation(self.host, self.bank, ref_row, com_row, op=op)
        return operation.run(padded).result

    def and_(self, *vectors: np.ndarray) -> np.ndarray:
        """Many-input in-DRAM AND (2..16 operands)."""
        return self._run_logic("and", vectors)

    def or_(self, *vectors: np.ndarray) -> np.ndarray:
        """Many-input in-DRAM OR (2..16 operands)."""
        return self._run_logic("or", vectors)

    def nand(self, *vectors: np.ndarray) -> np.ndarray:
        """Many-input in-DRAM NAND (2..16 operands)."""
        return self._run_logic("nand", vectors)

    def nor(self, *vectors: np.ndarray) -> np.ndarray:
        """Many-input in-DRAM NOR (2..16 operands)."""
        return self._run_logic("nor", vectors)

    def not_(self, vector: np.ndarray) -> np.ndarray:
        """In-DRAM NOT via neighboring-subarray activation (§5)."""
        src_row, dst_row = self._find_not_pair()
        operation = NotOperation(self.host, self.bank, src_row, dst_row)
        outcome = operation.run(self._expand(vector))
        first_dst = operation.destination_rows()[0]
        return outcome.outputs[first_dst]

    # -- composed operations ------------------------------------------------

    def xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR composed from the functionally-complete base set:
        ``XOR(a, b) = AND(OR(a, b), NAND(a, b))`` — three in-DRAM ops."""
        return self.and_(self.or_(a, b), self.nand(a, b))

    def xnor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XNOR = NOT(XOR), a fourth in-DRAM op on top of :meth:`xor`."""
        return self.not_(self.xor(a, b))
