"""In-subarray bitwise majority — the prior-work baseline (§8.1).

ComputeDRAM/FracDRAM-style MAJ: a reduced-timing double activation of
rows *within one subarray* charge-shares all activated cells against the
precharged opposite terminal (VDD/2), so the sense amplifier computes a
majority vote of the activated cells.  With a 4-row activation where one
row is Frac-initialized to VDD/2, the result is an exact three-input
majority, MAJ3 — the primitive prior COTS-DRAM work stops at, and the
baseline the paper's functionally-complete set is compared against.

Unlike the neighboring-subarray operations, MAJ produces its result on
*all* columns (both stripes of the subarray participate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import UnsupportedOperationError
from .frac import store_half_vdd
from .layout import bank_rows
from .sequences import logic_program

__all__ = ["MajorityOperation", "MajorityOutcome", "ideal_majority"]


def ideal_majority(operands: Sequence[np.ndarray]) -> np.ndarray:
    """Bitwise majority ground truth (ties cannot occur for odd counts)."""
    stacked = np.asarray([np.asarray(o, dtype=np.uint8) for o in operands])
    if stacked.shape[0] % 2 == 0:
        raise ValueError("majority needs an odd number of operands")
    return (stacked.sum(axis=0) * 2 > stacked.shape[0]).astype(np.uint8)


@dataclass(frozen=True)
class MajorityOutcome:
    result: np.ndarray


class MajorityOperation:
    """MAJ3 via 4-row in-subarray activation (3 inputs + 1 Frac row)."""

    def __init__(self, host: DramBenderHost, bank: int, row_a: int, row_b: int):
        self.host = host
        self.bank = bank
        self.row_a = row_a
        self.row_b = row_b
        pattern = host.module.decoder.same_subarray_pattern(bank, row_a, row_b)
        if len(pattern.rows_first) != 4:
            raise UnsupportedOperationError(
                f"address pair ({row_a}, {row_b}) activates "
                f"{len(pattern.rows_first)} rows; MAJ3 needs a 4-row "
                "in-subarray activation (addresses differing in two "
                "low local-wordline bits)"
            )
        geometry = host.module.config.geometry
        self.rows: List[int] = bank_rows(
            geometry, pattern.subarray_first, pattern.rows_first
        )

    @property
    def input_rows(self) -> List[int]:
        """The three rows holding the MAJ3 operands."""
        return self.rows[:-1]

    @property
    def frac_row(self) -> int:
        """The row Frac-initialized to VDD/2 (the FracDRAM trick)."""
        return self.rows[-1]

    def expected_function(self, a: object, b: object, c: object) -> object:
        """MAJ3 over symbolic operands — the value the semantic verifier
        proves the input rows hold after execution (the Frac row biases
        the 4-cell charge share into a clean 3-input majority)."""
        from ..staticcheck.semantics import sym_majority

        return sym_majority(a, b, c)

    def run(self, operands: Sequence[np.ndarray]) -> MajorityOutcome:
        """Load three operands, execute, read the majority result."""
        if len(operands) != 3:
            raise ValueError(f"MAJ3 takes exactly 3 operands, got {len(operands)}")
        for row, bits in zip(self.input_rows, operands):
            self.host.fill_row(self.bank, row, np.asarray(bits, dtype=np.uint8))
        store_half_vdd(self.host, self.bank, self.frac_row)
        self.host.run(
            logic_program(self.host.timing, self.bank, self.row_a, self.row_b)
        )
        bits = self.host.peek_row(self.bank, self.input_rows[0])
        return MajorityOutcome(result=bits)
