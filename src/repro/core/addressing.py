"""Finding address pairs that produce a desired activation pattern.

Which ``(R_F, R_L)`` pairs yield which ``N_RF:N_RL`` pattern is a fixed
property of a module (Observation 2) that the paper reverse engineers
once per module (§4.2) and then uses to place operands.  These helpers
query the module's decoder model — the simulator's equivalent of that
reverse-engineered lookup table.  For the from-first-principles scan
that *builds* such a table with real command sequences, see
:mod:`repro.reveng.activation`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..dram.config import ChipGeometry
from ..dram.decoder import ActivationKind, ActivationPattern
from ..errors import ReverseEngineeringError

__all__ = ["find_pattern_pairs", "find_pattern_pair"]

PairPredicate = Callable[[ActivationPattern, int, int], bool]


def find_pattern_pairs(
    decoder,
    geometry: ChipGeometry,
    bank: int,
    subarray_first: int,
    subarray_last: int,
    n: int,
    kind: ActivationKind = ActivationKind.N_TO_N,
    limit: int = 1,
    seed: int = 0,
    max_tries: int = 200_000,
    predicate: Optional[PairPredicate] = None,
) -> List[Tuple[int, int]]:
    """Sample ``limit`` (row_first, row_last) bank-address pairs whose
    activation pattern is ``n``:``kind`` between the given subarrays.

    Pairs are probed in a seeded pseudo-random order, so the expected
    number of probes per hit is the inverse of the pattern's coverage
    (Fig. 5).  ``predicate`` can impose extra conditions (e.g. a distance
    region for the Fig. 9/17 experiments).

    Raises :class:`ReverseEngineeringError` when the budget runs out —
    which legitimately happens for patterns a module cannot produce.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    rng = np.random.default_rng(seed)
    rows = geometry.rows_per_subarray
    pairs: List[Tuple[int, int]] = []
    seen = set()

    for _ in range(max_tries):
        local_first = int(rng.integers(rows))
        local_last = int(rng.integers(rows))
        key = (local_first, local_last)
        if key in seen:
            continue
        seen.add(key)
        row_first = geometry.bank_row(subarray_first, local_first)
        row_last = geometry.bank_row(subarray_last, local_last)
        pattern = decoder.neighboring_pattern(bank, row_first, row_last)
        if pattern.kind is not kind or pattern.n_first != n:
            continue
        if predicate is not None and not predicate(pattern, row_first, row_last):
            continue
        pairs.append((row_first, row_last))
        if len(pairs) == limit:
            return pairs

    raise ReverseEngineeringError(
        f"found only {len(pairs)}/{limit} pairs with pattern "
        f"{n}:{kind.value} between subarrays {subarray_first} and "
        f"{subarray_last} after {max_tries} probes"
    )


def find_pattern_pair(
    decoder,
    geometry: ChipGeometry,
    bank: int,
    subarray_first: int,
    subarray_last: int,
    n: int,
    kind: ActivationKind = ActivationKind.N_TO_N,
    seed: int = 0,
    **kwargs,
) -> Tuple[int, int]:
    """First pair from :func:`find_pattern_pairs`."""
    return find_pattern_pairs(
        decoder,
        geometry,
        bank,
        subarray_first,
        subarray_last,
        n,
        kind,
        limit=1,
        seed=seed,
        **kwargs,
    )[0]
