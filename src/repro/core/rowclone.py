"""In-DRAM row copy (RowClone [49]) on COTS chips (§2.2).

A full-tRAS activation latches the source row in both adjacent stripes;
a violated-tRP second activation to another row of the *same* subarray
connects the destination cells to the latched bitlines, copying the
source row wholesale.  Used directly as a data-movement primitive and as
the probe for subarray-boundary reverse engineering (§4.2).
"""

from __future__ import annotations

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import AddressError
from .sequences import rowclone_program

__all__ = ["rowclone", "rowclone_match_fraction"]


def rowclone(host: DramBenderHost, bank: int, src_row: int, dst_row: int) -> None:
    """Copy ``src_row`` into ``dst_row`` (both in the same subarray).

    Rows in different subarrays do not share bitlines, so the sequence
    degenerates to two independent activations there — which is exactly
    the signal the subarray mapper uses.  This function therefore does
    *not* validate subarray membership: issuing the sequence across a
    boundary is legal, it just does not copy.
    """
    if src_row == dst_row:
        raise AddressError("source and destination rows must differ")
    host.run(rowclone_program(host.timing, bank, src_row, dst_row))


def rowclone_match_fraction(
    host: DramBenderHost,
    bank: int,
    src_row: int,
    dst_row: int,
    pattern: np.ndarray,
    background: np.ndarray,
) -> float:
    """One subarray-mapper probe: did RowClone replicate ``pattern``?

    Initializes ``src_row`` with ``pattern`` and ``dst_row`` with
    ``background``, runs the sequence, and returns the fraction of
    destination bits that now match the pattern.
    """
    host.fill_row(bank, src_row, pattern)
    host.fill_row(bank, dst_row, background)
    rowclone(host, bank, src_row, dst_row)
    result = host.peek_row(bank, dst_row)
    return float(np.mean(result == np.asarray(pattern)))
