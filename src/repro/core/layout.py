"""Address/geometry helpers shared by the in-DRAM operations.

The open-bitline layout means an operation between neighboring subarrays
only touches the columns served by the *shared* sense-amplifier stripe —
half of each row (footnote 6).  These helpers compute that column set at
chip and at module level, and convert between bank-level and
subarray-local row addresses.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..dram.config import ChipGeometry
from ..dram.module import Module
from ..errors import AddressError

__all__ = [
    "chip_shared_columns",
    "module_shared_columns",
    "bank_rows",
    "neighboring_subarray_pairs",
]


def chip_shared_columns(geometry: ChipGeometry, subarray_a: int, subarray_b: int) -> np.ndarray:
    """Chip-level columns on which two neighboring subarrays share sense
    amplifiers (stripe ``max(a, b)`` serves columns of its parity)."""
    if abs(subarray_a - subarray_b) != 1:
        raise AddressError(
            f"subarrays {subarray_a} and {subarray_b} are not neighbors"
        )
    stripe = max(subarray_a, subarray_b)
    return np.arange(stripe % 2, geometry.columns, 2)


def module_shared_columns(module: Module, subarray_a: int, subarray_b: int) -> np.ndarray:
    """Module-level columns shared by two neighboring subarrays."""
    per_chip = chip_shared_columns(module.config.geometry, subarray_a, subarray_b)
    width = module.columns_per_chip
    return np.concatenate(
        [per_chip + chip_index * width for chip_index in range(module.chip_count)]
    )


def bank_rows(geometry: ChipGeometry, subarray: int, local_rows: Sequence[int]) -> List[int]:
    """Bank-level addresses of ``local_rows`` within ``subarray``."""
    return [geometry.bank_row(subarray, local) for local in local_rows]


def neighboring_subarray_pairs(geometry: ChipGeometry) -> List[Tuple[int, int]]:
    """All (lower, upper) neighboring subarray index pairs of a bank."""
    return [(s, s + 1) for s in range(geometry.subarrays_per_bank - 1)]
