"""True random number generation from multi-row activation (§8.1).

The paper notes that its key observation — simultaneous multi-row
activation — "could also be leveraged to generate true random numbers",
the QUAC-TRNG idea [37]: activate cells holding *conflicting* values so
the bitlines equalize exactly at VDD/2, and the sense amplifier's
resolution is decided by thermal noise.  Each activation then yields one
metastable — i.e., random — bit per column.

The generator below does exactly that with the library's in-subarray
4-row activation: two rows of each polarity (a balanced "conflict
pattern"), one reduced-timing double activation per batch of
``row_bits`` raw bits.  Raw bits are biased by per-column sense-
amplifier offsets, so a von Neumann corrector is applied by default —
the same post-processing QUAC-TRNG uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..bender.host import DramBenderHost
from ..errors import UnsupportedOperationError
from .layout import bank_rows
from .sequences import trng_program

__all__ = ["DramTrng", "TrngQuality", "von_neumann_extract", "assess_quality"]


def von_neumann_extract(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Von Neumann debiasing over *paired draws of the same source*.

    The corrector's guarantee needs both bits of a pair to come from the
    same (possibly biased, independent-draw) source — here, the same
    DRAM column across two consecutive activations.  01 -> 0, 10 -> 1,
    00/11 discarded; at least three quarters of the raw throughput is
    spent.
    """
    first = np.asarray(first, dtype=np.uint8).reshape(-1)
    second = np.asarray(second, dtype=np.uint8).reshape(-1)
    if first.shape != second.shape:
        raise ValueError("paired draws must have equal shapes")
    keep = first != second
    return second[keep]


@dataclass(frozen=True)
class TrngQuality:
    """Simple statistical health figures for a bit stream."""

    bit_count: int
    ones_fraction: float
    #: Longest run of identical bits.
    longest_run: int
    #: Lag-1 serial correlation coefficient.
    serial_correlation: float

    @property
    def looks_random(self) -> bool:
        """Loose sanity band (not a NIST certification)."""
        if self.bit_count < 128:
            return False
        sigma = 0.5 / (self.bit_count ** 0.5)
        expected_run = np.log2(self.bit_count) + 4
        return (
            abs(self.ones_fraction - 0.5) < 6 * sigma
            and self.longest_run <= 3 * expected_run
            and abs(self.serial_correlation) < 0.1
        )


def assess_quality(bits: np.ndarray) -> TrngQuality:
    """Compute :class:`TrngQuality` for a bit stream."""
    bits = np.asarray(bits, dtype=np.int8).reshape(-1)
    if bits.size == 0:
        return TrngQuality(0, 0.0, 0, 0.0)
    ones = float(bits.mean())
    changes = np.flatnonzero(np.diff(bits))
    if changes.size == 0:
        longest = int(bits.size)
    else:
        run_edges = np.concatenate([[-1], changes, [bits.size - 1]])
        longest = int(np.max(np.diff(run_edges)))
    if bits.size > 1 and bits.std() > 0:
        serial = float(np.corrcoef(bits[:-1], bits[1:])[0, 1])
    else:
        serial = 1.0
    return TrngQuality(
        bit_count=int(bits.size),
        ones_fraction=ones,
        longest_run=longest,
        serial_correlation=serial,
    )


class DramTrng:
    """True random number generator on one subarray's 4-row activation."""

    def __init__(
        self,
        host: DramBenderHost,
        bank: int = 0,
        subarray: int = 0,
        block_local_row: int = 0,
        debias: bool = True,
    ):
        geometry = host.module.config.geometry
        if block_local_row % 4:
            raise ValueError("block_local_row must be 4-aligned")
        row_a = geometry.bank_row(subarray, block_local_row)
        row_b = geometry.bank_row(subarray, block_local_row + 3)
        pattern = host.module.decoder.same_subarray_pattern(bank, row_a, row_b)
        if len(pattern.rows_first) != 4:
            raise UnsupportedOperationError(
                "the chip does not produce a 4-row in-subarray activation "
                "at this address block"
            )
        self.host = host
        self.bank = bank
        self.debias = debias
        self.rows = bank_rows(geometry, subarray, pattern.rows_first)
        self._row_a, self._row_b = row_a, row_b
        self.raw_bits_generated = 0

    def _conflict_batch(self) -> np.ndarray:
        """One activation: initialize 2+2 conflicting rows, resolve."""
        host = self.host
        width = host.module.row_bits
        ones = np.ones(width, dtype=np.uint8)
        zeros = np.zeros(width, dtype=np.uint8)
        for row, bits in zip(self.rows, (ones, zeros, ones, zeros)):
            host.fill_row(self.bank, row, bits)
        host.run(
            trng_program(host.timing, self.bank, self._row_a, self._row_b)
        )
        bits = host.peek_row(self.bank, self.rows[0])
        self.raw_bits_generated += bits.size
        return bits

    def raw_bits(self, count: int) -> np.ndarray:
        """``count`` raw (possibly biased) bits."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        batches = []
        produced = 0
        while produced < count:
            batch = self._conflict_batch()
            batches.append(batch)
            produced += batch.size
        return np.concatenate(batches)[:count]

    def random_bits(self, count: int) -> np.ndarray:
        """``count`` (optionally debiased) random bits."""
        if not self.debias:
            return self.raw_bits(count)
        collected = []
        produced = 0
        while produced < count:
            extracted = von_neumann_extract(
                self._conflict_batch(), self._conflict_batch()
            )
            if extracted.size:
                collected.append(extracted)
                produced += extracted.size
        return np.concatenate(collected)[:count]

    def random_bytes(self, count: int) -> bytes:
        """``count`` random bytes."""
        bits = self.random_bits(count * 8).reshape(count, 8)
        return bytes(np.packbits(bits, axis=1).reshape(-1).tolist())
