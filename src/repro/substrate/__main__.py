"""Fit and inspect surrogate tables from the command line.

Usage::

    python -m repro.substrate fit --scale smoke --seed 0 --out table.json
    python -m repro.substrate show table.json

``fit`` runs the analog reference over the (sub-sampled) Table-1 fleet
at the requested scale and writes the fitted success-probability table;
``show`` prints a table's cells.  Fits are exactly reproducible from
(scale, seed, grid).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .fit import DEFAULT_GRID, SMOKE_GRID, FitGrid, fit_surrogate
from .surrogate import SurrogateTable
from ..characterization.runner import DEFAULT, FULL, SMOKE

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}
_GRIDS = {"smoke": SMOKE_GRID, "default": DEFAULT_GRID}


def _csv_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.substrate", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser("fit", help="fit a surrogate table from analog")
    fit.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument(
        "--grid",
        choices=sorted(_GRIDS),
        default="default",
        help="base configuration grid (overridable per axis below)",
    )
    fit.add_argument(
        "--trials", type=int, default=0,
        help="override the scale's trials per (cell, temperature)",
    )
    fit.add_argument(
        "--temperatures", type=_csv_floats, default=None,
        help="comma-separated temperature grid in degC",
    )
    fit.add_argument(
        "--not-fan-ins", type=_csv_ints, default=None,
        help="comma-separated NOT destination-row counts",
    )
    fit.add_argument(
        "--logic-fan-ins", type=_csv_ints, default=None,
        help="comma-separated logic-op input counts",
    )
    fit.add_argument(
        "--batch-trials", type=int, default=0,
        help="trial engine knob for the analog runs (results identical)",
    )
    fit.add_argument("--quiet", action="store_true")
    fit.add_argument("--out", required=True, help="output table path (JSON)")

    show = commands.add_parser("show", help="print a fitted table")
    show.add_argument("table", help="table path (JSON)")

    args = parser.parse_args(argv)

    if args.command == "show":
        table = SurrogateTable.load(args.table)
        meta = ", ".join(f"{k}={v}" for k, v in sorted(table.meta.items()))
        print(f"# {meta}")
        for key, cell in table:
            spec, operation, fan_in, distance, pattern = key
            temps = " ".join(
                f"{t:g}C={p:.4f}" for t, p in sorted(cell.probabilities.items())
            )
            print(
                f"{spec:>28} {operation:>4} n={fan_in:<2} {distance:<12} "
                f"{pattern:<12} found={cell.found_rate:.2f} "
                f"rows={cell.n_rows}  {temps}"
            )
        return 0

    base = _GRIDS[args.grid]
    grid = FitGrid(
        temperatures=(
            tuple(args.temperatures) if args.temperatures else base.temperatures
        ),
        not_fan_ins=(
            tuple(args.not_fan_ins)
            if args.not_fan_ins is not None
            else base.not_fan_ins
        ),
        logic_fan_ins=(
            tuple(args.logic_fan_ins)
            if args.logic_fan_ins is not None
            else base.logic_fan_ins
        ),
        logic_ops=base.logic_ops,
        patterns=base.patterns,
    )

    scale = _SCALES[args.scale].with_batch_trials(args.batch_trials)
    if args.trials:
        scale = scale.with_trials(args.trials)

    def progress(label: str) -> None:
        if not args.quiet:
            print(f"  fitting {label}", file=sys.stderr)

    # staticcheck: ignore[DET203] progress timer for the console, not a result
    start = time.time()
    table = fit_surrogate(scale, args.seed, grid=grid, progress=progress)
    table.save(args.out)
    elapsed = time.time() - start  # staticcheck: ignore[DET203]
    print(
        f"fitted {len(table)} cells at scale {scale.name} "
        f"(seed {args.seed}) -> {args.out} [{elapsed:.1f}s]"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
