"""The multi-backend substrate interface (`SubstrateBackend`).

Every success rate in the repository is ultimately a map from
*(operation, fan-in, distance class, temperature, data pattern)* to a
per-cell success probability.  The analog-behavioral simulator
(:mod:`repro.dram`) computes that map from first principles — charge
sharing, sense-amplifier fights, thermal noise — and is therefore the
slowest, most detailed model in the tree.  Fleet-scale and service
workloads only need the map itself, served fast.

:class:`SubstrateBackend` is the interface cut that makes the model
swappable without touching callers (the one-memory-API / pluggable-
backend split of Ramulator-style simulators).  Three implementations
ship:

* :class:`~repro.substrate.analog.AnalogBackend` — the existing analog
  model, bit-identical to calling :mod:`repro.core.success` directly.
  This is the *reference*: every other backend is validated against it.
* :class:`~repro.substrate.surrogate.SurrogateBackend` — fitted
  success-probability tables (``python -m repro.substrate fit``) with
  deterministic per-trial Bernoulli draws; orders of magnitude faster.
* :class:`~repro.substrate.trace.TraceBackend` — record/replay of
  backend calls for tests: record against the analog reference, replay
  byte-identically, with strict-mode mismatch errors.

Backends are selected by *specification string* (picklable, so sweep
work objects can carry them across process-pool boundaries)::

    analog                  the analog-behavioral reference model
    surrogate:PATH          surrogate backend serving the table at PATH
    trace-record:PATH       record every call (against analog) to PATH
    trace-replay:PATH       replay the trace at PATH, strict
    trace-verify            analog + record/replay round-trip self-check

:func:`resolve_backend` parses these, with a process-local cache so a
surrogate table is loaded (and a recording accumulates) once per
process.  Tests can install arbitrary backend objects under custom spec
strings with :func:`register_backend`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Optional, Protocol, Tuple

import numpy as np

from ..errors import SubstrateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from ..bender.host import DramBenderHost
    from ..characterization.runner import SweepTarget
    from ..core.success import LogicPairResult, SuccessResult
    from ..dram.decoder import ActivationKind

__all__ = [
    "SubstrateBackend",
    "NotMeasurementLike",
    "LogicMeasurementLike",
    "REGION_NAMES",
    "distance_label",
    "resolve_backend",
    "register_backend",
    "unregister_backend",
    "reset_backend_cache",
]

#: Close/Middle/Far region names, indexed like
#: :meth:`repro.dram.bank.Bank.pattern_regions` (Figs. 9 and 17).
REGION_NAMES: Tuple[str, str, str] = ("close", "middle", "far")

#: Distance-class label of an unconstrained measurement (the pattern
#: search picked whatever region pair it found first).
ANY_DISTANCE = "any"


def distance_label(regions: Optional[Tuple[int, int]]) -> str:
    """The distance-class key for a region pair, ``"any"`` when free.

    >>> distance_label(None)
    'any'
    >>> distance_label((1, 2))
    'middle-far'
    """
    if regions is None:
        return ANY_DISTANCE
    first, last = regions
    return f"{REGION_NAMES[int(first)]}-{REGION_NAMES[int(last)]}"


class NotMeasurementLike(Protocol):
    """What a backend's NOT measurement must expose.

    :class:`repro.core.success.NotSuccessMeasurement` is the reference
    implementation; surrogate and trace measurements mimic its surface.
    """

    @property
    def n_destination_rows(self) -> int: ...

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_trials: int = 0,
    ) -> "SuccessResult": ...


class LogicMeasurementLike(Protocol):
    """What a backend's N-input logic measurement must expose."""

    @property
    def n_inputs(self) -> int: ...

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
        batch_trials: int = 0,
    ) -> "LogicPairResult": ...


class SubstrateBackend(abc.ABC):
    """One engine serving per-cell success-rate measurements.

    The two ``find_*`` methods build measurements on a live
    :class:`~repro.characterization.runner.SweepTarget` (the sweep
    drivers' entry point; returning ``None`` reproduces the paper's
    capability gaps), and the two ``*_at`` methods build measurements on
    explicit row addresses (the unit-test entry point).  Measurements
    read the *current* module temperature at ``run()`` time, so callers
    keep setting temperature through the testing infrastructure exactly
    as they do against the analog model.
    """

    #: Short name used in result metadata and progress reports.
    name: str = "substrate"

    # -- sweep-level construction (capability gaps -> None) --------------

    @abc.abstractmethod
    def find_not_measurement(
        self,
        target: "SweepTarget",
        n_destination: int,
        kind: Optional["ActivationKind"] = None,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[NotMeasurementLike]:
        """A NOT measurement with ``n_destination`` destination rows,
        or ``None`` when this target cannot produce the pattern."""

    @abc.abstractmethod
    def find_logic_measurement(
        self,
        target: "SweepTarget",
        base_op: str,
        n_inputs: int,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[LogicMeasurementLike]:
        """An N-input AND/OR measurement (both terminals), or ``None``."""

    # -- direct-address construction (unit tests, examples) ---------------

    @abc.abstractmethod
    def not_measurement_at(
        self, host: "DramBenderHost", bank: int, src_row: int, dst_row: int
    ) -> NotMeasurementLike:
        """A NOT measurement on an explicit (src, dst) address pair."""

    @abc.abstractmethod
    def logic_measurement_at(
        self,
        host: "DramBenderHost",
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ) -> LogicMeasurementLike:
        """A logic measurement on an explicit (ref, com) address pair."""

    # -- probability service (reliability-aware placement) ----------------

    def probability(
        self,
        operation: str,
        fan_in: int,
        temperature_c: float = 50.0,
        pattern: str = "random",
        spec_name: Optional[str] = None,
        distance: str = ANY_DISTANCE,
    ) -> Optional[float]:
        """Estimated per-cell success probability, or ``None`` if this
        backend cannot answer without running a measurement (the analog
        model can't; the surrogate serves its fitted table)."""
        return None

    # -- lifecycle ---------------------------------------------------------

    def finalize(self) -> None:
        """Flush any accumulated state (trace recordings) to disk."""


# ----------------------------------------------------------------------
# backend specification strings
# ----------------------------------------------------------------------

#: Test-installed backends, keyed by spec string (process-local).
_REGISTRY: Dict[str, SubstrateBackend] = {}

#: Parsed-spec cache so each process loads a surrogate table (or
#: accumulates a trace recording) exactly once per spec string.
_CACHE: Dict[str, SubstrateBackend] = {}


def register_backend(spec: str, backend: SubstrateBackend) -> str:
    """Install ``backend`` under ``spec`` for this process.

    Registered backends win over spec parsing; use for test doubles and
    for programmatically-constructed backends that have no file path.
    Registered objects do not cross process-pool boundaries — sweeps
    using them must run with ``jobs=1``.
    """
    _REGISTRY[spec] = backend
    return spec


def unregister_backend(spec: str) -> None:
    """Remove a registered backend (no-op if absent)."""
    _REGISTRY.pop(spec, None)


def reset_backend_cache() -> None:
    """Drop all cached parsed backends (tests that re-fit tables)."""
    _CACHE.clear()


def resolve_backend(spec: Any) -> SubstrateBackend:
    """Resolve a backend from a spec string (or pass an instance through).

    See the module docstring for the spec grammar.  Parsing is cached
    per process; repeated resolutions of one spec return one instance.
    """
    if isinstance(spec, SubstrateBackend):
        return spec
    if not isinstance(spec, str):
        raise SubstrateError(
            f"backend spec must be a string or SubstrateBackend, got {spec!r}"
        )
    if spec in _REGISTRY:
        return _REGISTRY[spec]
    if spec in _CACHE:
        return _CACHE[spec]
    backend = _parse_spec(spec)
    _CACHE[spec] = backend
    return backend


def _parse_spec(spec: str) -> SubstrateBackend:
    from .analog import AnalogBackend
    from .surrogate import SurrogateBackend, SurrogateTable
    from .trace import TraceBackend

    if spec == "analog":
        return AnalogBackend()
    if spec == "trace-verify":
        return TraceBackend.verify()
    kind, _separator, path = spec.partition(":")
    if not path:
        raise SubstrateError(
            f"unknown backend spec {spec!r}; expected 'analog', "
            "'surrogate:PATH', 'trace-record:PATH', 'trace-replay:PATH', "
            "or 'trace-verify'"
        )
    if kind == "surrogate":
        return SurrogateBackend(SurrogateTable.load(path))
    if kind == "trace-record":
        return TraceBackend.record(path)
    if kind == "trace-replay":
        return TraceBackend.replay(path)
    raise SubstrateError(f"unknown backend spec {spec!r}")
