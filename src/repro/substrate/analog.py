"""The analog-behavioral reference backend.

:class:`AnalogBackend` is a thin pass-through to the existing measurement
stack (:mod:`repro.core.success` construction via
:mod:`repro.characterization.runner`).  It exists so every sweep caller
goes through the one :class:`~repro.substrate.base.SubstrateBackend`
interface; when the spec is ``"analog"`` the calls bottom out in exactly
the code paths that ran before the substrate package existed, so results
are bit-identical to historical runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..core.success import LogicSuccessMeasurement, NotSuccessMeasurement
from .base import SubstrateBackend

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..bender.host import DramBenderHost
    from ..characterization.runner import SweepTarget
    from ..dram.decoder import ActivationKind

__all__ = ["AnalogBackend"]


class AnalogBackend(SubstrateBackend):
    """Serve measurements straight from the analog model (the reference).

    ``regions`` constraints are translated to the same
    :func:`~repro.characterization.runner.region_predicate` the sweep
    drivers used before backends existed, so the discovered address
    pairs — and therefore every measured bit — are unchanged.
    """

    name = "analog"

    def find_not_measurement(
        self,
        target: "SweepTarget",
        n_destination: int,
        kind: Optional["ActivationKind"] = None,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[NotSuccessMeasurement]:
        from ..characterization.runner import find_not_measurement, region_predicate

        predicate = None
        if regions is not None:
            predicate = region_predicate(target, *regions)
        return find_not_measurement(
            target, n_destination, kind=kind, predicate=predicate
        )

    def find_logic_measurement(
        self,
        target: "SweepTarget",
        base_op: str,
        n_inputs: int,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[LogicSuccessMeasurement]:
        from ..characterization.runner import find_logic_measurement, region_predicate

        predicate = None
        if regions is not None:
            predicate = region_predicate(target, *regions)
        return find_logic_measurement(
            target, base_op, n_inputs, predicate=predicate
        )

    def not_measurement_at(
        self, host: "DramBenderHost", bank: int, src_row: int, dst_row: int
    ) -> NotSuccessMeasurement:
        return NotSuccessMeasurement(host, bank, src_row, dst_row)

    def logic_measurement_at(
        self,
        host: "DramBenderHost",
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ) -> LogicSuccessMeasurement:
        return LogicSuccessMeasurement(host, bank, ref_row, com_row, base_op=base_op)
