"""Record/replay of substrate calls (:class:`TraceBackend`).

Record mode wraps the analog reference: every measurement construction
and every ``run()`` delegates to the real analog path — so a recording
sweep is bit-identical to a plain analog sweep — while the call's key
and its exact result are appended to an in-memory event log, flushed to
JSON by :meth:`TraceBackend.finalize`.

Replay mode serves the log back.  Events are queued FIFO per *call key*
(target label or row addresses, operation configuration, trial count,
data-pattern mode, the module temperature at call time, and a digest of
the incoming RNG state — so replaying under a different sweep seed
fails rather than serving another workload's numbers), and replay is
strict: a call whose key was never recorded, or whose queue is
exhausted, raises :class:`~repro.errors.TraceMismatchError` instead of
guessing.  Counts round-trip through JSON as exact integers, so a
replayed :class:`~repro.core.success.SuccessResult` is byte-identical
to the recorded one.

Verify mode (``"trace-verify"``) records and immediately replays each
call through the JSON codec, asserting byte-identity — the conftest
``backend`` fixture uses it to exercise the trace machinery under the
whole existing success-rate suite without touching disk.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..atomicio import atomic_write_json
from ..core.success import LogicPairResult, SuccessResult
from ..errors import TraceMismatchError
from .analog import AnalogBackend
from .base import (
    LogicMeasurementLike,
    NotMeasurementLike,
    SubstrateBackend,
    distance_label,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..bender.host import DramBenderHost
    from ..characterization.runner import SweepTarget
    from ..dram.decoder import ActivationKind

__all__ = ["TraceBackend", "encode_result", "decode_result"]

_FORMAT = 1

#: Trace backend operating modes.
_RECORD, _REPLAY, _VERIFY = "record", "replay", "verify"


def encode_result(result: SuccessResult) -> Dict[str, Any]:
    """JSON-safe encoding of a :class:`SuccessResult`, exact."""
    return {
        "counts": result.success_counts.tolist(),
        "dtype": str(result.success_counts.dtype),
        "trials": result.trials,
        "metadata": dict(result.metadata),
    }


def decode_result(payload: Dict[str, Any]) -> SuccessResult:
    """Inverse of :func:`encode_result`; counts come back bit-exact."""
    counts = np.array(payload["counts"], dtype=np.dtype(payload["dtype"]))
    if counts.ndim == 1:  # a single-row measurement serialized flat
        counts = counts.reshape(1, -1)
    return SuccessResult(
        success_counts=counts,
        trials=int(payload["trials"]),
        metadata=dict(payload["metadata"]),
    )


def _results_equal(a: SuccessResult, b: SuccessResult) -> bool:
    return (
        a.trials == b.trials
        and a.metadata == b.metadata
        and a.success_counts.dtype == b.success_counts.dtype
        and a.success_counts.shape == b.success_counts.shape
        and bool(np.array_equal(a.success_counts, b.success_counts))
    )


CallKey = Tuple[str, ...]


def _temperature_key(host: "DramBenderHost") -> str:
    return repr(float(host.module.temperature_c))


def _rng_key(rng: np.random.Generator) -> str:
    """Digest of the generator's entry state.

    Part of every run's call key, so a replay under a different seed —
    which would silently serve another workload's numbers — raises
    :class:`TraceMismatchError` instead.  The state is hashed before
    any draw, so serial/batched/pooled execution (which consume the
    stream differently downstream) key identically.
    """
    state = json.dumps(rng.bit_generator.state, sort_keys=True, default=repr)
    return hashlib.sha256(state.encode("utf-8")).hexdigest()[:16]


class _EventLog:
    """FIFO queues of recorded events, keyed by call key."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._queues: Dict[CallKey, Deque[Dict[str, Any]]] = {}

    def append(self, key: CallKey, payload: Dict[str, Any]) -> None:
        event = {"key": list(key), **payload}
        self.events.append(event)
        self._queues.setdefault(key, deque()).append(event)

    def pop(self, key: CallKey) -> Dict[str, Any]:
        queue = self._queues.get(key)
        if not queue:
            raise TraceMismatchError(
                f"trace replay: no recorded event (left) for call {key!r}; "
                "the replayed workload diverged from the recording"
            )
        return queue.popleft()

    def to_payload(self) -> Dict[str, Any]:
        return {"format": _FORMAT, "events": self.events}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "_EventLog":
        if payload.get("format") != _FORMAT:
            raise TraceMismatchError(
                f"unsupported trace format {payload.get('format')!r}"
            )
        log = cls()
        for event in payload.get("events", []):
            log.append(tuple(event["key"]), {k: v for k, v in event.items() if k != "key"})
        return log


class _RecordingNotMeasurement:
    """Delegate to the analog measurement; log construction and runs."""

    def __init__(
        self, backend: "TraceBackend", key: CallKey, inner: NotMeasurementLike,
        host: "DramBenderHost",
    ) -> None:
        self._backend = backend
        self._key = key
        self._inner = inner
        self._host = host

    @property
    def n_destination_rows(self) -> int:
        return self._inner.n_destination_rows

    def run(
        self, trials: int, rng: np.random.Generator, batch_trials: int = 0
    ) -> SuccessResult:
        key = self._key + (
            f"trials={trials}", f"T={_temperature_key(self._host)}",
            f"rng={_rng_key(rng)}",
        )
        result = self._inner.run(trials, rng, batch_trials=batch_trials)
        self._backend._log.append(
            key, {"type": "run-not", "result": encode_result(result)}
        )
        return self._backend._after_record(key, result)


class _RecordingLogicMeasurement:
    """Delegate to the analog measurement; log construction and runs."""

    def __init__(
        self, backend: "TraceBackend", key: CallKey, inner: LogicMeasurementLike,
        host: "DramBenderHost",
    ) -> None:
        self._backend = backend
        self._key = key
        self._inner = inner
        self._host = host

    @property
    def n_inputs(self) -> int:
        return self._inner.n_inputs

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
        batch_trials: int = 0,
    ) -> LogicPairResult:
        key = self._key + (
            f"trials={trials}", f"mode={mode}", f"ones={ones_count}",
            f"T={_temperature_key(self._host)}", f"rng={_rng_key(rng)}",
        )
        pair = self._inner.run(
            trials, rng, mode=mode, ones_count=ones_count,
            batch_trials=batch_trials,
        )
        self._backend._log.append(
            key,
            {
                "type": "run-logic",
                "primary": encode_result(pair.primary),
                "complement": encode_result(pair.complement),
            },
        )
        return self._backend._after_record_pair(key, pair)


class _ReplayNotMeasurement:
    """Serve recorded NOT runs back, strictly."""

    def __init__(
        self, backend: "TraceBackend", key: CallKey, n_rows: int,
        host: "DramBenderHost",
    ) -> None:
        self._backend = backend
        self._key = key
        self._n_rows = n_rows
        self._host = host

    @property
    def n_destination_rows(self) -> int:
        return self._n_rows

    def run(
        self, trials: int, rng: np.random.Generator, batch_trials: int = 0
    ) -> SuccessResult:
        key = self._key + (
            f"trials={trials}", f"T={_temperature_key(self._host)}",
            f"rng={_rng_key(rng)}",
        )
        event = self._backend._log.pop(key)
        if event.get("type") != "run-not":
            raise TraceMismatchError(
                f"trace replay: event type {event.get('type')!r} where a "
                f"NOT run was expected for call {key!r}"
            )
        return decode_result(event["result"])


class _ReplayLogicMeasurement:
    """Serve recorded logic runs back, strictly."""

    def __init__(
        self, backend: "TraceBackend", key: CallKey, n_inputs: int,
        host: "DramBenderHost",
    ) -> None:
        self._backend = backend
        self._key = key
        self._n_inputs = n_inputs
        self._host = host

    @property
    def n_inputs(self) -> int:
        return self._n_inputs

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
        batch_trials: int = 0,
    ) -> LogicPairResult:
        key = self._key + (
            f"trials={trials}", f"mode={mode}", f"ones={ones_count}",
            f"T={_temperature_key(self._host)}", f"rng={_rng_key(rng)}",
        )
        event = self._backend._log.pop(key)
        if event.get("type") != "run-logic":
            raise TraceMismatchError(
                f"trace replay: event type {event.get('type')!r} where a "
                f"logic run was expected for call {key!r}"
            )
        return LogicPairResult(
            primary=decode_result(event["primary"]),
            complement=decode_result(event["complement"]),
        )


class TraceBackend(SubstrateBackend):
    """Record-replay backend; see the module docstring.

    Construct through the classmethods :meth:`record`, :meth:`replay`,
    and :meth:`verify` (or the ``trace-record:PATH`` /
    ``trace-replay:PATH`` / ``trace-verify`` spec strings).
    """

    name = "trace"

    def __init__(self, mode: str, path: Optional[str], log: _EventLog) -> None:
        self._mode = mode
        self._path = path
        self._log = log
        self._reference = AnalogBackend()

    @classmethod
    def record(cls, path: str) -> "TraceBackend":
        return cls(_RECORD, path, _EventLog())

    @classmethod
    def replay(cls, path: str) -> "TraceBackend":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise TraceMismatchError(
                f"cannot read trace {path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise TraceMismatchError(
                f"trace {path!r} is not valid JSON: {error}"
            ) from error
        return cls(_REPLAY, path, _EventLog.from_payload(payload))

    @classmethod
    def verify(cls) -> "TraceBackend":
        """Record, and round-trip every run through the JSON codec,
        asserting byte-identity on the spot."""
        return cls(_VERIFY, None, _EventLog())

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def recording(self) -> bool:
        return self._mode in (_RECORD, _VERIFY)

    # -- verify-mode round trips -------------------------------------------

    def _codec_check(self, key: CallKey, result: SuccessResult) -> SuccessResult:
        replayed = decode_result(
            json.loads(json.dumps(encode_result(result)))
        )
        if not _results_equal(result, replayed):
            raise TraceMismatchError(
                f"trace codec round trip diverged for call {key!r}"
            )
        return replayed

    def _after_record(self, key: CallKey, result: SuccessResult) -> SuccessResult:
        if self._mode == _VERIFY:
            return self._codec_check(key, result)
        return result

    def _after_record_pair(self, key: CallKey, pair: LogicPairResult) -> LogicPairResult:
        if self._mode == _VERIFY:
            return LogicPairResult(
                primary=self._codec_check(key, pair.primary),
                complement=self._codec_check(key, pair.complement),
            )
        return pair

    # -- construction ------------------------------------------------------

    def find_not_measurement(
        self,
        target: "SweepTarget",
        n_destination: int,
        kind: Optional["ActivationKind"] = None,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[NotMeasurementLike]:
        key: CallKey = (
            "find-not", target.label(), f"n={n_destination}",
            f"kind={getattr(kind, 'value', None)}", distance_label(regions),
        )
        host = target.infra.host
        if self.recording:
            inner = self._reference.find_not_measurement(
                target, n_destination, kind=kind, regions=regions
            )
            self._log.append(
                key,
                {
                    "type": "find-not",
                    "found": inner is not None,
                    "n_rows": inner.n_destination_rows if inner else 0,
                },
            )
            if inner is None:
                return None
            return _RecordingNotMeasurement(self, key, inner, host)
        event = self._log.pop(key)
        if not event.get("found"):
            return None
        return _ReplayNotMeasurement(self, key, int(event["n_rows"]), host)

    def find_logic_measurement(
        self,
        target: "SweepTarget",
        base_op: str,
        n_inputs: int,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[LogicMeasurementLike]:
        key: CallKey = (
            "find-logic", target.label(), base_op, f"n={n_inputs}",
            distance_label(regions),
        )
        host = target.infra.host
        if self.recording:
            inner = self._reference.find_logic_measurement(
                target, base_op, n_inputs, regions=regions
            )
            self._log.append(
                key,
                {
                    "type": "find-logic",
                    "found": inner is not None,
                    "n_inputs": inner.n_inputs if inner else 0,
                },
            )
            if inner is None:
                return None
            return _RecordingLogicMeasurement(self, key, inner, host)
        event = self._log.pop(key)
        if not event.get("found"):
            return None
        return _ReplayLogicMeasurement(self, key, int(event["n_inputs"]), host)

    def not_measurement_at(
        self, host: "DramBenderHost", bank: int, src_row: int, dst_row: int
    ) -> NotMeasurementLike:
        key: CallKey = (
            "not-at", f"bank={bank}", f"src={src_row}", f"dst={dst_row}"
        )
        if self.recording:
            inner = self._reference.not_measurement_at(host, bank, src_row, dst_row)
            self._log.append(
                key, {"type": "find-not", "found": True,
                      "n_rows": inner.n_destination_rows},
            )
            return _RecordingNotMeasurement(self, key, inner, host)
        event = self._log.pop(key)
        return _ReplayNotMeasurement(self, key, int(event["n_rows"]), host)

    def logic_measurement_at(
        self,
        host: "DramBenderHost",
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ) -> LogicMeasurementLike:
        key: CallKey = (
            "logic-at", f"bank={bank}", f"ref={ref_row}", f"com={com_row}",
            base_op,
        )
        if self.recording:
            inner = self._reference.logic_measurement_at(
                host, bank, ref_row, com_row, base_op=base_op
            )
            self._log.append(
                key,
                {"type": "find-logic", "found": True, "n_inputs": inner.n_inputs},
            )
            return _RecordingLogicMeasurement(self, key, inner, host)
        event = self._log.pop(key)
        return _ReplayLogicMeasurement(self, key, int(event.get("n_inputs", 0)), host)

    # -- lifecycle ---------------------------------------------------------

    def finalize(self) -> None:
        if self._mode == _RECORD and self._path is not None:
            atomic_write_json(self._path, self._log.to_payload(), indent=None)
