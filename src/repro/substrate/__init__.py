"""Pluggable measurement backends (:class:`SubstrateBackend`).

One interface, three engines:

* ``analog`` — the analog-behavioral reference model (the default;
  bit-identical to the pre-substrate code paths).
* ``surrogate:PATH`` — fitted success-probability tables, fast enough
  for fleet-scale sweeps (fit with ``python -m repro.substrate fit``).
* ``trace-record:PATH`` / ``trace-replay:PATH`` / ``trace-verify`` —
  record/replay of backend calls for byte-identical test fixtures.

See :mod:`repro.substrate.base` for the protocol and the backend
specification-string grammar.
"""

from .analog import AnalogBackend
from .base import (
    ANY_DISTANCE,
    REGION_NAMES,
    LogicMeasurementLike,
    NotMeasurementLike,
    SubstrateBackend,
    distance_label,
    register_backend,
    reset_backend_cache,
    resolve_backend,
    unregister_backend,
)
from .fit import DEFAULT_GRID, SMOKE_GRID, FitGrid, fit_surrogate
from .surrogate import (
    SurrogateBackend,
    SurrogateTable,
    TableCell,
    pattern_key,
    sample_success_counts,
)
from .trace import TraceBackend, decode_result, encode_result

__all__ = [
    "SubstrateBackend",
    "AnalogBackend",
    "SurrogateBackend",
    "SurrogateTable",
    "TableCell",
    "TraceBackend",
    "encode_result",
    "decode_result",
    "NotMeasurementLike",
    "LogicMeasurementLike",
    "FitGrid",
    "DEFAULT_GRID",
    "SMOKE_GRID",
    "fit_surrogate",
    "pattern_key",
    "sample_success_counts",
    "distance_label",
    "REGION_NAMES",
    "ANY_DISTANCE",
    "resolve_backend",
    "register_backend",
    "unregister_backend",
    "reset_backend_cache",
]
