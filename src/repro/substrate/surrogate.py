"""The fitted success-probability surrogate backend.

The paper's characterization reduces to a map from *(operation, fan-in,
distance class, temperature, data pattern)* to a per-cell success
probability.  :class:`SurrogateTable` stores that map — fitted from the
analog reference by ``python -m repro.substrate fit`` — and
:class:`SurrogateBackend` serves measurements from it: each trial is one
deterministic Bernoulli draw per cell from the caller-supplied
counter-keyed RNG substream, so a surrogate sweep is exactly
reproducible from its seed while skipping every charge-sharing
evaluation.

Lookups fall back along an explicit chain — exact spec and distance
class, then the spec's ``any``-distance cell, then the fleet-wide
aggregate — and raise :class:`~repro.errors.SurrogateTableError` when no
cell matches, rather than inventing a probability.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..atomicio import atomic_write_json
from ..core.layout import chip_shared_columns
from ..core.success import LogicPairResult, SuccessResult
from ..dram.config import ActivationSupport
from ..dram.decoder import ActivationKind
from ..errors import SubstrateError, SurrogateTableError
from .base import ANY_DISTANCE, SubstrateBackend, distance_label

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..bender.host import DramBenderHost
    from ..characterization.runner import SweepTarget
    from ..dram.config import ChipSpec

__all__ = [
    "SurrogateTable",
    "SurrogateBackend",
    "TableCell",
    "pattern_key",
    "sample_success_counts",
    "not_capability",
    "logic_capability",
]

#: Spec-name wildcard under which fleet-wide aggregate cells are stored.
AGGREGATE_SPEC = "*"

#: Trials are sampled in fixed blocks of this many draws so the RNG
#: consumption order never depends on the caller's ``batch_trials`` knob.
_SAMPLE_BLOCK = 1024


def pattern_key(mode: str, ones_count: Optional[int] = None) -> str:
    """The table's data-pattern key for a measurement mode.

    >>> pattern_key("random")
    'random'
    >>> pattern_key("ones_count", 3)
    'ones_count=3'
    """
    if mode == "ones_count":
        if ones_count is None:
            raise ValueError("ones_count mode needs an explicit count")
        return f"ones_count={ones_count}"
    return mode


def sample_success_counts(
    rng: np.random.Generator,
    probability: float,
    trials: int,
    n_rows: int,
    n_cols: int,
) -> np.ndarray:
    """Per-cell success counts from ``trials`` Bernoulli draws per cell.

    Each trial consumes one uniform per cell, in a fixed block order, so
    the counts are a pure function of (rng state, probability, shape) —
    the surrogate's analogue of the analog engine's bit-identical
    serial/batched guarantee.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    counts = np.zeros((n_rows, n_cols), dtype=np.int64)
    remaining = trials
    while remaining > 0:
        block = min(_SAMPLE_BLOCK, remaining)
        draws = rng.random((block, n_rows, n_cols))
        counts += (draws < probability).sum(axis=0)
        remaining -= block
    return counts


@dataclass
class TableCell:
    """One fitted (spec, operation, fan-in, distance, pattern) cell."""

    #: Mean per-cell success probability at each fitted temperature.
    probabilities: Dict[float, float] = field(default_factory=dict)
    #: Fraction of capability-eligible targets where the pattern search
    #: actually found an address pair (the paper's per-module gaps).
    found_rate: float = 1.0
    #: Destination/terminal row count of the measurements behind this cell.
    n_rows: int = 1

    def probability_at(self, temperature_c: float) -> float:
        """Linear interpolation over the fitted temperature grid, clamped
        at both ends."""
        if not self.probabilities:
            raise SurrogateTableError("cell has no fitted temperatures")
        temps = sorted(self.probabilities)
        values = [self.probabilities[t] for t in temps]
        return float(
            np.interp(float(temperature_c), temps, values)
        )


Key = Tuple[str, str, int, str, str]


class SurrogateTable:
    """The fitted probability map, with JSON persistence.

    Keys are ``(spec_name, operation, fan_in, distance, pattern)``;
    ``spec_name`` ``"*"`` holds fleet-wide aggregates and ``distance``
    ``"any"`` holds distance-unconstrained fits.
    """

    FORMAT = 1

    def __init__(self, meta: Optional[Dict[str, object]] = None) -> None:
        self.meta: Dict[str, object] = dict(meta or {})
        self._cells: Dict[Key, TableCell] = {}

    # -- construction (fitting) -------------------------------------------

    def cell(self, key: Key) -> TableCell:
        """The cell for ``key``, created empty on first access."""
        if key not in self._cells:
            self._cells[key] = TableCell()
        return self._cells[key]

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: Key) -> bool:
        return key in self._cells

    def __iter__(self) -> Iterator[Tuple[Key, TableCell]]:
        return iter(sorted(self._cells.items()))

    # -- lookup ------------------------------------------------------------

    def _candidates(
        self, spec_name: str, operation: str, fan_in: int, distance: str, pattern: str
    ) -> List[Key]:
        """The fallback chain: exact spec and distance first, then the
        spec's any-distance cell, then the fleet aggregates, and for
        constant-operand patterns finally the random-pattern cells."""
        patterns = [pattern] if pattern == "random" else [pattern, "random"]
        keys: List[Key] = []
        for pat in patterns:
            for spec in (spec_name, AGGREGATE_SPEC):
                for dist in (distance, ANY_DISTANCE):
                    key = (spec, operation, fan_in, dist, pat)
                    if key not in keys:
                        keys.append(key)
        return keys

    def find_cell(
        self,
        spec_name: str,
        operation: str,
        fan_in: int,
        distance: str = ANY_DISTANCE,
        pattern: str = "random",
    ) -> TableCell:
        for key in self._candidates(spec_name, operation, fan_in, distance, pattern):
            found = self._cells.get(key)
            if found is not None and found.probabilities:
                return found
        raise SurrogateTableError(
            f"no fitted cell for spec={spec_name!r} operation={operation!r} "
            f"fan_in={fan_in} distance={distance!r} pattern={pattern!r}; "
            "refit the table with this configuration in its grid"
        )

    def probability(
        self,
        spec_name: str,
        operation: str,
        fan_in: int,
        temperature_c: float,
        distance: str = ANY_DISTANCE,
        pattern: str = "random",
    ) -> float:
        return self.find_cell(
            spec_name, operation, fan_in, distance, pattern
        ).probability_at(temperature_c)

    def availability(
        self,
        spec_name: str,
        operation: str,
        fan_in: int,
        distance: str = ANY_DISTANCE,
        pattern: str = "random",
    ) -> float:
        """Fitted pattern-search success rate (1.0 when unfitted)."""
        try:
            return self.find_cell(
                spec_name, operation, fan_in, distance, pattern
            ).found_rate
        except SurrogateTableError:
            return 1.0

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        cells: Dict[str, Any] = {}
        for (spec, operation, fan_in, distance, pattern), cell in self:
            cells["|".join((spec, operation, str(fan_in), distance, pattern))] = {
                "p": {repr(float(t)): p for t, p in sorted(cell.probabilities.items())},
                "found_rate": cell.found_rate,
                "n_rows": cell.n_rows,
            }
        return {"format": self.FORMAT, "meta": self.meta, "cells": cells}

    def save(self, path: str) -> None:
        atomic_write_json(path, self.to_payload(), indent=2)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SurrogateTable":
        if payload.get("format") != cls.FORMAT:
            raise SurrogateTableError(
                f"unsupported surrogate table format {payload.get('format')!r}"
            )
        meta = payload.get("meta")
        table = cls(meta if isinstance(meta, dict) else {})
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            raise SurrogateTableError("surrogate table has no 'cells' mapping")
        for raw_key, raw_cell in cells.items():
            parts = str(raw_key).split("|")
            if len(parts) != 5:
                raise SurrogateTableError(f"malformed table key {raw_key!r}")
            spec, operation, fan_in, distance, pattern = parts
            cell = table.cell((spec, operation, int(fan_in), distance, pattern))
            cell.probabilities = {
                float(t): float(p) for t, p in raw_cell["p"].items()
            }
            cell.found_rate = float(raw_cell.get("found_rate", 1.0))
            cell.n_rows = int(raw_cell.get("n_rows", 1))
        return table

    @classmethod
    def load(cls, path: str) -> "SurrogateTable":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise SurrogateTableError(
                f"cannot read surrogate table {path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise SurrogateTableError(
                f"surrogate table {path!r} is not valid JSON: {error}"
            ) from error
        return cls.from_payload(payload)


# ----------------------------------------------------------------------
# capability gates (mirrors of the analog construction rules)
# ----------------------------------------------------------------------


def not_capability(
    chip: "ChipSpec", n_destination: int, kind: Optional[ActivationKind]
) -> Optional[Tuple[ActivationKind, int]]:
    """The (kind, simultaneous-N) a chip uses for an N-destination NOT,
    or ``None`` when the chip cannot produce it.

    This mirrors the spec-level gating of
    :func:`repro.characterization.runner.find_not_measurement` exactly —
    the surrogate must reproduce the paper's capability gaps without
    running a pattern search.
    """
    support = chip.activation_support
    if support is ActivationSupport.NONE:
        return None
    if kind is None:
        if support is ActivationSupport.SEQUENTIAL_ONLY:
            if n_destination != 1:
                return None
            kind, n = ActivationKind.SEQUENTIAL, 1
        elif n_destination in (1, 2, 4, 8, 16):
            kind, n = ActivationKind.N_TO_N, n_destination
        elif n_destination == 32:
            kind, n = ActivationKind.N_TO_2N, 16
        else:
            raise ValueError(f"unsupported destination-row count {n_destination}")
    else:
        n = n_destination if kind is not ActivationKind.N_TO_2N else n_destination // 2
    if kind is ActivationKind.N_TO_2N and not chip.supports_n_to_2n:
        return None
    if n > chip.max_simultaneous_n:
        return None
    return kind, n


def logic_capability(chip: "ChipSpec", n_inputs: int) -> bool:
    """Whether a chip can run N-input simultaneous logic at all (mirrors
    :func:`repro.characterization.runner.find_logic_measurement`)."""
    if chip.activation_support is not ActivationSupport.SIMULTANEOUS:
        return False
    return 2 <= n_inputs <= chip.max_simultaneous_n


def _shared_column_count(target: "SweepTarget") -> int:
    per_chip = chip_shared_columns(
        target.spec.chip.geometry, *target.subarray_pair
    )
    return int(per_chip.size) * target.module.chip_count


# ----------------------------------------------------------------------
# surrogate measurements
# ----------------------------------------------------------------------


class _SurrogateMeasurement:
    """Shared plumbing: probability lookup at the *current* temperature."""

    def __init__(
        self,
        table: SurrogateTable,
        spec_name: str,
        distance: str,
        n_cols: int,
        temperature_of: Callable[[], float],
    ) -> None:
        self._table = table
        self._spec_name = spec_name
        self._distance = distance
        self._n_cols = n_cols
        self._temperature_of = temperature_of

    def _probability(self, operation: str, fan_in: int, pattern: str) -> float:
        return self._table.probability(
            self._spec_name,
            operation,
            fan_in,
            self._temperature_of(),
            distance=self._distance,
            pattern=pattern,
        )


class SurrogateNotMeasurement(_SurrogateMeasurement):
    """A NOT measurement served from the table (no analog evaluation)."""

    def __init__(
        self,
        table: SurrogateTable,
        spec_name: str,
        n_destination: int,
        kind: ActivationKind,
        distance: str,
        n_rows: int,
        n_cols: int,
        temperature_of: Callable[[], float],
    ) -> None:
        super().__init__(table, spec_name, distance, n_cols, temperature_of)
        self._n_destination = n_destination
        self._kind = kind
        self._n_rows = n_rows

    @property
    def n_destination_rows(self) -> int:
        return self._n_rows

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_trials: int = 0,
    ) -> SuccessResult:
        """``batch_trials`` is accepted for interface parity and ignored:
        surrogate sampling consumes the RNG in one fixed order, so every
        engine setting is trivially bit-identical."""
        probability = self._probability("not", self._n_destination, "random")
        counts = sample_success_counts(
            rng, probability, trials, self._n_rows, self._n_cols
        )
        return SuccessResult(
            success_counts=counts,
            trials=trials,
            metadata={
                "operation": "not",
                "pattern": f"surrogate:{self._distance}",
                "kind": self._kind.value,
                "n_destination_rows": self._n_rows,
                "backend": "surrogate",
            },
        )


class SurrogateLogicMeasurement(_SurrogateMeasurement):
    """An N-input logic measurement served from the table."""

    MODES = ("random", "all01", "ones_count")

    def __init__(
        self,
        table: SurrogateTable,
        spec_name: str,
        base_op: str,
        n_inputs: int,
        distance: str,
        n_cols: int,
        temperature_of: Callable[[], float],
    ) -> None:
        if base_op not in ("and", "or"):
            raise ValueError(f"base_op must be 'and' or 'or', got {base_op!r}")
        super().__init__(table, spec_name, distance, n_cols, temperature_of)
        self._base_op = base_op
        self._n_inputs = n_inputs

    @property
    def n_inputs(self) -> int:
        return self._n_inputs

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        mode: str = "random",
        ones_count: Optional[int] = None,
        batch_trials: int = 0,
    ) -> LogicPairResult:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        if mode == "ones_count" and (
            ones_count is None or not 0 <= ones_count <= self._n_inputs
        ):
            raise ValueError(
                f"ones_count must be in [0, {self._n_inputs}] for mode 'ones_count'"
            )
        pattern = pattern_key(mode, ones_count)
        primary_name = self._base_op
        complement_name = "nand" if self._base_op == "and" else "nor"

        results: Dict[str, SuccessResult] = {}
        for name in (primary_name, complement_name):
            cell = self._table.find_cell(
                self._spec_name, name, self._n_inputs,
                distance=self._distance, pattern=pattern,
            )
            probability = cell.probability_at(self._temperature_of())
            counts = sample_success_counts(
                rng, probability, trials, cell.n_rows, self._n_cols
            )
            results[name] = SuccessResult(
                success_counts=counts,
                trials=trials,
                metadata={
                    "operation": name,
                    "n_inputs": self._n_inputs,
                    "mode": mode,
                    "ones_count": ones_count,
                    "pattern": f"surrogate:{self._distance}",
                    "backend": "surrogate",
                },
            )
        return LogicPairResult(
            primary=results[primary_name], complement=results[complement_name]
        )


# ----------------------------------------------------------------------
# the backend
# ----------------------------------------------------------------------


class SurrogateBackend(SubstrateBackend):
    """Serve measurements from a fitted :class:`SurrogateTable`.

    Capability gaps are re-derived from the chip spec (same rules as the
    analog construction path); pattern-search *availability* — whether a
    usable address pair exists on a given target — is replayed from the
    fitted found-rate with a deterministic per-target draw, so a
    surrogate sweep shows the same kind of per-module gaps the analog
    sweep does, at the same rate, reproducibly.
    """

    name = "surrogate"

    def __init__(self, table: SurrogateTable) -> None:
        self.table = table

    # -- sweep-level construction -----------------------------------------

    def _available(
        self, target: "SweepTarget", operation: str, fan_in: int, distance: str
    ) -> bool:
        rate = self.table.availability(
            target.spec.name, operation, fan_in, distance=distance
        )
        if rate >= 1.0:
            return True
        draw = target.pair_seed(
            "surrogate-availability", operation, str(fan_in), distance
        ) / float(1 << 31)
        return draw < rate

    def find_not_measurement(
        self,
        target: "SweepTarget",
        n_destination: int,
        kind: Optional[ActivationKind] = None,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[SurrogateNotMeasurement]:
        resolved = not_capability(target.spec.chip, n_destination, kind)
        if resolved is None:
            return None
        resolved_kind, _n = resolved
        distance = distance_label(regions)
        if not self._available(target, "not", n_destination, distance):
            return None
        try:
            cell = self.table.find_cell(
                target.spec.name, "not", n_destination, distance=distance
            )
        except SurrogateTableError:
            return None
        module = target.module

        def temperature_of() -> float:
            return float(module.temperature_c)

        return SurrogateNotMeasurement(
            self.table,
            target.spec.name,
            n_destination,
            resolved_kind,
            distance,
            cell.n_rows,
            _shared_column_count(target),
            temperature_of,
        )

    def find_logic_measurement(
        self,
        target: "SweepTarget",
        base_op: str,
        n_inputs: int,
        regions: Optional[Tuple[int, int]] = None,
    ) -> Optional[SurrogateLogicMeasurement]:
        if not logic_capability(target.spec.chip, n_inputs):
            return None
        distance = distance_label(regions)
        if not self._available(target, base_op, n_inputs, distance):
            return None
        try:
            self.table.find_cell(
                target.spec.name, base_op, n_inputs, distance=distance
            )
        except SurrogateTableError:
            return None
        module = target.module

        def temperature_of() -> float:
            return float(module.temperature_c)

        return SurrogateLogicMeasurement(
            self.table,
            target.spec.name,
            base_op,
            n_inputs,
            distance,
            _shared_column_count(target),
            temperature_of,
        )

    # -- direct-address construction ---------------------------------------

    def not_measurement_at(
        self, host: "DramBenderHost", bank: int, src_row: int, dst_row: int
    ) -> SurrogateNotMeasurement:
        raise SubstrateError(
            "the surrogate backend serves fleet-level cells, not explicit "
            "row addresses; use the analog or trace backend for "
            "address-level measurements"
        )

    def logic_measurement_at(
        self,
        host: "DramBenderHost",
        bank: int,
        ref_row: int,
        com_row: int,
        base_op: str = "and",
    ) -> SurrogateLogicMeasurement:
        raise SubstrateError(
            "the surrogate backend serves fleet-level cells, not explicit "
            "row addresses; use the analog or trace backend for "
            "address-level measurements"
        )

    # -- probability service -----------------------------------------------

    def probability(
        self,
        operation: str,
        fan_in: int,
        temperature_c: float = 50.0,
        pattern: str = "random",
        spec_name: Optional[str] = None,
        distance: str = ANY_DISTANCE,
    ) -> Optional[float]:
        try:
            return self.table.probability(
                spec_name or AGGREGATE_SPEC,
                operation,
                fan_in,
                temperature_c,
                distance=distance,
                pattern=pattern,
            )
        except SurrogateTableError:
            return None
