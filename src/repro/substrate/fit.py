"""Fitting surrogate tables from the analog reference model.

``python -m repro.substrate fit`` drives :func:`fit_surrogate`: iterate
the (sub-sampled) Table-1 fleet exactly as a characterization sweep
would, run the analog measurements over a grid of (operation, fan-in,
temperature, data pattern) configurations, and record the
population-weighted mean success probability of every observed cell in
a :class:`~repro.substrate.surrogate.SurrogateTable`.

Each observation lands under four keys — (spec, actual distance class),
(spec, ``any``), and the same two under the fleet-wide ``*`` aggregate —
so later lookups can match as specifically as the fitted grid allows.
Pattern-search availability (whether a target that is capability-eligible
actually yielded a usable address pair) is recorded alongside, letting
the surrogate replay the paper's per-module gaps.

Fit RNG streams hang off ``derive_seed(seed, "substrate-fit", ...)`` —
a namespace disjoint from sweep measurement streams, so equivalence
tests compare the surrogate against analog data it was *not* fitted on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..characterization.runner import (
    Scale,
    SweepTarget,
    find_logic_measurement,
    find_not_measurement,
    iter_targets,
)
from ..dram.config import Manufacturer
from ..rng import derive_seed
from .base import ANY_DISTANCE, distance_label
from .surrogate import (
    AGGREGATE_SPEC,
    Key,
    SurrogateTable,
    logic_capability,
    not_capability,
    pattern_key,
)

__all__ = ["FitGrid", "DEFAULT_GRID", "SMOKE_GRID", "fit_surrogate"]

#: All experiments run at 50 degC unless they sweep temperature (§5.2).
_BASELINE_C = 50.0


@dataclass(frozen=True)
class FitGrid:
    """The configuration grid a fit covers."""

    temperatures: Tuple[float, ...] = (50.0, 60.0, 70.0, 80.0, 90.0)
    not_fan_ins: Tuple[int, ...] = (1, 2, 4, 8, 16)
    logic_fan_ins: Tuple[int, ...] = (2, 4, 8, 16)
    logic_ops: Tuple[str, ...] = ("and", "or")
    #: Logic operand modes; ``ones_count`` entries use ``"ones_count=k"``.
    patterns: Tuple[str, ...] = ("random",)


DEFAULT_GRID = FitGrid()

#: Minimal grid for unit tests and CI smoke fits.
SMOKE_GRID = FitGrid(
    temperatures=(50.0, 70.0),
    not_fan_ins=(1, 2),
    logic_fan_ins=(2, 4),
    logic_ops=("and", "or"),
)


def _parse_pattern(pattern: str) -> Tuple[str, Optional[int]]:
    """Invert :func:`~repro.substrate.surrogate.pattern_key`."""
    if pattern.startswith("ones_count="):
        return "ones_count", int(pattern.split("=", 1)[1])
    return pattern, None


class _Accumulator:
    """Weighted per-key, per-temperature running means."""

    def __init__(self) -> None:
        self._sum: Dict[Tuple[Key, float], float] = {}
        self._weight: Dict[Tuple[Key, float], float] = {}
        self._n_rows: Dict[Key, int] = {}
        self._found: Dict[Key, float] = {}
        self._eligible: Dict[Key, float] = {}

    @staticmethod
    def _spread(key: Key) -> List[Key]:
        spec, operation, fan_in, distance, pattern = key
        keys = [key]
        for spread_spec in (spec, AGGREGATE_SPEC):
            for spread_distance in (distance, ANY_DISTANCE):
                candidate: Key = (
                    spread_spec, operation, fan_in, spread_distance, pattern
                )
                if candidate not in keys:
                    keys.append(candidate)
        return keys

    def observe(
        self, key: Key, temperature: float, mean_rate: float, weight: float,
        n_rows: int,
    ) -> None:
        for spread in self._spread(key):
            slot = (spread, temperature)
            self._sum[slot] = self._sum.get(slot, 0.0) + weight * mean_rate
            self._weight[slot] = self._weight.get(slot, 0.0) + weight
            self._n_rows[spread] = max(self._n_rows.get(spread, 0), n_rows)

    def observe_search(self, key: Key, found: bool, weight: float) -> None:
        for spread in self._spread(key):
            self._eligible[spread] = self._eligible.get(spread, 0.0) + weight
            if found:
                self._found[spread] = self._found.get(spread, 0.0) + weight

    def write_into(self, table: SurrogateTable) -> None:
        for (key, temperature), total in sorted(self._sum.items()):
            cell = table.cell(key)
            cell.probabilities[temperature] = total / self._weight[(key, temperature)]
            cell.n_rows = self._n_rows.get(key, 1)
        for key, eligible in sorted(self._eligible.items()):
            if key not in table:
                continue
            table.cell(key).found_rate = self._found.get(key, 0.0) / eligible


def _target_distance(target: SweepTarget, pattern: object) -> str:
    """Distance-class label of a discovered activation pattern."""
    bank = target.module.chips[0].bank(target.bank)
    return distance_label(bank.pattern_regions(pattern))


def _fit_rng(seed: int, *context: str) -> np.random.Generator:
    return np.random.default_rng(derive_seed(seed, "substrate-fit", *context))


def fit_surrogate(
    scale: Scale,
    seed: int,
    grid: FitGrid = DEFAULT_GRID,
    manufacturers: Optional[Iterable[Manufacturer]] = None,
    spec_filter: Optional[Callable[[object], bool]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SurrogateTable:
    """Fit a :class:`SurrogateTable` from the analog model at ``scale``.

    The fleet iteration, capability gating, and measurement construction
    are the same code paths a characterization sweep uses, so the fitted
    availability and probability structure mirror what a sweep at this
    scale observes.
    """
    accumulator = _Accumulator()
    trials = scale.trials
    for target in iter_targets(scale, seed, manufacturers=manufacturers):
        if spec_filter is not None and not spec_filter(target.spec):
            continue
        if progress is not None:
            progress(target.label())
        chip = target.spec.chip

        for fan_in in grid.not_fan_ins:
            if not_capability(chip, fan_in, None) is None:
                continue
            measurement = find_not_measurement(target, fan_in)
            search_key: Key = (
                target.spec.name, "not", fan_in, ANY_DISTANCE, "random"
            )
            accumulator.observe_search(
                search_key, measurement is not None, target.weight
            )
            if measurement is None:
                continue
            distance = _target_distance(target, measurement.pattern)
            key: Key = (target.spec.name, "not", fan_in, distance, "random")
            for temperature in grid.temperatures:
                target.infra.set_temperature(temperature)
                result = measurement.run(
                    trials,
                    _fit_rng(
                        seed, target.label(), "not", str(fan_in),
                        f"T={temperature}",
                    ),
                    batch_trials=scale.batch_trials,
                )
                accumulator.observe(
                    key, temperature, result.mean_rate, target.weight,
                    result.success_counts.shape[0],
                )

        for base_op in grid.logic_ops:
            for fan_in in grid.logic_fan_ins:
                if not logic_capability(chip, fan_in):
                    continue
                measurement = find_logic_measurement(target, base_op, fan_in)
                search_key = (
                    target.spec.name, base_op, fan_in, ANY_DISTANCE, "random"
                )
                accumulator.observe_search(
                    search_key, measurement is not None, target.weight
                )
                if measurement is None:
                    continue
                distance = _target_distance(
                    target, measurement.operation.pattern
                )
                complement = "nand" if base_op == "and" else "nor"
                for pattern in grid.patterns:
                    mode, ones_count = _parse_pattern(pattern)
                    for temperature in grid.temperatures:
                        target.infra.set_temperature(temperature)
                        pair = measurement.run(
                            trials,
                            _fit_rng(
                                seed, target.label(), base_op, str(fan_in),
                                pattern, f"T={temperature}",
                            ),
                            mode=mode,
                            ones_count=ones_count,
                            batch_trials=scale.batch_trials,
                        )
                        for name, result in (
                            (base_op, pair.primary),
                            (complement, pair.complement),
                        ):
                            accumulator.observe(
                                (target.spec.name, name, fan_in, distance,
                                 pattern_key(mode, ones_count)),
                                temperature,
                                result.mean_rate,
                                target.weight,
                                result.success_counts.shape[0],
                            )
        target.infra.set_temperature(_BASELINE_C)

    table = SurrogateTable(
        meta={
            "fitted_from": "analog",
            "scale": scale.name,
            "seed": seed,
            "trials": trials,
            "temperatures": list(grid.temperatures),
            "not_fan_ins": list(grid.not_fan_ins),
            "logic_fan_ins": list(grid.logic_fan_ins),
            "logic_ops": list(grid.logic_ops),
            "patterns": list(grid.patterns),
        }
    )
    accumulator.write_into(table)
    return table
