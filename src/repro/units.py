"""Physical units and conventions used throughout the simulator.

The DRAM model works in *normalized volts*: the supply rail ``VDD`` is 1.0
and ground ``GND`` is 0.0, matching the paper's convention that a cell
stores VDD for logic-1 and GND for logic-0 (§2.1).  Real DDR4 core voltage
(~1.2 V) never matters to the logic, only ratios of voltages do, so the
normalization removes a redundant constant.

Time is expressed in nanoseconds and capacitance in femtofarads.  Typical
values follow the DRAM circuit-design literature cited by the paper
(Keeth et al.): a cell capacitor in the 20-30 fF range and a bitline some
3-8x larger.
"""

from __future__ import annotations

#: Normalized supply voltage (logic-1 storage level).
VDD: float = 1.0

#: Normalized ground voltage (logic-0 storage level).
GND: float = 0.0

#: Bitline precharge voltage (VDD/2 precharge scheme, §2.1 Fig. 3).
VDD_HALF: float = VDD / 2.0

#: Nominal DRAM cell storage capacitance [fF].
CELL_CAPACITANCE_FF: float = 24.0

#: Nominal bitline capacitance [fF] (open-bitline, half-length bitlines).
BITLINE_CAPACITANCE_FF: float = 120.0

#: Number of picoseconds in a nanosecond (for cycle math readability).
PS_PER_NS: int = 1000


def logic_to_voltage(bit: int) -> float:
    """Map a logic value (0/1) to its full cell storage voltage."""
    if bit not in (0, 1):
        raise ValueError(f"logic value must be 0 or 1, got {bit!r}")
    return VDD if bit else GND


def voltage_to_logic(voltage: float) -> int:
    """Map a voltage to the logic value a sense amplifier would resolve.

    The sense amplifier compares against the VDD/2 reference; exactly
    VDD/2 is unresolvable in the ideal model and we break the tie toward
    logic-0, matching the convention that a floating precharged bitline
    reads as 0.
    """
    return 1 if voltage > VDD_HALF else 0


def transfers_to_clock_ns(speed_rate_mts: int) -> float:
    """Clock period [ns] of a DDR4 bus running at ``speed_rate_mts`` MT/s.

    DDR transfers twice per clock, so a 2400 MT/s part runs a 1200 MHz
    clock with a 0.833 ns period.
    """
    if speed_rate_mts <= 0:
        raise ValueError(f"speed rate must be positive, got {speed_rate_mts}")
    clock_mhz = speed_rate_mts / 2.0
    return PS_PER_NS / clock_mhz
