"""Reference numbers quoted by the paper, keyed by experiment.

Every value is traceable to a specific sentence of the paper (the
observation or figure caption is cited next to each entry).  The report
generator (:mod:`repro.analysis.report`) compares these against the
simulator's measurements to build EXPERIMENTS.md.

Values are success-rate fractions (0..1) unless noted; deltas are
percentage-point differences of *average success rates*.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["PAPER", "PaperAnchor", "anchors_for"]


class PaperAnchor:
    """One quoted number: where it comes from and what we compare it to."""

    def __init__(self, metric: str, value: float, source: str):
        self.metric = metric
        self.value = value
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaperAnchor({self.metric!r}, {self.value}, {self.source!r})"


#: experiment id -> metric name -> anchor
PAPER: Dict[str, Dict[str, PaperAnchor]] = {
    "table1": {
        "analyzed_chips": PaperAnchor("analyzed chips", 256, "§3.2 / Table 1"),
        "analyzed_modules": PaperAnchor("analyzed modules", 22, "§3.2 / Table 1"),
        "tested_chips": PaperAnchor("tested chips incl. Micron", 280, "§3.2"),
        "tested_modules": PaperAnchor("tested modules incl. Micron", 28, "§3.2"),
    },
    "fig5": {
        "1:1": PaperAnchor("coverage of 1:1", 0.0023, "§4.3 / Fig. 5"),
        "1:2": PaperAnchor("coverage of 1:2", 0.0015, "§4.3 / Fig. 5"),
        "2:2": PaperAnchor("coverage of 2:2", 0.0260, "§4.3 / Fig. 5"),
        "2:4": PaperAnchor("coverage of 2:4", 0.0153, "§4.3 / Fig. 5"),
        "4:4": PaperAnchor("coverage of 4:4", 0.1158, "§4.3 / Fig. 5"),
        "4:8": PaperAnchor("coverage of 4:8", 0.0542, "§4.3 / Fig. 5"),
        "8:8": PaperAnchor("coverage of 8:8", 0.2452, "§4.3 / Fig. 5"),
        "8:16": PaperAnchor("coverage of 8:16", 0.0795, "§4.3 / Fig. 5"),
        "16:16": PaperAnchor("coverage of 16:16", 0.2435, "§4.3 / Fig. 5"),
        "16:32": PaperAnchor("coverage of 16:32", 0.0382, "§4.3 / Fig. 5"),
    },
    "fig7": {
        "1 dst": PaperAnchor("NOT mean, 1 destination row", 0.9837, "Obs. 4"),
        "32 dst": PaperAnchor("NOT mean, 32 destination rows", 0.0795, "Obs. 4"),
    },
    "fig8": {
        "n2n_minus_nn_mean": PaperAnchor(
            "N:2N minus N:N mean", 0.0941, "Obs. 5"
        ),
    },
    "fig9": {
        "best Middle-Far": PaperAnchor(
            "NOT mean, Middle src / Far dst", 0.8502, "Obs. 6 / Fig. 9"
        ),
        "worst Far-Close": PaperAnchor(
            "NOT mean, Far src / Close dst", 0.4416, "Obs. 6 / Fig. 9"
        ),
    },
    "fig10": {
        "max_mean_variation": PaperAnchor(
            "max NOT mean variation 50..95C", 0.0020, "Obs. 7"
        ),
    },
    "fig11": {
        "dip_2400_drop": PaperAnchor(
            "4-dst NOT mean drop 2133->2400", 0.2006, "Obs. 8"
        ),
        "dip_2400_recovery": PaperAnchor(
            "4-dst NOT mean gain 2400->2666", 0.1976, "Obs. 8"
        ),
    },
    "fig12": {
        "skhynix_8gb_m_minus_a": PaperAnchor(
            "NOT mean, SK Hynix 8Gb M-die minus A-die", 0.0805, "Obs. 9"
        ),
        "samsung_a_minus_d": PaperAnchor(
            "NOT mean, Samsung A-die minus D-die", 0.1102, "Obs. 9"
        ),
    },
    "fig15": {
        "AND n=16": PaperAnchor("16-input AND mean", 0.9494, "Obs. 10"),
        "NAND n=16": PaperAnchor("16-input NAND mean", 0.9494, "Obs. 10"),
        "OR n=16": PaperAnchor("16-input OR mean", 0.9585, "Obs. 10"),
        "NOR n=16": PaperAnchor("16-input NOR mean", 0.9587, "Obs. 10"),
        "and_16_minus_2": PaperAnchor(
            "16-input minus 2-input AND mean", 0.1027, "Obs. 11"
        ),
        "or_minus_and_2": PaperAnchor(
            "2-input OR minus AND mean", 0.1042, "Obs. 12"
        ),
        "and_minus_nand_2": PaperAnchor(
            "2-input AND minus NAND mean", 0.0050, "Obs. 13"
        ),
    },
    "fig16": {
        "and16_k0_minus_k15": PaperAnchor(
            "16-input AND, 0 vs 15 logic-1s", 0.5243, "Obs. 14"
        ),
        "or16_k16_minus_k1": PaperAnchor(
            "16-input OR, 16 vs 1 logic-1s", 0.5366, "Obs. 14"
        ),
    },
    "fig17": {
        "variation_and": PaperAnchor("AND location variation", 0.2336, "Obs. 15"),
        "variation_nand": PaperAnchor("NAND location variation", 0.2370, "Obs. 15"),
        "variation_or": PaperAnchor("OR location variation", 0.1042, "Obs. 15"),
        "variation_nor": PaperAnchor("NOR location variation", 0.1050, "Obs. 15"),
    },
    "fig18": {
        "delta_and": PaperAnchor("AND all-1s/0s minus random", 0.0143, "Obs. 16"),
        "delta_nand": PaperAnchor("NAND all-1s/0s minus random", 0.0139, "Obs. 16"),
        "delta_or": PaperAnchor("OR all-1s/0s minus random", 0.0198, "Obs. 16"),
        "delta_nor": PaperAnchor("NOR all-1s/0s minus random", 0.0197, "Obs. 16"),
    },
    "fig19": {
        "variation_and": PaperAnchor("AND max 50..95C variation", 0.0166, "Obs. 17"),
        "variation_nand": PaperAnchor("NAND max 50..95C variation", 0.0165, "Obs. 17"),
        "variation_or": PaperAnchor("OR max 50..95C variation", 0.0163, "Obs. 17"),
        "variation_nor": PaperAnchor("NOR max 50..95C variation", 0.0164, "Obs. 17"),
    },
    "fig20": {
        "nand4_2133_to_2400_drop": PaperAnchor(
            "4-input NAND mean drop 2133->2400", 0.2989, "Obs. 18"
        ),
    },
    "fig21": {
        "and2_4gb_m_minus_a": PaperAnchor(
            "2-input AND, 4Gb M-die minus A-die", -0.2747, "Obs. 19"
        ),
        "and2_8gb_m_minus_a": PaperAnchor(
            "2-input AND, 8Gb M-die minus A-die", 0.0211, "Obs. 19"
        ),
    },
}


def anchors_for(experiment_id: str) -> Dict[str, PaperAnchor]:
    """Paper anchors for an experiment (empty dict if none recorded)."""
    return PAPER.get(experiment_id, {})
