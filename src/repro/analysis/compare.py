"""Paper-vs-measured comparison.

For every :mod:`repro.analysis.paperdata` anchor, an extractor pulls the
corresponding measured value out of the experiment's
:class:`~repro.characterization.results.ExperimentResult`; the output is
a row set ready for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..characterization.results import ExperimentResult
from .paperdata import anchors_for

__all__ = ["ComparisonRow", "compare_experiment"]


@dataclass(frozen=True)
class ComparisonRow:
    metric: str
    source: str
    paper_value: float
    measured_value: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.measured_value is None:
            return None
        return self.measured_value - self.paper_value


Extractor = Callable[[ExperimentResult], Optional[float]]


def _group_mean(label: str) -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        stats = result.groups.get(label)
        return stats.mean if stats else None

    return extract


def _group_delta(label_a: str, label_b: str) -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        a, b = result.groups.get(label_a), result.groups.get(label_b)
        if a is None or b is None:
            return None
        return a.mean - b.mean

    return extract


def _extra(key: str) -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        value = result.extras.get(key)
        return float(value) if value is not None else None

    return extract


def _extra_item(key: str, item: str) -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        mapping = result.extras.get(key)
        if not isinstance(mapping, dict):
            return None
        value = mapping.get(item)
        return float(value) if value is not None else None

    return extract


def _heatmap_cell(row: int, column: int, key: str = "heatmap") -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        grid = result.extras.get(key)
        if not isinstance(grid, dict):
            return None
        value = grid.get((row, column))
        return float(value) if value is not None else None

    return extract


def _series_delta(series: str, index_a: int, index_b: int) -> Extractor:
    def extract(result: ExperimentResult) -> Optional[float]:
        table = result.extras.get("series")
        if not isinstance(table, dict) or series not in table:
            return None
        values = table[series]
        if max(index_a, index_b) >= len(values):
            return None
        a, b = values[index_a], values[index_b]
        if a != a or b != b:  # NaN check
            return None
        return a - b

    return extract


#: experiment id -> metric key -> extractor
_EXTRACTORS: Dict[str, Dict[str, Extractor]] = {
    "table1": {
        key: _extra(key)
        for key in (
            "analyzed_chips",
            "analyzed_modules",
            "tested_chips",
            "tested_modules",
        )
    },
    "fig5": {
        label: _group_mean(label)
        for label in (
            "1:1", "1:2", "2:2", "2:4", "4:4", "4:8", "8:8", "8:16",
            "16:16", "16:32",
        )
    },
    "fig7": {
        "1 dst": _group_mean("1 dst"),
        "32 dst": _group_mean("32 dst"),
    },
    "fig8": {"n2n_minus_nn_mean": _extra("n2n_minus_nn_mean")},
    "fig9": {
        "best Middle-Far": _heatmap_cell(1, 2),
        "worst Far-Close": _heatmap_cell(2, 0),
    },
    "fig10": {"max_mean_variation": _extra("max_mean_variation")},
    "fig11": {
        "dip_2400_drop": _extra("dip_2400_drop"),
        "dip_2400_recovery": _extra("dip_2400_recovery"),
    },
    "fig12": {
        "skhynix_8gb_m_minus_a": _group_delta(
            "SK Hynix 8Gb M-die", "SK Hynix 8Gb A-die"
        ),
        "samsung_a_minus_d": _group_delta(
            "Samsung 8Gb A-die", "Samsung 8Gb D-die"
        ),
    },
    "fig15": {
        "AND n=16": _group_mean("AND n=16"),
        "NAND n=16": _group_mean("NAND n=16"),
        "OR n=16": _group_mean("OR n=16"),
        "NOR n=16": _group_mean("NOR n=16"),
        "and_16_minus_2": _group_delta("AND n=16", "AND n=2"),
        "or_minus_and_2": _group_delta("OR n=2", "AND n=2"),
        "and_minus_nand_2": _group_delta("AND n=2", "NAND n=2"),
    },
    "fig16": {
        "and16_k0_minus_k15": _series_delta("AND16", 0, 15),
        "or16_k16_minus_k1": _series_delta("OR16", 16, 1),
    },
    "fig17": {
        f"variation_{op}": _extra(f"variation_{op}")
        for op in ("and", "nand", "or", "nor")
    },
    "fig18": {
        f"delta_{op}": _extra_item("all01_minus_random", op)
        for op in ("and", "nand", "or", "nor")
    },
    "fig19": {
        f"variation_{op}": _extra_item("max_mean_variation", op)
        for op in ("and", "nand", "or", "nor")
    },
    "fig20": {"nand4_2133_to_2400_drop": _extra("nand4_2133_to_2400_drop")},
    "fig21": {
        "and2_4gb_m_minus_a": _group_delta("AND n=2 4Gb M", "AND n=2 4Gb A"),
        "and2_8gb_m_minus_a": _group_delta("AND n=2 8Gb M", "AND n=2 8Gb A"),
    },
}


def compare_experiment(result: ExperimentResult) -> List[ComparisonRow]:
    """All paper-vs-measured rows for one experiment result."""
    anchors = anchors_for(result.experiment_id)
    extractors = _EXTRACTORS.get(result.experiment_id, {})
    rows = []
    for key, anchor in anchors.items():
        extractor = extractors.get(key)
        measured = extractor(result) if extractor else None
        rows.append(
            ComparisonRow(
                metric=anchor.metric,
                source=anchor.source,
                paper_value=anchor.value,
                measured_value=measured,
            )
        )
    return rows
