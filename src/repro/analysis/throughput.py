"""Analytic throughput model: why bulk bitwise in DRAM is interesting.

The PuD motivation (§1, following Ambit) is bandwidth: one in-DRAM
operation computes across an entire row segment per bank — and every
bank in every chip of every rank can do it concurrently — while a
processor-centric system must move all operands across the DRAM bus
first.  This module computes both sides of that comparison from the
timing parameters, for the operation sequences this library issues.

The numbers are *analytic peak* figures for the command protocol, not
measurements of the Python simulator (whose wall-clock speed is
irrelevant to the architecture question).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.config import ChipConfig
from ..dram.timing import ReducedTiming, timing_for_speed

__all__ = ["ThroughputEstimate", "estimate_throughput"]

#: Real DDR4 row-segment width per chip [bits]: a 1KB row on a x8 chip.
_REAL_ROW_BITS_X8 = 8192


@dataclass(frozen=True)
class ThroughputEstimate:
    """Peak-rate comparison for one chip configuration."""

    #: Duration of one in-DRAM logic-op command sequence [ns].
    op_sequence_ns: float
    #: Result bits produced per sequence per bank (half a row segment).
    bits_per_op: int
    #: Aggregate in-DRAM result throughput, all banks active [Gbit/s].
    in_dram_gbps: float
    #: DDR4 bus bandwidth available to a processor-centric system [Gbit/s].
    bus_gbps: float
    #: Bus time just to *move* one operation's operands + result [ns].
    bus_transfer_ns: float

    @property
    def speedup_vs_bus(self) -> float:
        """In-DRAM throughput over plain operand movement."""
        return self.in_dram_gbps / self.bus_gbps


def estimate_throughput(
    config: ChipConfig,
    n_inputs: int = 2,
    row_bits_per_chip: int = _REAL_ROW_BITS_X8,
    chips_per_rank: int = 8,
) -> ThroughputEstimate:
    """Peak-rate estimate for N-input in-DRAM logic on ``config``.

    One operation sequence costs (per §6.2): reference preparation
    (Frac: one interrupted activation) plus the reduced-timing double
    activation with its tRAS restore and final precharge.  The result
    covers half of a row segment (the shared columns) across every chip
    of the rank, in every bank concurrently.
    """
    if n_inputs < 2:
        raise ValueError(f"n_inputs must be >= 2, got {n_inputs}")
    timing = timing_for_speed(config.speed_rate_mts)
    reduced = ReducedTiming.for_logic_op(timing)

    frac_ns = timing.quantize(1.5) + timing.t_rp
    sequence_ns = (
        reduced.first_act_ns(timing)
        + reduced.pre_to_act_ns(timing)
        + timing.t_ras
        + timing.t_rp
    )
    op_ns = frac_ns + sequence_ns

    bits_per_op = (row_bits_per_chip // 2) * chips_per_rank
    banks = config.geometry.banks
    in_dram_gbps = bits_per_op * banks / op_ns  # bits/ns == Gbit/s

    bus_gbps = config.speed_rate_mts * 64 / 1000.0  # 64-bit channel
    moved_bits = bits_per_op * (n_inputs + 1)  # operands in, result out
    bus_transfer_ns = moved_bits / bus_gbps

    return ThroughputEstimate(
        op_sequence_ns=op_ns,
        bits_per_op=bits_per_op,
        in_dram_gbps=in_dram_gbps,
        bus_gbps=bus_gbps,
        bus_transfer_ns=bus_transfer_ns,
    )
