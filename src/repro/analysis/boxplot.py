"""Text rendering of box-and-whiskers distributions.

The paper presents nearly every result as a box plot over DRAM cells
(footnote 5).  :func:`render_boxes` draws the same thing in a terminal:
whiskers span min..max, the box Q1..Q3, with the median marked.
"""

from __future__ import annotations

from typing import Mapping

from ..characterization.metrics import BoxStats

__all__ = ["render_box_line", "render_boxes"]


def render_box_line(
    stats: BoxStats, width: int = 50, lo: float = 0.0, hi: float = 1.0
) -> str:
    """One box-and-whiskers line over a fixed value range.

    ``-`` whisker, ``=`` box, ``|`` median, e.g.::

        --------========|====----
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if hi <= lo:
        raise ValueError(f"invalid range [{lo}, {hi}]")

    def position(value: float) -> int:
        clipped = min(max(value, lo), hi)
        return int(round((clipped - lo) / (hi - lo) * (width - 1)))

    cells = [" "] * width
    p_min, p_q1 = position(stats.minimum), position(stats.q1)
    p_med = position(stats.median)
    p_q3, p_max = position(stats.q3), position(stats.maximum)
    for i in range(p_min, p_q1):
        cells[i] = "-"
    for i in range(p_q1, p_q3 + 1):
        cells[i] = "="
    for i in range(p_q3 + 1, p_max + 1):
        cells[i] = "-"
    cells[p_med] = "|"
    return "".join(cells)


def render_boxes(
    groups: Mapping[str, BoxStats],
    width: int = 50,
    lo: float = 0.0,
    hi: float = 1.0,
    percent: bool = True,
) -> str:
    """Multi-line box-plot chart for a label -> BoxStats mapping."""
    if not groups:
        return "(no data)"
    label_width = max(len(label) for label in groups)
    scale = 100.0 if percent else 1.0
    lines = []
    header_lo = f"{lo * scale:g}"
    header_hi = f"{hi * scale:g}{'%' if percent else ''}"
    pad = " " * (label_width + 2)
    lines.append(f"{pad}{header_lo}{' ' * (width - len(header_lo) - len(header_hi))}{header_hi}")
    for label, stats in groups.items():
        bar = render_box_line(stats, width=width, lo=lo, hi=hi)
        lines.append(
            f"{label:>{label_width}}  {bar}  mean={stats.mean * scale:5.1f}"
            f"{'%' if percent else ''}"
        )
    return "\n".join(lines)
