"""Result analysis: text box plots, paper reference data, comparison,
and the EXPERIMENTS.md report generator.

* :mod:`repro.analysis.paperdata` — the paper's quoted numbers
* :mod:`repro.analysis.boxplot` — terminal box-and-whiskers rendering
* :mod:`repro.analysis.compare` — paper-vs-measured extraction
* :mod:`repro.analysis.report` — full report generation (CLI:
  ``python -m repro.analysis.report``)
"""

from .boxplot import render_box_line, render_boxes
from .compare import ComparisonRow, compare_experiment
from .paperdata import PAPER, PaperAnchor, anchors_for
from .report import EXPERIMENT_ORDER, generate_report, write_report
from .throughput import ThroughputEstimate, estimate_throughput

__all__ = [
    "ComparisonRow",
    "EXPERIMENT_ORDER",
    "PAPER",
    "PaperAnchor",
    "anchors_for",
    "compare_experiment",
    "generate_report",
    "render_box_line",
    "render_boxes",
    "write_report",
    "ThroughputEstimate",
    "estimate_throughput",
]
