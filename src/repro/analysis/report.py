"""EXPERIMENTS.md generator: run every experiment, compare to the paper.

Usage::

    python -m repro.analysis.report --scale default --seed 0 --out EXPERIMENTS.md

The report records, per table/figure: the measured group statistics, a
text box plot, and the paper-vs-measured anchor table.  Absolute values
are not expected to match silicon exactly (the substrate is a calibrated
simulator — see DESIGN.md); the point of the report is that every trend,
ordering, and factor the paper highlights is reproduced.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, TextIO

from ..atomicio import atomic_write_text
from ..characterization.experiments import REGISTRY, run_experiment
from ..characterization.resilience import (
    Resilience,
    add_resilience_arguments,
    resilience_from_args,
)
from ..characterization.results import ExperimentResult
from ..characterization.runner import DEFAULT, FULL, SMOKE, Scale
from .boxplot import render_boxes
from .compare import ComparisonRow, compare_experiment

__all__ = ["generate_report", "write_report", "main"]

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}

#: Report order: the inventory table, then figures in paper order.
EXPERIMENT_ORDER = (
    "table1",
    "capability",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
)


def _format_value(value: Optional[float], percentish: bool) -> str:
    if value is None:
        return "n/a"
    if percentish:
        return f"{value * 100:.2f}%"
    return f"{value:g}"


def _comparison_table(rows: List[ComparisonRow]) -> str:
    lines = [
        "| metric | paper | measured | delta | source |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        percentish = abs(row.paper_value) <= 1.0
        delta = (
            f"{row.delta * 100:+.2f}pp"
            if (row.delta is not None and percentish)
            else (_format_value(row.delta, False) if row.delta is not None else "n/a")
        )
        lines.append(
            f"| {row.metric} | {_format_value(row.paper_value, percentish)} "
            f"| {_format_value(row.measured_value, percentish)} "
            f"| {delta} | {row.source} |"
        )
    return "\n".join(lines)


def _experiment_section(result: ExperimentResult, elapsed_s: float) -> str:
    parts = [f"## {result.experiment_id}: {result.title}", ""]
    rows = compare_experiment(result)
    if rows:
        parts.append(_comparison_table(rows))
        parts.append("")
    if "table" in result.extras:
        parts.append("```")
        parts.append(str(result.extras["table"]))
        parts.append("```")
        parts.append("")
    if result.groups:
        parts.append("```")
        parts.append(render_boxes(result.groups))
        parts.append("```")
        parts.append("")
    for key in sorted(result.extras):
        if key.startswith("heatmap"):
            parts.append("```")
            parts.append(result.format_heatmap(key=key))
            parts.append("```")
            parts.append("")
    for note in result.notes:
        parts.append(f"- {note}")
    parts.append(f"- runtime: {elapsed_s:.1f}s")
    if result.health is not None:
        parts.append("- sweep health:")
        parts.extend(f"  - {line}" for line in result.health.summary_lines())
    parts.append("")
    return "\n".join(parts)


def generate_report(
    scale: Scale = DEFAULT,
    seed: int = 0,
    experiment_ids: Optional[List[str]] = None,
    log: Optional[TextIO] = None,
    jobs: int = 1,
    resilience: Optional[Resilience] = None,
) -> str:
    """Run the experiment suite and return the EXPERIMENTS.md content."""
    ids = list(experiment_ids) if experiment_ids else list(EXPERIMENT_ORDER)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    sections = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of every table and figure in the evaluation of",
        '"Functionally-Complete Boolean Logic in Real DRAM Chips" (HPCA 2024)',
        "on the simulated-chip substrate described in DESIGN.md.",
        "",
        f"- sweep scale: `{scale.name}` "
        f"({scale.modules_per_spec} module(s)/spec, "
        f"{scale.chips_per_module} chip(s)/module, "
        f"{scale.banks_per_module} bank(s), {scale.trials} trials; "
        f"geometry {scale.geometry.subarrays_per_bank}x"
        f"{scale.geometry.rows_per_subarray}x{scale.geometry.columns})",
        f"- seed: {seed}",
        "",
        "Absolute success rates come from a *calibrated* behavioral model,",
        "so exact-match is expected only for the anchors used in",
        "calibration; the reproduction claim is that every ordering,",
        "trend, and factor the paper reports holds (see per-figure",
        "comparison tables).",
        "",
        "## Parallel sweeps",
        "",
        "This report can be regenerated with `--jobs N` to fan each sweep",
        "out over a process pool (`python -m repro.analysis.report --jobs 4`).",
        "Worker processes rebuild modules from the shared seed tree and",
        "results merge in canonical target order, so every number below is",
        "bit-identical at any job count; only wall-clock changes.  See the",
        '"Parallel sweeps" section of README.md and',
        "`tests/characterization/test_parallel.py` for the guarantee.",
        "",
        "## Batched execution",
        "",
        "Within each worker, trials execute on the batched engine: a whole",
        "block of trials evaluates as one vectorized pass over a leading",
        "NumPy trials axis instead of one program execution per trial.",
        "`--batch-trials` selects the engine (`0`, the default, batches",
        "blocks of up to 1024 trials; `1` recovers the serial per-trial",
        "loop; `k > 1` caps block size at `k`).  The engine is an",
        "execution detail, not a measurement parameter: every success",
        "count below is bit-identical for any setting — including under",
        "fault injection — because per-trial noise substreams and",
        "fault-site hashes are keyed by trial index, not drawn in",
        "execution order.  It therefore composes freely with `--jobs`",
        "and `--resume`: checkpoint fingerprints exclude the batch",
        "setting, so a run checkpointed under one engine resumes under",
        "another.  See \"Batched execution\" in README.md,",
        "`tests/core/test_batched_equivalence.py` for the contract, and",
        "`benchmarks/bench_trial_engine.py` for the speedup measurement.",
        "",
        "## Substrate backends",
        "",
        "Measurements flow through a pluggable substrate backend",
        "(`repro.substrate`), selected with `--backend`.  `analog` (the",
        "default, used below) is the calibrated charge-sharing model,",
        "bit-identical to historical runs.  `surrogate` serves",
        "deterministic draws from probability tables fitted off the",
        "analog reference (`python -m repro.substrate fit`), ~130x",
        "faster on fleet-style sweeps and within 0.02 absolute of fresh",
        "analog fleet means on every fitted (operation, fan-in,",
        "temperature) cell.  `trace-record`/`trace-replay` capture and",
        "serve byte-identical measurement traces, failing loudly on any",
        "divergence.  See \"Substrate backends\" in README.md,",
        "`tests/substrate/` for the cross-backend equivalence suite, and",
        "`benchmarks/bench_substrate.py` for the speedup measurement.",
        "",
        "## Resilient sweeps",
        "",
        "Long runs survive a flaky bench and a dying machine.  With",
        "`--checkpoint-dir DIR` every sweep checkpoints completed targets",
        "atomically; transient infrastructure failures (host command",
        "timeouts, thermal setpoint dropouts, dead pool workers — real or",
        "injected via `--faults PLAN.json`) retry with exponential backoff,",
        "and targets that exhaust the retry budget are quarantined and",
        "reported per figure instead of aborting the suite.  A worked",
        "kill-and-resume example:",
        "",
        "```bash",
        "python -m repro.analysis.report --scale full --jobs 8 \\",
        "    --checkpoint-dir ckpt --out EXPERIMENTS.md",
        "# ...power loss / OOM kill / Ctrl-C hours in...",
        "python -m repro.analysis.report --scale full --jobs 8 \\",
        "    --checkpoint-dir ckpt --resume --out EXPERIMENTS.md",
        "```",
        "",
        "The resumed report is bit-identical to an uninterrupted one:",
        "finished targets load from `ckpt/*.json`, only the remainder",
        "runs.  See \"Fault injection and resilient sweeps\" in README.md",
        "and `tests/characterization/test_resilience.py`.",
        "",
        "## Static checks",
        "",
        "Every command sequence below passed the static program verifier",
        "before running: the executor pre-flights each `TestProgram`",
        "against a static mirror of the bank state machine",
        "(`ProgramExecutor(verify=...)`, default `\"warn\"`), catching",
        "broken FCDRAM sequences — wrong bank state, operands in",
        "non-sense-amp-sharing subarrays, missing Frac references,",
        "silently quantized sub-cycle waits — before they can burn a",
        "sweep.  Reproduce the checks standalone:",
        "",
        "```bash",
        "python -m repro.staticcheck              # sequences + determinism lint",
        "python -m repro.staticcheck --list-rules # FC1xx / DET2xx catalogue",
        "python -m repro.staticcheck --demo all   # documented bad cases",
        "```",
        "",
        "See \"Static checks\" in README.md for the rule catalogue and",
        "suppression syntax; `tests/staticcheck/` pins one golden",
        "diagnostic per rule.",
        "",
    ]
    if resilience is not None:
        sections.extend(
            [
                "This run used the resilience layer; per-figure sweep",
                "health (attempts, retries, quarantined targets, resume",
                "provenance) is reported below each experiment.",
                "",
            ]
        )
    for experiment_id in ids:
        if log:
            log.write(f"[report] running {experiment_id}...\n")
            log.flush()
        # staticcheck: ignore[DET203] runtime note in the report, not a result
        start = time.time()
        result = run_experiment(
            experiment_id, scale=scale, seed=seed, jobs=jobs, resilience=resilience
        )
        elapsed = time.time() - start  # staticcheck: ignore[DET203]
        sections.append(_experiment_section(result, elapsed))
    return "\n".join(sections)


def write_report(path: str, scale: Scale = DEFAULT, seed: int = 0, **kwargs) -> None:
    content = generate_report(scale=scale, seed=seed, **kwargs)
    atomic_write_text(path, content)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(_SCALES), default="default")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per sweep (default 1 = serial; the report "
        "content is bit-identical at any job count)",
    )
    parser.add_argument(
        "--batch-trials",
        type=int,
        default=0,
        help="trial execution engine: 0 (default) = batched blocks, "
        "1 = serial per-trial path, k>1 caps the block size; the report "
        "content is bit-identical at any setting",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids (default: all)",
    )
    add_resilience_arguments(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.batch_trials < 0:
        parser.error(f"--batch-trials must be >= 0, got {args.batch_trials}")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    content = generate_report(
        scale=_SCALES[args.scale].with_batch_trials(args.batch_trials),
        seed=args.seed,
        experiment_ids=args.only,
        log=sys.stderr,
        jobs=args.jobs,
        resilience=resilience_from_args(args),
    )
    atomic_write_text(args.out, content)
    sys.stderr.write(f"[report] wrote {args.out}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
