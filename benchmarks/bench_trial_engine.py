"""Trial-engine benchmark: serial vs batched measurement execution.

Times one NOT and one logic-op success-rate measurement at the trial
counts of the three :mod:`repro.characterization.runner` presets
(smoke=40, default=150, full=600 trials), once through the serial
per-trial path (``batch_trials=1``) and once through the batched
trial-axis engine (``batch_trials=0``), verifies the two produce
bit-identical success counts, and writes the timings to
``BENCH_trial_engine.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_trial_engine.py
    PYTHONPATH=src python benchmarks/bench_trial_engine.py --out other.json

The headline number is the single-worker speedup at 600 trials — the
batched engine's reason to exist.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

import numpy as np

from repro.atomicio import atomic_write_text
from repro.characterization.runner import (
    DEFAULT,
    FULL,
    SMOKE,
    Scale,
    find_logic_measurement,
    find_not_measurement,
    iter_targets,
)

#: The presets whose ``trials`` settings are benchmarked.
PRESETS = (SMOKE, DEFAULT, FULL)

#: All timing runs use the smoke geometry so the serial baseline stays
#: tractable; only the trial count varies across presets.
GEOMETRY_SCALE = SMOKE


def _not_counts(trials: int, seed: int, batch_trials: int) -> np.ndarray:
    for target in iter_targets(GEOMETRY_SCALE, seed=seed):
        measurement = find_not_measurement(target, 2)
        if measurement is None:
            continue
        result = measurement.run(
            trials, np.random.default_rng(seed), batch_trials=batch_trials
        )
        return result.success_counts
    raise RuntimeError("no NOT-capable target in the benchmark fleet")


def _logic_counts(trials: int, seed: int, batch_trials: int) -> np.ndarray:
    for target in iter_targets(GEOMETRY_SCALE, seed=seed):
        measurement = find_logic_measurement(target, "and", 4)
        if measurement is None:
            continue
        pair = measurement.run(
            trials, np.random.default_rng(seed), batch_trials=batch_trials
        )
        return np.concatenate(
            [
                pair.primary.success_counts.ravel(),
                pair.complement.success_counts.ravel(),
            ]
        )
    raise RuntimeError("no logic-capable target in the benchmark fleet")


def _time_engine(runner, trials: int, seed: int, batch_trials: int):
    # staticcheck: ignore[DET203] wall-clock is the measured quantity here
    start = time.perf_counter()
    counts = runner(trials, seed, batch_trials)
    elapsed = time.perf_counter() - start  # staticcheck: ignore[DET203]
    return elapsed, counts


def run_benchmark(seed: int = 1) -> Dict[str, object]:
    presets: Dict[str, object] = {}
    for scale in PRESETS:
        entry: Dict[str, object] = {"trials": scale.trials}
        for name, runner in (("not", _not_counts), ("logic", _logic_counts)):
            serial_s, serial_counts = _time_engine(runner, scale.trials, seed, 1)
            batched_s, batched_counts = _time_engine(
                runner, scale.trials, seed, 0
            )
            identical = bool(np.array_equal(serial_counts, batched_counts))
            entry[name] = {
                "serial_s": round(serial_s, 4),
                "batched_s": round(batched_s, 4),
                "speedup": round(serial_s / batched_s, 2),
                "identical": identical,
            }
            if not identical:
                raise AssertionError(
                    f"batched {name} diverged from serial at "
                    f"{scale.trials} trials"
                )
        presets[scale.name] = entry
    return {
        "benchmark": "trial_engine",
        "geometry": GEOMETRY_SCALE.name,
        "seed": seed,
        "jobs": 1,
        "presets": presets,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_trial_engine.json")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    report = run_benchmark(seed=args.seed)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    for name, entry in report["presets"].items():
        for op in ("not", "logic"):
            row = entry[op]
            print(
                f"{name:>8} ({entry['trials']:>4} trials) {op:>5}: "
                f"serial {row['serial_s']:7.3f}s  "
                f"batched {row['batched_s']:7.3f}s  "
                f"speedup {row['speedup']:6.2f}x"
            )
    full = report["presets"]["full"]
    headline = min(full["not"]["speedup"], full["logic"]["speedup"])
    print(f"\nheadline: >= {headline:.2f}x at {full['trials']} trials, 1 worker")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
