"""Reliability benchmark: mitigation-scheme overhead on the runtime.

Times the bounded-error job path of :class:`repro.system.PudRuntime`
under a ladder of mitigation schemes — each installed via a one-cell
policy table — against the uncoded scheme, on an ideal (noise-free)
module so the measured cost is pure mitigation overhead: extra
activations for votes, extra reads for row copies and consistency
checks, and the decided-bits re-stage.  Also times the auto-tuner
itself (surrogate fit + ``tune`` on the smoke grid), the step a
deployment pays once per chip.

Usage::

    PYTHONPATH=src python benchmarks/bench_reliability.py
    PYTHONPATH=src python benchmarks/bench_reliability.py --out other.json

The headline numbers are the measured wall-clock multiplier of each
scheme relative to uncoded, next to the model's predicted expected-cost
multiplier — the two should track, which is the whole point of tuning
from the closed-form models.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional

import numpy as np

from repro import ChipGeometry, SeedTree, ideal_calibration, sk_hynix_chip
from repro.atomicio import atomic_write_text
from repro.bender import DramBenderHost
from repro.characterization.runner import SMOKE
from repro.dram.module import Module
from repro.reliability import (
    SMOKE_TUNE_GRID,
    MitigationScheme,
    PolicyEntry,
    PolicyTable,
    tune,
)
from repro.substrate import SMOKE_GRID, SurrogateBackend, fit_surrogate
from repro.system import PudRuntime

#: Same structurally-complete small geometry the test suite uses.
GEOMETRY = ChipGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
)

#: Schemes timed against uncoded, cheapest first.
SCHEME_LADDER = (
    MitigationScheme(),
    MitigationScheme(row_copies=3),
    MitigationScheme(max_attempts=2),
    MitigationScheme(votes=3),
    MitigationScheme(votes=3, max_attempts=2),
    MitigationScheme(votes=5, row_copies=3, max_attempts=2),
    MitigationScheme(votes=9, max_attempts=3),
)

#: Bounded jobs per scheme (4-operand AND: a bitmap-index scan shape).
JOBS_PER_SCHEME = 25
FAN_IN = 4


def _timed(fn, *args):
    # staticcheck: ignore[DET203] wall-clock is the measured quantity here
    start = time.perf_counter()
    value = fn(*args)
    elapsed = time.perf_counter() - start  # staticcheck: ignore[DET203]
    return elapsed, value


def _runtime_for(scheme: MitigationScheme) -> PudRuntime:
    module = Module(
        sk_hynix_chip().with_geometry(GEOMETRY),
        chip_count=1,
        seed_tree=SeedTree(7),
        calibration=ideal_calibration(),
    )
    table = PolicyTable()
    table.set(
        ("and", FAN_IN, "any", 50.0),
        PolicyEntry(
            scheme=scheme,
            probability=0.95,
            predicted_error=float(scheme.predicted_error(0.95)),
            expected_cost=float(scheme.expected_cost(0.95)),
            error_bound=1.0,  # benchmark: always admissible
        ),
    )
    return PudRuntime(DramBenderHost(module), policy=table)


def _run_jobs(runtime: PudRuntime, operands: List[np.ndarray]) -> None:
    for _job in range(JOBS_PER_SCHEME):
        runtime.submit_job("and", operands, error_bound=1.0)


def run_benchmark(seed: int = 1) -> Dict[str, object]:
    rng = np.random.default_rng(seed)

    schemes: List[Dict[str, object]] = []
    uncoded_s: Optional[float] = None
    for scheme in SCHEME_LADDER:
        runtime = _runtime_for(scheme)
        operands = [
            rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
            for _ in range(FAN_IN)
        ]
        elapsed, _unused = _timed(_run_jobs, runtime, operands)
        if scheme.is_uncoded:
            uncoded_s = elapsed
        assert uncoded_s is not None  # uncoded is first in the ladder
        schemes.append(
            {
                "scheme": scheme.label,
                "elapsed_s": round(elapsed, 4),
                "measured_overhead": round(elapsed / uncoded_s, 2),
                "predicted_cost": round(float(scheme.expected_cost(0.95)), 2),
                "logic_ops": runtime.stats.logic_ops,
                "votes_cast": runtime.stats.votes_cast,
                "op_retries": runtime.stats.op_retries,
            }
        )

    fit_s, table = _timed(fit_surrogate, SMOKE, seed, SMOKE_GRID)
    tune_s, policy = _timed(
        lambda: tune(SurrogateBackend(table), grid=SMOKE_TUNE_GRID)
    )

    return {
        "benchmark": "reliability",
        "seed": seed,
        "fan_in": FAN_IN,
        "jobs_per_scheme": JOBS_PER_SCHEME,
        "schemes": schemes,
        "tuner": {
            "fit_s": round(fit_s, 4),
            "fitted_cells": len(table),
            "tune_s": round(tune_s, 4),
            "tuned_cells": len(policy),
            "unsatisfiable_cells": policy.unsatisfiable_count,
        },
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_reliability.json")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    report = run_benchmark(seed=args.seed)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print("scheme               measured   predicted   elapsed")
    for row in report["schemes"]:
        print(
            f"{row['scheme']:<20} {row['measured_overhead']:7.2f}x  "
            f"{row['predicted_cost']:8.2f}x  {row['elapsed_s']:7.3f}s"
        )
    tuner = report["tuner"]
    print(
        f"\ntuner: fit {tuner['fit_s']:.3f}s ({tuner['fitted_cells']} "
        f"cells), tune {tuner['tune_s']:.3f}s ({tuner['tuned_cells']} "
        f"tuned, {tuner['unsatisfiable_cells']} unsatisfiable)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
