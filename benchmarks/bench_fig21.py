"""Benchmark: regenerate Fig. 21: ops vs density / die revision (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig21(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig21", jobs=sweep_jobs)
    assert result.groups or result.extras
