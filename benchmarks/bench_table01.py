"""Benchmark: regenerate Table 1: tested-chip inventory (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_table01(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "table1", jobs=sweep_jobs)
    assert result.groups or result.extras
