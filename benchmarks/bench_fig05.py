"""Benchmark: regenerate Fig. 5: activation-type coverage (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig05(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig5", jobs=sweep_jobs)
    assert result.groups or result.extras
