"""Shared benchmark configuration.

Each ``bench_figXX.py`` regenerates one of the paper's tables/figures at
``BENCH_SCALE`` and prints the same rows/series the paper reports, with
the paper's quoted anchors alongside.  ``pytest benchmarks/
--benchmark-only`` runs the full set.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.characterization import Resilience, Scale, run_experiment
from repro.analysis.compare import compare_experiment
from repro.dram.config import ChipGeometry
from repro.faults import FaultPlan

#: Benchmark scale: one small module per Table-1 spec type — large
#: enough for every trend to show, small enough for the suite to finish
#: in minutes.
BENCH_SCALE = Scale(
    name="bench",
    modules_per_spec=1,
    chips_per_module=1,
    banks_per_module=1,
    pairs_per_bank=1,
    trials=80,
    geometry=ChipGeometry(
        banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=48
    ),
)


#: Fault plan injected into every benchmarked sweep (``--faults``).
_FAULT_PLAN: Optional[FaultPlan] = None


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes per sweep (default 1 = serial; results are "
        "bit-identical at any job count)",
    )
    parser.addoption(
        "--faults",
        action="store",
        default=None,
        help="JSON fault plan to inject into every benchmarked sweep "
        "(exercises the retry path under timing measurement)",
    )
    parser.addoption(
        "--batch-trials",
        action="store",
        type=int,
        default=0,
        help="trial engine for every benchmarked sweep: 0 = batched "
        "(default), 1 = serial per-trial path, k>1 caps the block size; "
        "results are bit-identical at any setting",
    )


#: Trial-engine setting applied to every benchmarked sweep.
_BATCH_TRIALS: int = 0


def pytest_configure(config):
    global _FAULT_PLAN, _BATCH_TRIALS
    path = config.getoption("--faults", default=None)
    _FAULT_PLAN = FaultPlan.load(path) if path else None
    _BATCH_TRIALS = config.getoption("--batch-trials", default=0)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def sweep_jobs(request):
    return request.config.getoption("--jobs")


def run_and_report(benchmark, experiment_id: str, seed: int = 1, jobs: int = 1):
    """Benchmark one experiment run and print its figure reproduction."""
    scale = BENCH_SCALE.with_batch_trials(_BATCH_TRIALS)
    kwargs = {"scale": scale, "seed": seed, "jobs": jobs}
    if _FAULT_PLAN is not None:
        # A fresh Resilience per round: health must not leak between
        # benchmark iterations.
        kwargs["resilience"] = Resilience(faults=_FAULT_PLAN)
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    print()
    health_text = result.format_health()
    if health_text:
        print(health_text)
    if "table" in result.extras:
        print(result.extras["table"])
    print(result.format_table())
    for key in sorted(result.extras):
        if key.startswith("heatmap"):
            print(result.format_heatmap(key=key))
    rows = compare_experiment(result)
    if rows:
        print("  paper-vs-measured:")
        for row in rows:
            measured = (
                f"{row.measured_value * 100:6.2f}%"
                if row.measured_value is not None and abs(row.paper_value) <= 1
                else str(row.measured_value)
            )
            paper = (
                f"{row.paper_value * 100:6.2f}%"
                if abs(row.paper_value) <= 1
                else str(row.paper_value)
            )
            print(f"    {row.metric}: paper {paper} / measured {measured}")
    return result
