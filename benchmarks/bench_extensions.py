"""Benchmarks for the extension components built on the paper's ops:
TRNG throughput, bit-serial ALU latency, compiled-expression execution,
and the analytic in-DRAM-vs-bus throughput table.

Unlike the ``bench_fig*`` targets (one run per paper artifact), these
are conventional multi-round microbenchmarks of the library itself.
"""

import numpy as np
import pytest

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.analysis.throughput import estimate_throughput
from repro.bender import DramBenderHost
from repro.core import (
    BitSerialAlu,
    BitwiseAccelerator,
    DramTrng,
    compile_expression,
    from_bit_slices,
    to_bit_slices,
)
from repro.core.compiler import And, Not, Or, Xor, v

from conftest import BENCH_SCALE


def _host(ideal: bool = False) -> DramBenderHost:
    config = sk_hynix_chip().with_geometry(BENCH_SCALE.geometry)
    module_kwargs = {"calibration": ideal_calibration()} if ideal else {}
    from repro.dram import Module

    return DramBenderHost(
        Module(config, chip_count=1, seed_tree=SeedTree(41), **module_kwargs)
    )


def test_trng_throughput(benchmark):
    host = _host()
    trng = DramTrng(host, bank=0, subarray=0, block_local_row=16)
    bits = benchmark(trng.random_bits, 256)
    assert bits.size == 256
    print(
        f"\n  raw bits consumed so far: {trng.raw_bits_generated} "
        f"(corrector keeps ~{256 / max(1, trng.raw_bits_generated) * 100:.0f}%"
        " per call shown)"
    )


def test_alu_add_latency(benchmark):
    host = _host(ideal=True)
    alu = BitSerialAlu(host, subarray_pair=(0, 1), maj_subarray=1)
    rng = np.random.default_rng(0)
    a = to_bit_slices(rng.integers(0, 256, alu.lanes), 8)
    b = to_bit_slices(rng.integers(0, 256, alu.lanes), 8)
    total = benchmark(alu.add, a, b)
    assert total.shape[0] == 9
    print(f"\n  {alu.lanes} parallel 8-bit additions per call")


def test_compiled_expression_execution(benchmark):
    host = _host(ideal=True)
    accelerator = BitwiseAccelerator(host, bank=0, subarray_pair=(0, 1))
    program = compile_expression(
        Or(And(v("a"), v("b")), Xor(v("c"), Not(v("d"))))
    )
    rng = np.random.default_rng(1)
    bindings = {
        name: rng.integers(0, 2, accelerator.vector_width, dtype=np.uint8)
        for name in "abcd"
    }
    result = benchmark(program.run, accelerator, bindings)
    assert result.size == accelerator.vector_width
    print(f"\n  schedule: {program.op_counts}")


def test_analytic_throughput_table(benchmark):
    def build():
        return {
            speed: estimate_throughput(sk_hynix_chip(speed_rate_mts=speed))
            for speed in (2133, 2400, 2666)
        }

    table = benchmark(build)
    print("\n  speed    op[ns]  in-DRAM[Gbit/s]  bus[Gbit/s]  speedup")
    for speed, estimate in table.items():
        print(
            f"  {speed}   {estimate.op_sequence_ns:7.1f}  "
            f"{estimate.in_dram_gbps:15.0f}  {estimate.bus_gbps:11.1f}  "
            f"{estimate.speedup_vs_bus:6.1f}x"
        )
    assert all(e.speedup_vs_bus > 10 for e in table.values())
