"""Benchmark: regenerate Fig. 8: NOT vs activation pattern (N:N vs N:2N) (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig08(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig8", jobs=sweep_jobs)
    assert result.groups or result.extras
