"""Benchmark: regenerate Fig. 17: ops vs distance to sense amplifiers (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig17(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig17", jobs=sweep_jobs)
    assert result.groups or result.extras
