"""Benchmark: regenerate Fig. 15: ops vs operand count (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig15(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig15", jobs=sweep_jobs)
    assert result.groups or result.extras
