"""Benchmark: regenerate the per-module capability matrix (the paper's
extended-version inventory; §7 Limitations)."""

from conftest import run_and_report


def test_capability(benchmark):
    result = run_and_report(benchmark, "capability")
    assert result.extras["matrix"]
