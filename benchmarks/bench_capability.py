"""Benchmark: regenerate the per-module capability matrix (the paper's
extended-version inventory; §7 Limitations)."""

from conftest import run_and_report


def test_capability(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "capability", jobs=sweep_jobs)
    assert result.extras["matrix"]
